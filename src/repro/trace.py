"""Trace record definitions and the compiled columnar trace IR.

A thread's execution is a sequence of compact records.  Compute bursts
are run-length encoded; only the memory accesses that matter for
coherence, checkpointing and dependence tracking are explicit (see
DESIGN.md §3).

Record formats (tuple form / IR column values)::

    record            op    arg            notes
    ----------------  ----  -------------  --------------------------------
    (COMPUTE, n)      0     n              n instructions, run-length coded
    (LOAD, line)      1     line_addr      one coherent read
    (STORE, line)     2     line_addr      one coherent write
    (BARRIER, id)     3     barrier_id     global barrier arrival
    (LOCK, id)        4     lock_id        lock acquire (RMW in the sim)
    (UNLOCK, id)      5     lock_id        lock release (RMW in the sim)
    (OUTPUT, n)       6     n_bytes        output I/O: ckpt-before-commit
    (END,)            7     0              end of trace; usually implicit
                                           (the machine synthesizes it
                                           past the last record)

Traces exist in two interchangeable representations:

* **Tuple traces** — plain Python lists of the tuples above.  Handy for
  hand-written tests and still accepted everywhere; the simulator
  compiles them once at machine construction via :func:`compile_trace`.
* **Compiled traces** — :class:`CompiledTrace`, the columnar IR: two
  parallel arrays, ``ops`` (``array('b')``) and ``args``
  (``array('q')``), one entry per record.  This is what the workload
  generators emit (through :class:`TraceBuilder`), what the simulator's
  fused hot loop indexes, and what the harness's content-addressed
  workload store serializes (:meth:`CompiledTrace.to_bytes`).

Addresses are cache-line numbers.  The :class:`AddressSpace` helper hands
out non-overlapping line regions for private data, shared data and
synchronization variables.
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterable, Iterator

COMPUTE = 0
LOAD = 1
STORE = 2
BARRIER = 3
LOCK = 4
UNLOCK = 5
OUTPUT = 6
END = 7

OP_NAMES = {
    COMPUTE: "compute",
    LOAD: "load",
    STORE: "store",
    BARRIER: "barrier",
    LOCK: "lock",
    UNLOCK: "unlock",
    OUTPUT: "output",
    END: "end",
}

#: Ops that retire exactly one instruction (COMPUTE retires ``arg``;
#: BARRIER and END retire none).  The single source of truth for
#: instruction accounting — io-injection imports it too.
ONE_INSTR_OPS = frozenset((LOAD, STORE, LOCK, UNLOCK, OUTPUT))

#: Typecodes of the IR columns: signed byte ops, signed 64-bit args
#: (line addresses include the ``AddressSpace.SYNC_BASE`` region).
OP_TYPECODE = "b"
ARG_TYPECODE = "q"

#: Bump when the serialized column layout changes incompatibly.
TRACE_WIRE_FORMAT = 1

_HEADER = struct.Struct("<HHQQ")   # wire format, reserved, n records, n instr

#: Every defined op value as a byte string: ``bytes.translate`` with
#: this as the deletion set validates a whole ops column at C speed
#: (anything surviving the deletion is an unknown op).
_VALID_OP_BYTES = bytes(range(COMPUTE, END + 1))


class CompiledTrace:
    """Columnar trace IR: parallel ``ops``/``args`` arrays.

    Behaves as an immutable sequence of record tuples (indexing and
    iteration reconstruct the tuple form, so existing record-level code
    keeps working), while the simulator's hot loop reads the columns
    directly and the workload store moves traces as flat bytes.
    """

    __slots__ = ("ops", "args", "n_instructions")

    def __init__(self, ops: Iterable[int], args: Iterable[int],
                 n_instructions: int | None = None):
        ops = ops if isinstance(ops, array) and ops.typecode == OP_TYPECODE \
            else array(OP_TYPECODE, ops)
        args = args if isinstance(args, array) \
            and args.typecode == ARG_TYPECODE else array(ARG_TYPECODE, args)
        if len(ops) != len(args):
            raise ValueError(
                f"ops/args column length mismatch: {len(ops)} != {len(args)}")
        # Every op in 0..END is defined, so a C-speed min/max range check
        # is exact validation.
        if ops and (min(ops) < COMPUTE or max(ops) > END):
            bad = next(op for op in ops if op not in OP_NAMES)
            raise ValueError(f"unknown trace op {bad!r}")
        self.ops = ops
        self.args = args
        if n_instructions is None:
            n_instructions = sum(
                arg if op == COMPUTE else 1
                for op, arg in zip(ops, args)
                if op == COMPUTE or op in ONE_INSTR_OPS)
        self.n_instructions = n_instructions

    # -- sequence protocol (tuple-record view) -----------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [(END,) if op == END else (op, arg)
                    for op, arg in zip(self.ops[index], self.args[index])]
        op = self.ops[index]
        return (END,) if op == END else (op, self.args[index])

    def __iter__(self) -> Iterator[tuple]:
        for op, arg in zip(self.ops, self.args):
            yield (END,) if op == END else (op, arg)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CompiledTrace):
            return self.ops == other.ops and self.args == other.args
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    __hash__ = None  # mutable array columns; never used as a dict key

    def __repr__(self) -> str:
        return (f"CompiledTrace({len(self)} records, "
                f"{self.n_instructions} instructions)")

    # -- conversions -------------------------------------------------------
    def to_tuples(self) -> list[tuple]:
        """The equivalent tuple-trace list (debugging / compatibility)."""
        return list(self)

    def numpy_columns(self):
        """Zero-copy numpy views over the IR columns.

        Returns ``(ops, args)`` as read-only ``int8``/``int64`` arrays
        aliasing the underlying column buffers (``np.frombuffer``, no
        copy) — the replica-batch executor scans one workload's columns
        once per batch through these.  Raises ``ImportError`` when
        numpy is unavailable; callers gate on
        :func:`repro.sim.vector.have_numpy` first.
        """
        import numpy as np
        ops = np.frombuffer(self.ops, dtype=np.int8)
        args = np.frombuffer(self.args, dtype=np.int64)
        return ops, args

    def instruction_count(self) -> int:
        """Instructions this trace retires (precomputed, O(1))."""
        return self.n_instructions

    # -- wire format (workload store) --------------------------------------
    def to_bytes(self) -> bytes:
        """Flat serialized form: fixed header + raw column bytes.

        Native byte order (the store's fingerprint pins the platform);
        the header is little-endian so a mismatched file is rejected
        rather than misread.
        """
        return (_HEADER.pack(TRACE_WIRE_FORMAT, 0, len(self.ops),
                             self.n_instructions)
                + self.ops.tobytes() + self.args.tobytes())

    @classmethod
    def from_bytes(cls, data: bytes) -> "CompiledTrace":
        """Inverse of :meth:`to_bytes` (raises ValueError on mismatch)."""
        if len(data) < _HEADER.size:
            raise ValueError("truncated compiled-trace header")
        version, _, n, n_instr = _HEADER.unpack_from(data)
        if version != TRACE_WIRE_FORMAT:
            raise ValueError(
                f"compiled-trace wire format {version} != "
                f"{TRACE_WIRE_FORMAT}")
        ops = array(OP_TYPECODE)
        args = array(ARG_TYPECODE)
        ops_end = _HEADER.size + n * ops.itemsize
        args_end = ops_end + n * args.itemsize
        if len(data) != args_end:
            raise ValueError(
                f"compiled-trace payload is {len(data)} bytes, "
                f"expected {args_end}")
        ops.frombytes(data[_HEADER.size:ops_end])
        args.frombytes(data[ops_end:args_end])
        return cls(ops, args, n_instructions=n_instr)

    @classmethod
    def from_buffer(cls, data, offset: int = 0) -> "CompiledTrace":
        """Zero-copy view constructor over a serialized trace.

        ``data`` is any buffer (an ``mmap``, ``bytes``, a
        ``memoryview``) holding a :meth:`to_bytes` image at ``offset``.
        The returned trace's ``ops``/``args`` columns are **read-only
        memoryviews aliasing the buffer** — nothing is copied, and the
        views keep the underlying buffer (and a mapped store file)
        alive.  View-backed traces behave identically to array-backed
        ones everywhere the simulator reads them (``tolist``,
        ``numpy_columns``, indexing, equality); the read-only contract
        is enforced both by the views themselves (writes raise) and
        statically by reprolint rule RL005.

        Returns the parsed trace; the caller advances its own cursor by
        ``_HEADER.size + n * 9`` (see ``WorkloadSpec.from_buffer``,
        which carries explicit section lengths instead).
        """
        view = memoryview(data).toreadonly().cast("B")
        if len(view) - offset < _HEADER.size:
            raise ValueError("truncated compiled-trace header")
        version, _, n, n_instr = _HEADER.unpack_from(view, offset)
        if version != TRACE_WIRE_FORMAT:
            raise ValueError(
                f"compiled-trace wire format {version} != "
                f"{TRACE_WIRE_FORMAT}")
        ops_start = offset + _HEADER.size
        args_start = ops_start + n          # array('b').itemsize == 1
        end = args_start + n * 8            # array('q').itemsize == 8
        if len(view) < end:
            raise ValueError(
                f"compiled-trace payload needs {end - offset} bytes, "
                f"buffer holds {len(view) - offset}")
        ops_raw = view[ops_start:args_start]
        # C-speed exact validation: delete every defined op byte; any
        # survivor is an unknown op (min()/max() over a memoryview
        # would iterate in Python).
        bad = bytes(ops_raw).translate(None, delete=_VALID_OP_BYTES)
        if bad:
            raise ValueError(f"unknown trace op {bad[0]!r}")
        trace = cls.__new__(cls)
        trace.ops = ops_raw.cast(OP_TYPECODE)
        trace.args = view[args_start:end].cast(ARG_TYPECODE)
        trace.n_instructions = n_instr
        return trace


class TraceBuilder:
    """Incremental :class:`CompiledTrace` builder.

    The workload generators append records directly into the IR columns
    (no intermediate tuple list); the running instruction count comes
    for free.
    """

    __slots__ = ("_ops", "_args", "_n_instructions")

    def __init__(self):
        self._ops = array(OP_TYPECODE)
        self._args = array(ARG_TYPECODE)
        self._n_instructions = 0

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def n_instructions(self) -> int:
        return self._n_instructions

    def append(self, op: int, arg: int = 0) -> None:
        """Append one record (generic form; see the typed emitters)."""
        if op not in OP_NAMES:
            raise ValueError(f"unknown trace op {op!r}")
        self._ops.append(op)
        self._args.append(arg)
        if op == COMPUTE:
            self._n_instructions += arg
        elif op in ONE_INSTR_OPS:
            self._n_instructions += 1

    def extend(self, records: Iterable[tuple]) -> None:
        """Append tuple records (compatibility with tuple-trace code)."""
        for record in records:
            self.append(record[0], record[1] if len(record) > 1 else 0)

    # -- typed emitters (the generators' fast path) ------------------------
    def compute(self, n_instructions: int) -> None:
        self._ops.append(COMPUTE)
        self._args.append(n_instructions)
        self._n_instructions += n_instructions

    def load(self, line_addr: int) -> None:
        self._ops.append(LOAD)
        self._args.append(line_addr)
        self._n_instructions += 1

    def store(self, line_addr: int) -> None:
        self._ops.append(STORE)
        self._args.append(line_addr)
        self._n_instructions += 1

    def barrier(self, barrier_id: int) -> None:
        self._ops.append(BARRIER)
        self._args.append(barrier_id)

    def lock(self, lock_id: int) -> None:
        self._ops.append(LOCK)
        self._args.append(lock_id)
        self._n_instructions += 1

    def unlock(self, lock_id: int) -> None:
        self._ops.append(UNLOCK)
        self._args.append(lock_id)
        self._n_instructions += 1

    def output(self, n_bytes: int) -> None:
        self._ops.append(OUTPUT)
        self._args.append(n_bytes)
        self._n_instructions += 1

    def build(self) -> CompiledTrace:
        """The finished trace (the builder must not be reused after)."""
        return CompiledTrace(self._ops, self._args,
                             n_instructions=self._n_instructions)


def compile_trace(trace) -> CompiledTrace:
    """One-shot shim: a tuple trace (or anything record-iterable)
    compiled to the columnar IR.  Compiled traces pass through untouched,
    so the simulator accepts both representations everywhere."""
    if isinstance(trace, CompiledTrace):
        return trace
    builder = TraceBuilder()
    builder.extend(trace)
    return builder.build()


class AddressSpace:
    """Sequential allocator of disjoint line-address regions."""

    #: synchronization variables live in their own region so they never
    #: collide with data lines (they are still ordinary coherent lines).
    SYNC_BASE = 1 << 40

    def __init__(self, base: int = 0):
        self._next = base
        self._next_sync = self.SYNC_BASE

    def region(self, n_lines: int) -> range:
        """Allocate ``n_lines`` consecutive line addresses."""
        start = self._next
        self._next += n_lines
        return range(start, start + n_lines)

    def sync_line(self) -> int:
        """Allocate one line for a lock word / barrier counter / flag."""
        line = self._next_sync
        self._next_sync += 1
        return line


def trace_instruction_count(trace) -> int:
    """Number of instructions a trace represents (memory ops count as 1).

    Compiled traces answer from their precomputed count; tuple traces
    (and generic record iterables) are walked record by record.
    """
    if isinstance(trace, CompiledTrace):
        return trace.n_instructions
    total = 0
    for rec in trace:
        op = rec[0]
        if op == COMPUTE:
            total += rec[1]
        elif op in ONE_INSTR_OPS:
            total += 1
    return total
