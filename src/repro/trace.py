"""Trace record definitions shared by the workloads and the simulator.

A thread's execution is a list of compact tuples.  Compute bursts are
run-length encoded; only the memory accesses that matter for coherence,
checkpointing and dependence tracking are explicit (see DESIGN.md §3).

Record formats::

    (COMPUTE, n_instructions)
    (LOAD, line_addr)
    (STORE, line_addr)
    (BARRIER, barrier_id)
    (LOCK, lock_id)
    (UNLOCK, lock_id)
    (OUTPUT, n_bytes)        # output I/O: checkpoint-before-commit
    (END,)                   # appended automatically by the machine

Addresses are cache-line numbers.  The :class:`AddressSpace` helper hands
out non-overlapping line regions for private data, shared data and
synchronization variables.
"""

from __future__ import annotations

COMPUTE = 0
LOAD = 1
STORE = 2
BARRIER = 3
LOCK = 4
UNLOCK = 5
OUTPUT = 6
END = 7

OP_NAMES = {
    COMPUTE: "compute",
    LOAD: "load",
    STORE: "store",
    BARRIER: "barrier",
    LOCK: "lock",
    UNLOCK: "unlock",
    OUTPUT: "output",
    END: "end",
}


class AddressSpace:
    """Sequential allocator of disjoint line-address regions."""

    #: synchronization variables live in their own region so they never
    #: collide with data lines (they are still ordinary coherent lines).
    SYNC_BASE = 1 << 40

    def __init__(self, base: int = 0):
        self._next = base
        self._next_sync = self.SYNC_BASE

    def region(self, n_lines: int) -> range:
        """Allocate ``n_lines`` consecutive line addresses."""
        start = self._next
        self._next += n_lines
        return range(start, start + n_lines)

    def sync_line(self) -> int:
        """Allocate one line for a lock word / barrier counter / flag."""
        line = self._next_sync
        self._next_sync += 1
        return line


def trace_instruction_count(trace: list[tuple]) -> int:
    """Number of instructions a trace represents (memory ops count as 1)."""
    total = 0
    for rec in trace:
        op = rec[0]
        if op == COMPUTE:
            total += rec[1]
        elif op in (LOAD, STORE, LOCK, UNLOCK, OUTPUT):
            total += 1
    return total
