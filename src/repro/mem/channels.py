"""Timing model of the off-chip memory channels (DRAMsim substitute).

Two DDR2-style channels (Figure 4.3a).  Each channel serves two traffic
classes:

* **Demand** accesses (cache misses) have priority: they queue only
  behind other demand accesses, plus a bounded interference term for the
  non-preemptible writeback transfer that may already occupy the pins
  (writebacks "have lower priority than and are bypassed by the normal
  reads and writes", Section 4.1).
* **Writebacks** (checkpoint bursts, evictions, background drains) queue
  behind both classes; a processor stalling on its checkpoint writebacks
  therefore observes the full backlog — which is exactly where global
  checkpointing's WBDelay/WBImbalanceDelay comes from.

The model reports how much of each demand wait was caused by checkpoint
traffic so the harness can reproduce the Figure 6.5 breakdown.
"""

from __future__ import annotations

from repro.params import MachineConfig


class MemoryChannels:
    """Two-priority occupancy/queueing model with checkpoint attribution."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.n = config.n_mem_channels
        # Demand-priority horizon: when the channel can take a new read.
        self.demand_busy = [0.0] * self.n
        # Writeback horizon: when all queued writebacks will have drained.
        self.wb_busy = [0.0] * self.n
        # Portion of the writeback horizon caused by checkpoint traffic.
        self.ckpt_wb_busy = [0.0] * self.n
        # Number of active background (delayed-writeback) streams.
        self.bg_streams = 0
        # Statistics.
        self.demand_accesses = 0
        self.wb_transfers = 0
        self.demand_wait_cycles = 0.0
        self.demand_ckpt_wait_cycles = 0.0

    def channel_of(self, addr: int) -> int:
        return addr % self.n

    # -- demand path --------------------------------------------------------
    def demand_access(self, now: float, addr: int) -> tuple[float, float]:
        """A cache miss serviced by memory.

        Returns ``(extra_latency, ckpt_induced_wait)``: latency beyond the
        fixed ``memory_cycles`` round trip, and how much of it checkpoint
        traffic caused (feeds IPCDelay).
        """
        ch = self.channel_of(addr)
        occ = self.config.dram_occupancy
        start = max(now, self.demand_busy[ch])
        queue_wait = start - now
        # Writeback interference on a demand read is bounded by how much
        # of the channel the writeback traffic can occupy: at least one
        # non-preemptible transfer, and proportionally more while many
        # background streams drain concurrently.  A machine-wide delayed
        # writeback (all cores at once) therefore pressures reads far
        # more than one interaction set's drain — the reason Global_DWB
        # alone is "not good enough" (Section 6.2).
        wb_backlog = max(0.0, self.wb_busy[ch] - start)
        wb_occ = float(self.config.logged_wb_occupancy)
        cap = wb_occ * (1.0 + self.bg_streams)
        interference = min(wb_backlog, cap)
        ckpt_backlog = max(0.0, self.ckpt_wb_busy[ch] - start)
        ckpt_share = min(interference, ckpt_backlog)
        done = start + occ
        self.demand_busy[ch] = done
        # Demand traffic steals bandwidth from the writeback queue.
        self.wb_busy[ch] = max(self.wb_busy[ch], now) + occ
        self.demand_accesses += 1
        extra = queue_wait + interference
        self.demand_wait_cycles += extra
        self.demand_ckpt_wait_cycles += ckpt_share
        return extra, ckpt_share

    # -- writeback paths ----------------------------------------------------
    def writeback(self, now: float, addr: int, logged: bool,
                  checkpoint: bool) -> float:
        """One line writeback; returns its completion time.

        ``logged`` adds the old-value read + log append occupancy
        (Section 3.3.3); ``checkpoint`` marks the busy window as
        checkpoint-induced for IPCDelay attribution.
        """
        ch = self.channel_of(addr)
        occ = (self.config.logged_wb_occupancy if logged
               else self.config.dram_occupancy)
        start = max(now, self.wb_busy[ch], self.demand_busy[ch])
        done = start + occ
        self.wb_busy[ch] = done
        if checkpoint:
            self.ckpt_wb_busy[ch] = done
        self.wb_transfers += 1
        return done

    def priority_writeback(self, now: float, addr: int) -> float:
        """Flush one line at demand priority.

        Used when a store hits a still-Delayed line: the write cannot
        complete until the checkpointed copy reaches memory, so the flush
        jumps the writeback queue (Section 4.1) — but it still arbitrates
        against the transfers of every concurrently draining L2, so a
        machine-wide drain (Global_DWB) makes these flushes far more
        expensive than one interaction set's drain.  Returns completion.
        """
        ch = self.channel_of(addr)
        occ = self.config.logged_wb_occupancy
        contention = occ * self.bg_streams / (4.0 * self.n)
        start = max(now, self.demand_busy[ch]) + contention
        done = start + occ
        self.demand_busy[ch] = done
        self.ckpt_wb_busy[ch] = max(self.ckpt_wb_busy[ch], done)
        self.wb_transfers += 1
        return done

    def burst_writeback(self, now: float, addrs: list[int],
                        logged: bool = True) -> float:
        """Write back a batch of lines starting at ``now``.

        Used for checkpoint bursts (Global and Rebound_NoDWB) where the
        processor stalls; returns the completion time of the last line.
        """
        done = now
        for addr in addrs:
            done = max(done, self.writeback(now, addr, logged, True))
        return done

    def restore(self, now: float, n_entries: int) -> float:
        """Roll back ``n_entries`` log entries (read log + write memory).

        The log is multi-banked by address (Section 3.3.3) so restoration
        parallelizes across the channels; returns the completion time.
        """
        if n_entries == 0:
            return now
        per_channel = -(-n_entries // self.n)  # ceil division
        done = now
        for ch in range(self.n):
            start = max(now, self.wb_busy[ch])
            end = start + per_channel * self.config.restore_occupancy
            self.wb_busy[ch] = end
            done = max(done, end)
        return done

    # -- background streams --------------------------------------------------
    def bg_start(self) -> None:
        self.bg_streams += 1

    def bg_stop(self) -> None:
        self.bg_streams = max(0, self.bg_streams - 1)

    def bg_drain_time(self, n_lines: int, period: int) -> float:
        """Duration of a background drain of ``n_lines``.

        Each L2 controller trickles one line per ``period`` cycles and the
        drain slows as more streams contend for the same channels.
        """
        contention = 1.0 + 0.5 * max(0, self.bg_streams - self.n) / self.n
        return max(1.0, n_lines * period * contention)

    def bg_account(self, now: float, n_lines: int, window: float) -> None:
        """Account a drain's channel occupancy over ``[now, now+window]``.

        The occupancy lands on the writeback horizon (the drain has lower
        priority than demand traffic), so demand misses inside the window
        observe the bounded checkpoint-attributable interference.
        """
        if n_lines == 0:
            return
        occ_total = n_lines * self.config.logged_wb_occupancy / self.n
        cap = now + window
        for ch in range(self.n):
            horizon = max(self.wb_busy[ch], now) + occ_total
            self.wb_busy[ch] = min(max(horizon, self.wb_busy[ch]),
                                   max(cap, self.wb_busy[ch]))
            self.ckpt_wb_busy[ch] = max(self.ckpt_wb_busy[ch],
                                        self.wb_busy[ch])
        self.wb_transfers += n_lines
