"""Main memory and its logging memory controller.

Off-chip memory is assumed safe (non-volatile / raided, Section 3.2); it
never suffers faults.  The controller implements ReVive-style logging:
before any dirty-line writeback overwrites memory, the old value is
appended to the software log — except when the same processor already
logged that line in the same checkpoint interval (the ReVive
first-writeback optimization, Section 3.3.3).
"""

from __future__ import annotations

from typing import Iterable

from repro.mem.log import ReviveLog


class MainMemory:
    """Value store plus the logging behaviour of the memory controller."""

    def __init__(self, log: ReviveLog):
        self.log = log
        self._values: dict[int, int] = {}
        # (pid, interval) -> lines already logged in that interval.
        self._logged: dict[tuple[int, int], set[int]] = {}
        self.reads = 0
        self.writes = 0
        self.logged_writebacks = 0
        self.suppressed_logs = 0

    # -- plain accesses -------------------------------------------------------
    def read_line(self, addr: int) -> int:
        self.reads += 1
        return self._values.get(addr, 0)

    def peek(self, addr: int) -> int:
        """Read without counting (tests, snapshots)."""
        return self._values.get(addr, 0)

    def snapshot(self, addrs: Iterable[int] | None = None) -> dict[int, int]:
        """Copy of the memory image (tests and recovery verification)."""
        if addrs is None:
            return dict(self._values)
        return {a: self._values.get(a, 0) for a in addrs}

    # -- logged writebacks ------------------------------------------------------
    def writeback(self, time: float, pid: int, addr: int, value: int,
                  interval: int) -> bool:
        """Write a dirty line of ``interval`` back; True if a log entry
        was made (False when the first-writeback filter suppressed it)."""
        self.writes += 1
        logged = False
        seen = self._logged.setdefault((pid, interval), set())
        if addr not in seen:
            old = self._values.get(addr, 0)
            self.log.append(time, pid, addr, old, interval)
            seen.add(addr)
            self.logged_writebacks += 1
            logged = True
        else:
            self.suppressed_logs += 1
        self._values[addr] = value
        return logged

    def end_interval(self, pid: int, interval: int) -> None:
        """Drop the first-writeback filter of a closed interval."""
        self._logged.pop((pid, interval), None)

    # -- rollback ---------------------------------------------------------------
    def restore(self, targets: dict[int, int]) -> list:
        """Undo the log for ``targets`` (pid -> checkpoint id).

        Applies old values newest-first, discards the undone entries and
        resets the first-writeback filters of the undone intervals.
        Returns the list of undone entries (newest first).
        """
        entries = self.log.entries_after(targets)
        for entry in entries:
            self._values[entry.addr] = entry.old_value
            self.writes += 1
        self.log.discard_after(targets)
        for (pid, interval) in list(self._logged):
            target = targets.get(pid)
            if target is not None and interval > target:
                del self._logged[(pid, interval)]
        return entries
