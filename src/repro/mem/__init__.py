"""Memory-hierarchy substrate: private caches, channels, log, memory."""

from repro.mem.cache import (
    Cache,
    CacheLine,
    EXCLUSIVE,
    INVALID,
    L1Cache,
    MODIFIED,
    SHARED,
)
from repro.mem.channels import MemoryChannels
from repro.mem.log import LogEntry, Marker, ReviveLog
from repro.mem.memory import MainMemory

__all__ = [
    "Cache",
    "CacheLine",
    "L1Cache",
    "MemoryChannels",
    "MainMemory",
    "ReviveLog",
    "LogEntry",
    "Marker",
    "INVALID",
    "SHARED",
    "EXCLUSIVE",
    "MODIFIED",
]
