"""ReVive-style in-memory undo log (Section 3.3.3).

Every writeback of a dirty line makes the memory controller read the old
value of the line from memory and append it, tagged with the writer's
PID, to a software log.  The log is multi-banked by address for
parallelism.

Entries are also tagged with the *checkpoint interval* that produced the
data.  With delayed writebacks (Section 4.1), interval ``i``'s background
drain interleaves in wall-clock time with interval ``i+1``'s evictions;
tagging lets rollback undo exactly the entries of the discarded
intervals, which a purely positional stub could not distinguish.  This
realizes the paper's per-checkpoint stubs in the presence of overlapping
writeback windows (DESIGN.md §7).

Rolling processor ``p`` back to its checkpoint ``k`` applies, newest
first, the old values of every entry of ``p`` with ``interval > k`` —
restoring precisely the memory image checkpoint ``k`` certified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.params import LOG_ENTRY_BYTES


@dataclass(frozen=True)
class LogEntry:
    """One undo record: writer, line, old value and producing interval."""

    seq: int
    time: float
    pid: int
    addr: int
    old_value: int
    interval: int


@dataclass(frozen=True)
class Marker:
    """Checkpoint delimiter for one processor (diagnostics/auditing)."""

    seq: int
    time: float
    pid: int
    ckpt_id: int
    kind: str  # "begin" | "end"


class ReviveLog:
    """Multi-banked undo log with per-processor checkpoint markers."""

    def __init__(self, n_banks: int = 2, bin_cycles: int = 1_000_000):
        self.n_banks = n_banks
        self.banks: list[list[LogEntry]] = [[] for _ in range(n_banks)]
        self._seq = 0
        self._end_markers: dict[tuple[int, int], Marker] = {}
        self._begin_markers: dict[tuple[int, int], Marker] = {}
        # Statistics: bytes appended per (pid, interval) and per time bin
        # (the Table 6.1 "max log space per interval" row uses the bins).
        self.total_entries = 0
        self.bytes_by_bin: dict[int, int] = {}
        self.bin_cycles = max(1, bin_cycles)
        self.bytes_by_pid_interval: dict[tuple[int, int], int] = {}

    # -- appends ------------------------------------------------------------
    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def append(self, time: float, pid: int, addr: int, old_value: int,
               interval: int) -> LogEntry:
        entry = LogEntry(self.next_seq(), time, pid, addr, old_value,
                         interval)
        self.banks[addr % self.n_banks].append(entry)
        self.total_entries += 1
        tbin = int(time) // self.bin_cycles
        self.bytes_by_bin[tbin] = self.bytes_by_bin.get(tbin, 0) + LOG_ENTRY_BYTES
        key = (pid, interval)
        self.bytes_by_pid_interval[key] = (
            self.bytes_by_pid_interval.get(key, 0) + LOG_ENTRY_BYTES)
        return entry

    def mark_begin(self, time: float, pid: int, ckpt_id: int) -> Marker:
        marker = Marker(self.next_seq(), time, pid, ckpt_id, "begin")
        self._begin_markers[(pid, ckpt_id)] = marker
        return marker

    def mark_end(self, time: float, pid: int, ckpt_id: int) -> Marker:
        """Checkpoint ``ckpt_id`` of ``pid`` completed all its writebacks."""
        marker = Marker(self.next_seq(), time, pid, ckpt_id, "end")
        self._end_markers[(pid, ckpt_id)] = marker
        return marker

    def end_marker(self, pid: int, ckpt_id: int) -> Optional[Marker]:
        return self._end_markers.get((pid, ckpt_id))

    # -- rollback ------------------------------------------------------------
    def entries_after(self, targets: dict[int, int]) -> list[LogEntry]:
        """Undo list for rolling each ``pid`` back to checkpoint ``k``.

        Selects every entry of the targeted pids whose producing interval
        is newer than the target checkpoint; newest-first order is the
        order old values must be applied to memory (Section 3.3.3).
        """
        selected: list[LogEntry] = []
        for bank in self.banks:
            for entry in bank:
                target = targets.get(entry.pid)
                if target is not None and entry.interval > target:
                    selected.append(entry)
        selected.sort(key=lambda e: e.seq, reverse=True)
        return selected

    def discard_after(self, targets: dict[int, int]) -> int:
        """Drop the undone entries; re-executed work logs afresh."""
        dropped = 0
        for i, bank in enumerate(self.banks):
            kept = []
            for entry in bank:
                target = targets.get(entry.pid)
                if target is not None and entry.interval > target:
                    dropped += 1
                else:
                    kept.append(entry)
            self.banks[i] = kept
        return dropped

    # -- maintenance -----------------------------------------------------------
    def trim_before(self, time: float) -> int:
        """Reclaim entries older than ``time`` (already unrecoverable-to).

        The caller must guarantee no future rollback can target a
        checkpoint older than ``time``; returns reclaimed entry count.
        """
        trimmed = 0
        for i, bank in enumerate(self.banks):
            keep_from = 0
            for keep_from, entry in enumerate(bank):
                if entry.time >= time:
                    break
            else:
                keep_from = len(bank)
            trimmed += keep_from
            if keep_from:
                self.banks[i] = bank[keep_from:]
        return trimmed

    # -- statistics --------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.total_entries * LOG_ENTRY_BYTES

    def live_entries(self) -> int:
        return sum(len(b) for b in self.banks)

    def max_interval_bytes(self) -> int:
        """Largest log volume appended in any one time bin (Table 6.1)."""
        return max(self.bytes_by_bin.values(), default=0)

    def entries_of(self, pids: Iterable[int]) -> int:
        wanted = set(pids)
        return sum(1 for bank in self.banks for e in bank if e.pid in wanted)
