"""Set-associative cache models for the private L1/L2 hierarchy.

The L1 is write-through and the L2 write-back, as in Figure 4.3(a).  The
L2 additionally carries the per-line *Delayed* bit used by the delayed
writeback optimization (Section 4.1).

Addresses are cache-line numbers (integers); byte quantities are derived
with :data:`repro.params.LINE_BYTES` only for statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.params import CacheConfig

# MESI states kept in the private L2 (the L1 holds read-only copies and is
# kept inclusive with respect to the L2).
INVALID = 0
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


class CacheLine:
    """One resident cache line: MESI state, value, dirty and Delayed bits."""

    __slots__ = ("addr", "state", "value", "dirty", "delayed")

    def __init__(self, addr: int, state: int, value: int):
        self.addr = addr
        self.state = state
        self.value = value
        self.dirty = state == MODIFIED
        self.delayed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = ("D" if self.dirty else "") + ("w" if self.delayed else "")
        return f"<Line {self.addr:#x} {STATE_NAMES[self.state]}{flags}>"


class Cache:
    """An LRU set-associative cache holding :class:`CacheLine` objects.

    Eviction policy is true LRU per set (``OrderedDict`` recency order).
    ``insert`` returns the victim line, if any, so the coherence engine can
    write back dirty data and update the directory.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        # Address -> line direct map over all sets: lookup/peek are one
        # dict probe; the per-set OrderedDicts keep carrying the LRU
        # recency order (and are the eviction authority).  The map is
        # mutated strictly in place (never rebound) so long-lived views
        # of it — the machine's inline fast path binds it once per
        # advance — stay valid across insertions and invalidations.
        self._map: dict[int, CacheLine] = {}
        self.n_hits = 0
        self.n_misses = 0
        self.n_evictions = 0
        self._n_resident = 0          # O(1) len() (kept by insert/remove)

    # -- basic operations -------------------------------------------------
    def _set_for(self, addr: int) -> OrderedDict:
        return self._sets[addr % self.n_sets]

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line or None; updates LRU order on hit."""
        line = self._map.get(addr)
        if line is None:
            self.n_misses += 1
            return None
        if touch:
            self._sets[addr % self.n_sets].move_to_end(addr)
        self.n_hits += 1
        return line

    def peek(self, addr: int) -> Optional[CacheLine]:
        """Return the resident line without perturbing LRU or counters."""
        return self._map.get(addr)

    def insert(self, addr: int, state: int, value: int
               ) -> tuple[CacheLine, Optional[CacheLine]]:
        """Install ``addr``; returns ``(new_line, evicted_line_or_None)``."""
        cset = self._set_for(addr)
        line = self._map.get(addr)
        if line is not None:  # refill over an existing line: update in place
            line.state = state
            line.value = value
            cset.move_to_end(addr)
            return line, None
        victim = None
        if len(cset) >= self.assoc:
            _, victim = cset.popitem(last=False)
            del self._map[victim.addr]
            self.n_evictions += 1
            self._n_resident -= 1
        line = CacheLine(addr, state, value)
        cset[addr] = line
        self._map[addr] = line
        self._n_resident += 1
        return line, victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        """Remove ``addr`` if present and return the removed line."""
        line = self._map.pop(addr, None)
        if line is not None:
            del self._set_for(addr)[addr]
            self._n_resident -= 1
        return line

    def invalidate_all(self) -> int:
        """Flash-invalidate the whole cache (rollback); returns line count."""
        count = self._n_resident
        for cset in self._sets:
            cset.clear()
        self._map.clear()
        self._n_resident = 0
        return count

    # -- iteration helpers -------------------------------------------------
    def lines(self) -> Iterator[CacheLine]:
        for cset in self._sets:
            yield from cset.values()

    def dirty_lines(self) -> list[CacheLine]:
        """All lines with the Dirty bit set (checkpoint writeback set)."""
        return [ln for ln in self.lines() if ln.dirty]

    def delayed_lines(self) -> list[CacheLine]:
        """All lines with the Delayed bit set (Section 4.1)."""
        return [ln for ln in self.lines() if ln.delayed]

    def resident(self, addr: int) -> bool:
        return addr in self._map

    def __len__(self) -> int:
        return self._n_resident


class L1Cache:
    """The write-through L1: a presence-only filter in front of the L2.

    Stores always propagate to the L2 (write-through, Section 3.3); loads
    that hit here cost ``hit_cycles``.  Inclusion with the L2 is enforced
    by the coherence engine, which invalidates L1 copies whenever the L2
    line is invalidated or evicted.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        # Address -> owning set direct map: the residency filter the
        # machine's inline load fast path probes.  Membership here is
        # *exactly* ``contains`` membership (maintained on every fill and
        # invalidation), so a map hit is a provable L1 hit.  Mutated in
        # place only — never rebound — because the fast path binds it
        # once per advance.
        self._map: dict[int, OrderedDict] = {}
        self.n_hits = 0
        self.n_misses = 0
        self._n_resident = 0          # O(1) len() (kept by fill/remove)

    def _set_for(self, addr: int) -> OrderedDict:
        return self._sets[addr % self.n_sets]

    def contains(self, addr: int) -> bool:
        cset = self._map.get(addr)
        if cset is not None:
            cset.move_to_end(addr)
            self.n_hits += 1
            return True
        self.n_misses += 1
        return False

    def fill(self, addr: int) -> None:
        cset = self._set_for(addr)
        if addr in cset:
            cset.move_to_end(addr)
            return
        if len(cset) >= self.assoc:
            victim_addr, _ = cset.popitem(last=False)
            del self._map[victim_addr]
            self._n_resident -= 1
        cset[addr] = True
        self._map[addr] = cset
        self._n_resident += 1

    def invalidate(self, addr: int) -> None:
        cset = self._map.pop(addr, None)
        if cset is not None:
            del cset[addr]
            self._n_resident -= 1

    def invalidate_all(self) -> int:
        count = self._n_resident
        for cset in self._sets:
            cset.clear()
        self._map.clear()
        self._n_resident = 0
        return count

    def __len__(self) -> int:
        return self._n_resident
