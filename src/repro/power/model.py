"""CACTI/Wattch-style power and energy model at 45 nm.

The paper integrates CACTI and Wattch models updated with ITRS-2010 data
(Chapter 5).  We reproduce the same abstraction: per-event dynamic
energies for each structure plus per-structure static power, evaluated
over the event counters the simulator collects.  The constants are
order-of-magnitude figures for a 45 nm, 1 GHz, 200 mm^2 chip — what
matters for Figures 6.6(b) and 6.8 is the *relative* cost of the Rebound
structures (a ~1.3% power adder, Section 6.5) and of the checkpoint
traffic, both of which these constants encode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.params import MachineConfig, Scheme

#: Dynamic energy per event, joules (45 nm class numbers).
DYNAMIC_ENERGY_J = {
    "l1": 0.010e-9,       # L1 access
    "l2": 0.035e-9,       # L2 access
    "dir": 0.015e-9,      # directory lookup/update
    "dram": 2.5e-9,       # off-chip line transfer
    "log": 0.8e-9,        # log append (old-value read + log write)
    "wsig": 0.002e-9,     # WSIG test/insert (Bloom logic, Notary-like PBX)
    "depreg": 0.001e-9,   # MyProducers/MyConsumers update
    "msg": 0.005e-9,      # one interconnect message
    "instr": 0.020e-9,    # core energy per committed instruction
}

#: Static power per core-tile, watts (core + caches + directory slice).
STATIC_TILE_W = 0.25
#: Extra static power of the Rebound structures per tile (Dep registers,
#: WSIG, LW-ID storage): calibrated to the paper's 1.3% adder.
STATIC_REBOUND_TILE_W = 0.0035


@dataclass
class EnergyReport:
    """Energy totals for one simulation run."""

    dynamic_j: float
    static_j: float
    rebound_static_j: float
    runtime_cycles: float
    by_event: dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.static_j + self.rebound_static_j

    @property
    def power_w(self) -> float:
        """Average power at 1 GHz (1 cycle == 1 ns)."""
        if self.runtime_cycles <= 0:
            return 0.0
        return self.total_j / (self.runtime_cycles * 1e-9)


class PowerModel:
    """Evaluates event counters into energy/power numbers."""

    def __init__(self, config: MachineConfig):
        self.config = config

    def evaluate(self, energy_events: dict[str, int], runtime: float,
                 instructions: int, messages: int) -> EnergyReport:
        by_event = {}
        dynamic = 0.0
        for kind, count in energy_events.items():
            joules = DYNAMIC_ENERGY_J.get(kind, 0.0) * count
            by_event[kind] = joules
            dynamic += joules
        by_event["instr"] = DYNAMIC_ENERGY_J["instr"] * instructions
        dynamic += by_event["instr"]
        by_event["msg"] = DYNAMIC_ENERGY_J["msg"] * messages
        dynamic += by_event["msg"]
        seconds = runtime * 1e-9
        static = STATIC_TILE_W * self.config.n_cores * seconds
        rebound_static = 0.0
        if self.config.scheme.tracks_dependences:
            rebound_static = (STATIC_REBOUND_TILE_W * self.config.n_cores *
                              seconds)
        return EnergyReport(dynamic, static, rebound_static, runtime,
                            by_event)


def energy_of_stats(stats) -> EnergyReport:
    """Evaluate a :class:`~repro.sim.stats.SimStats` into energy."""
    model = PowerModel(stats.config)
    messages = (stats.base_messages + stats.dep_messages +
                stats.protocol_messages)
    return model.evaluate(stats.energy_events, stats.runtime,
                          stats.total_instructions, messages)


def ed2(report: EnergyReport) -> float:
    """Energy x delay^2 (the paper reports a 27% ED^2 win, Section 6.5)."""
    return report.total_j * (report.runtime_cycles * 1e-9) ** 2
