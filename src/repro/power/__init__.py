"""Power/energy model (CACTI/Wattch substitute at 45 nm)."""

from repro.power.model import (
    DYNAMIC_ENERGY_J,
    EnergyReport,
    PowerModel,
    ed2,
    energy_of_stats,
)

__all__ = [
    "PowerModel",
    "EnergyReport",
    "energy_of_stats",
    "ed2",
    "DYNAMIC_ENERGY_J",
]
