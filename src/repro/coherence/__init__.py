"""Directory-based MESI coherence substrate with LW-ID tracking."""

from repro.coherence.directory import DirEntry, Directory, EXCL, SHARED, UNCACHED
from repro.coherence.protocol import CoherenceEngine, DependenceTracker

__all__ = [
    "Directory",
    "DirEntry",
    "CoherenceEngine",
    "DependenceTracker",
    "UNCACHED",
    "SHARED",
    "EXCL",
]
