"""Directory-based MESI coherence engine with Rebound dependence hooks.

This is the substrate Rebound piggybacks on (Section 3.3.1): every
transaction that transfers data between processors updates the
directory's LW-ID field and, through the :class:`DependenceTracker`
interface implemented by the checkpointing scheme, the MyProducers /
MyConsumers / WSIG registers.

Flows implemented (Figure 3.2a):

* ``WR`` — a store gains exclusive ownership; the directory records the
  writer's PID in LW-ID; the previous last writer (if any, and if its
  WSIG confirms) records the WAW dependence in its MyConsumers.
* ``RD`` — a load of a line with a live LW-ID records a RAW dependence:
  the reader sets MyProducers, the writer sets MyConsumers.
* ``RDX`` — a load that finds the line uncached is granted Exclusive and
  therefore also stamps LW-ID (the core may later write silently).
* ``NO_WR`` — the supposed last writer's WSIG misses: the dependence is
  declined and the directory lazily clears the stale LW-ID
  (Section 3.3.2).  The reader's MyProducers was already set, so it stays
  a superset — exactly the imprecision the checkpoint protocol's
  Decline messages absorb.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Optional

from repro.coherence.directory import Directory, EXCL, SHARED, UNCACHED
from repro.interconnect import Interconnect, MessageClass
from repro.mem import (
    Cache,
    EXCLUSIVE,
    L1Cache,
    MODIFIED,
    MainMemory,
    MemoryChannels,
)
from repro.mem import SHARED as L_SHARED
from repro.params import MachineConfig


class DependenceTracker:
    """Scheme-side interface for LW-ID / Dep-register maintenance.

    The default implementation tracks nothing (used by Global and the
    no-checkpointing baseline, which have no such hardware).
    """

    enabled = False

    def on_write(self, pid: int, addr: int) -> None:
        """A store or exclusive grant: add ``addr`` to pid's WSIG."""

    def record_producer(self, consumer: int, producer: int) -> None:
        """Consumer optimistically sets MyProducers[producer]."""

    def query_writer(self, pid: int, addr: int) -> tuple[bool, bool]:
        """'Are you the last writer of addr?' -> (claims, genuine)."""
        return False, False

    def record_consumer(self, producer: int, consumer: int, addr: int,
                        genuine: bool) -> None:
        """Producer sets MyConsumers[consumer] (``genuine``=False on a
        Bloom false positive; tracked for the Table 6.1 statistic)."""

    def on_line_left_cache(self, pid: int, addr: int, now: float) -> None:
        """A Delayed/dirty line left pid's L2 via coherence activity."""

    def interval_of(self, pid: int) -> int:
        """The checkpoint interval ``pid`` is currently executing."""
        return 0

    def delayed_interval_of(self, pid: int) -> int:
        """Interval owning pid's Delayed lines (the one being drained)."""
        return self.interval_of(pid)


class CoherenceEngine:
    """Executes loads, stores, writebacks and invalidations.

    All latencies follow Figure 4.3(a); message counts are kept per class
    so the harness can report the extra traffic Rebound adds (Table 6.1).
    """

    def __init__(self, config: MachineConfig, channels: MemoryChannels,
                 memory: MainMemory, network: Interconnect,
                 tracker: DependenceTracker):
        self.config = config
        self.channels = channels
        self.memory = memory
        self.network = network
        self.tracker = tracker
        self.directory = Directory(config.n_cores)
        self.l1s = [L1Cache(config.l1) for _ in range(config.n_cores)]
        self.l2s = [Cache(config.l2) for _ in range(config.n_cores)]
        self.energy = Counter()
        # Demand-wait cycles caused by checkpoint traffic, per core
        # (feeds the IPCDelay category of Figure 6.5).
        self.ckpt_wait = [0.0] * config.n_cores
        self.invalidations_sent = 0
        self.forced_delayed_writebacks = 0
        # Golden architectural image: last value stored to each line, in
        # the simulator's serialization order.  Used by the coherence
        # property tests (config.check_coherence).
        self.golden: dict[int, int] = {}

    def _check_load(self, addr: int, value: int) -> None:
        if self.config.check_coherence:
            expected = self.golden.get(addr, 0)
            assert value == expected, (
                f"coherence violation at {addr:#x}: "
                f"loaded {value:#x}, expected {expected:#x}")

    # ------------------------------------------------------------------
    # dependence recording
    # ------------------------------------------------------------------
    def _handle_dependence(self, entry, consumer: int, now: float,
                           piggybacked: bool) -> None:
        """Record producer->consumer through LW-ID (Figure 3.2a)."""
        producer = entry.lw_id
        if producer is None or producer == consumer:
            return
        if not self.tracker.enabled:
            return
        # The consumer's MyProducers is updated as the line arrives, before
        # any NO_WR could revert it (superset semantics, Section 3.3.2).
        self.tracker.record_producer(consumer, producer)
        self.energy["depreg"] += 1
        claims, genuine = self.tracker.query_writer(producer, entry.addr)
        self.energy["wsig"] += 1
        if not piggybacked:
            # Dedicated "are you the last writer?" query + reply.
            self.network.send(MessageClass.DEP, 2)
        if claims:
            self.tracker.record_consumer(producer, consumer, entry.addr,
                                         genuine)
            self.energy["depreg"] += 1
        else:
            # NO_WR: tell the directory to clear the stale LW-ID.
            self.network.send(MessageClass.DEP, 1)
            entry.lw_id = None

    def _stamp_writer(self, entry, pid: int) -> None:
        entry.lw_id = pid
        if self.tracker.enabled:
            self.tracker.on_write(pid, entry.addr)
            self.energy["wsig"] += 1

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _evict(self, pid: int, victim, now: float) -> None:
        """Handle an L2 victim: write back if dirty, update directory."""
        self.l1s[pid].invalidate(victim.addr)  # inclusion
        interval = self.tracker.interval_of(pid)
        if victim.delayed:
            interval = self.tracker.delayed_interval_of(pid)
            self.tracker.on_line_left_cache(pid, victim.addr, now)
            self.forced_delayed_writebacks += 1
        if victim.dirty:
            # Dirty displacement between checkpoints: the memory controller
            # logs the old value (Section 3.3.3).
            self.channels.writeback(now, victim.addr, logged=True,
                                    checkpoint=False)
            self.memory.writeback(now, pid, victim.addr, victim.value,
                                  interval)
            self.energy["dram"] += 2
            self.energy["log"] += 1
            self.network.send(MessageClass.BASE, 1)
        else:
            self.network.send(MessageClass.BASE, 1)  # PUTS notification
        self.directory.evict_copy(victim.addr, pid)
        self.energy["dir"] += 1

    def _install(self, pid: int, addr: int, state: int, value: int,
                 now: float):
        line, victim = self.l2s[pid].insert(addr, state, value)
        if victim is not None:
            self._evict(pid, victim, now)
        self.l1s[pid].fill(addr)
        return line

    def _invalidate_sharers(self, entry, keep: int, now: float) -> int:
        """Invalidate all sharers except ``keep``; returns count."""
        count = 0
        for sharer in entry.sharer_list():
            if sharer == keep:
                continue
            line = self.l2s[sharer].invalidate(entry.addr)
            self.l1s[sharer].invalidate(entry.addr)
            if line is not None and line.delayed:
                # The checkpointed copy must reach memory before the line
                # leaves the cache (Section 4.1).
                self.channels.writeback(now, entry.addr, logged=True,
                                        checkpoint=True)
                self.memory.writeback(
                    now, sharer, entry.addr, line.value,
                    self.tracker.delayed_interval_of(sharer))
                self.tracker.on_line_left_cache(sharer, entry.addr, now)
                self.forced_delayed_writebacks += 1
            count += 1
        self.network.send(MessageClass.BASE, 2 * count)  # inval + ack
        self.invalidations_sent += count
        entry.sharers = 0
        return count

    def _fetch_from_owner(self, entry, pid: int, now: float,
                          downgrade_to_shared: bool) -> int:
        """Serve a miss from the exclusive owner's L2; returns the value."""
        owner = entry.owner
        oline = self.l2s[owner].peek(entry.addr)
        assert oline is not None, "directory owner lost the line"
        value = oline.value
        self.energy["l2"] += 1
        if oline.delayed:
            # Forced early writeback of a Delayed line (Section 4.1).
            self.channels.writeback(now, entry.addr, logged=True,
                                    checkpoint=True)
            self.memory.writeback(now, owner, entry.addr, oline.value,
                                  self.tracker.delayed_interval_of(owner))
            self.tracker.on_line_left_cache(owner, entry.addr, now)
            self.forced_delayed_writebacks += 1
            oline.delayed = False
            oline.dirty = False
            oline.state = EXCLUSIVE
        if downgrade_to_shared:
            if oline.dirty:
                # Sharing writeback: memory picks up the dirty data (and
                # the controller logs the old value).
                self.channels.writeback(now, entry.addr, logged=True,
                                        checkpoint=False)
                self.memory.writeback(now, owner, entry.addr, oline.value,
                                      self.tracker.interval_of(owner))
                self.energy["dram"] += 2
                self.energy["log"] += 1
                oline.dirty = False
            oline.state = L_SHARED
            entry.mode = SHARED
            entry.sharers = (1 << owner) | (1 << pid)
            entry.owner = None
        else:
            # Dirty (or clean-exclusive) transfer; owner invalidated.
            self.l2s[owner].invalidate(entry.addr)
            self.l1s[owner].invalidate(entry.addr)
            entry.owner = pid
        self.network.send(MessageClass.BASE, 2)  # forward + data
        return value

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def load(self, pid: int, addr: int, now: float) -> float:
        """Execute a load; returns its latency in cycles."""
        self.energy["l1"] += 1
        if self.l1s[pid].contains(addr):
            if self.config.check_coherence:
                resident = self.l2s[pid].peek(addr)
                assert resident is not None, "L1/L2 inclusion violated"
                self._check_load(addr, resident.value)
            return self.config.l1.hit_cycles
        self.energy["l2"] += 1
        line = self.l2s[pid].lookup(addr)
        if line is not None:
            self.l1s[pid].fill(addr)
            self._check_load(addr, line.value)
            return self.config.l2.hit_cycles
        # L2 miss -> home directory.
        entry = self.directory.entry(addr)
        self.energy["dir"] += 1
        self.network.send(MessageClass.BASE, 2)  # request + response
        latency = float(self.config.l2.hit_cycles)
        if entry.mode == EXCL and entry.owner != pid:
            self._handle_dependence(entry, pid, now, piggybacked=True)
            value = self._fetch_from_owner(entry, pid, now,
                                           downgrade_to_shared=True)
            latency += self.config.remote_l2_cycles
            self._install(pid, addr, L_SHARED, value, now)
        elif entry.mode == SHARED:
            self._handle_dependence(entry, pid, now, piggybacked=False)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += self.config.memory_cycles + extra
            value = self.memory.read_line(addr)
            self.energy["dram"] += 1
            entry.sharers |= 1 << pid
            self._install(pid, addr, L_SHARED, value, now)
        else:  # UNCACHED -> RDX: grant Exclusive, stamp LW-ID (Fig 3.2a)
            self._handle_dependence(entry, pid, now, piggybacked=False)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += self.config.memory_cycles + extra
            value = self.memory.read_line(addr)
            self.energy["dram"] += 1
            entry.mode = EXCL
            entry.owner = pid
            entry.sharers = 0
            self._stamp_writer(entry, pid)
            self._install(pid, addr, EXCLUSIVE, value, now)
        self._check_load(addr, value)
        return latency

    def store(self, pid: int, addr: int, value: int, now: float) -> float:
        """Execute a store (write-through L1, write-back L2); returns latency."""
        if self.config.check_coherence:
            self.golden[addr] = value
        self.energy["l1"] += 1
        self.energy["l2"] += 1
        line = self.l2s[pid].lookup(addr)
        latency = float(self.config.l2.hit_cycles)
        if line is not None and line.state == MODIFIED:
            if line.delayed:
                latency += self._force_delayed_writeback(pid, line, now)
            line.value = value
            return latency
        if line is not None and line.state == EXCLUSIVE:
            # Silent E -> M upgrade: no directory traffic; LW-ID was
            # already stamped at the exclusive grant (RDX semantics).
            if line.delayed:
                latency += self._force_delayed_writeback(pid, line, now)
            line.state = MODIFIED
            line.dirty = True
            line.value = value
            if self.tracker.enabled:
                self.tracker.on_write(pid, addr)
                self.energy["wsig"] += 1
            return latency
        entry = self.directory.entry(addr)
        self.energy["dir"] += 1
        self.network.send(MessageClass.BASE, 2)
        if line is not None and line.state == L_SHARED:
            # Upgrade: invalidate the other sharers.
            self._handle_dependence(entry, pid, now, piggybacked=False)
            self._invalidate_sharers(entry, keep=pid, now=now)
            entry.mode = EXCL
            entry.owner = pid
            latency += self.config.remote_l2_cycles
            line.state = MODIFIED
            line.dirty = True
            line.value = value
            self._stamp_writer(entry, pid)
            return latency
        # Full write miss.
        if entry.mode == EXCL and entry.owner != pid:
            self._handle_dependence(entry, pid, now, piggybacked=True)
            self._fetch_from_owner(entry, pid, now, downgrade_to_shared=False)
            latency += self.config.remote_l2_cycles
        elif entry.mode == SHARED:
            self._handle_dependence(entry, pid, now, piggybacked=False)
            self._invalidate_sharers(entry, keep=pid, now=now)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += self.config.memory_cycles + extra
            self.energy["dram"] += 1
        else:
            self._handle_dependence(entry, pid, now, piggybacked=False)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += self.config.memory_cycles + extra
            self.energy["dram"] += 1
        entry.mode = EXCL
        entry.owner = pid
        entry.sharers = 0
        self._stamp_writer(entry, pid)
        self._install(pid, addr, MODIFIED, value, now)
        return latency

    def _force_delayed_writeback(self, pid: int, line, now: float) -> float:
        """Write a Delayed line back immediately before a new store hits it.

        The flush takes the priority path (the store is on the critical
        path); the stall is checkpoint-induced, so it feeds IPCDelay.
        """
        done = self.channels.priority_writeback(now, line.addr)
        self.memory.writeback(now, pid, line.addr, line.value,
                              self.tracker.delayed_interval_of(pid))
        self.energy["dram"] += 2
        self.energy["log"] += 1
        line.delayed = False
        self.tracker.on_line_left_cache(pid, line.addr, now)
        self.forced_delayed_writebacks += 1
        stall = max(0.0, done - now)
        self.ckpt_wait[pid] += stall
        return stall

    # ------------------------------------------------------------------
    # checkpoint / rollback services
    # ------------------------------------------------------------------
    def dirty_line_addrs(self, pid: int) -> list[int]:
        return [ln.addr for ln in self.l2s[pid].dirty_lines()]

    def checkpoint_writeback(self, pid: int, now: float) -> tuple[float, int]:
        """Burst-writeback all dirty lines of ``pid`` (stalling variant).

        Lines stay cached clean (state M -> E); returns ``(completion
        time, n_lines)``.
        """
        dirty = self.l2s[pid].dirty_lines()
        interval = self.tracker.interval_of(pid)
        done = now
        for line in dirty:
            done = max(done, self.channels.writeback(now, line.addr,
                                                     logged=True,
                                                     checkpoint=True))
            self.memory.writeback(now, pid, line.addr, line.value, interval)
            self.energy["dram"] += 2
            self.energy["log"] += 1
            line.dirty = False
            line.delayed = False
            if line.state == MODIFIED:
                line.state = EXCLUSIVE
        return done, len(dirty)

    def mark_delayed(self, pid: int) -> int:
        """Set the Delayed bit on all dirty lines (Section 4.1 start)."""
        count = 0
        for line in self.l2s[pid].dirty_lines():
            line.delayed = True
            count += 1
        return count

    def complete_delayed(self, pid: int, now: float, interval: int) -> int:
        """Drain every still-Delayed line of ``pid`` to memory.

        Channel occupancy for the drain window is accounted separately by
        the scheme (background traffic); here we move the data and log it
        tagged with the checkpointed ``interval`` that produced it.
        """
        count = 0
        for line in list(self.l2s[pid].lines()):
            if not line.delayed:
                continue
            self.memory.writeback(now, pid, line.addr, line.value, interval)
            self.energy["dram"] += 2
            self.energy["log"] += 1
            line.delayed = False
            line.dirty = False
            if line.state == MODIFIED:
                line.state = EXCLUSIVE
            count += 1
        return count

    def invalidate_core(self, pid: int) -> int:
        """Flash-invalidate both cache levels of ``pid`` (rollback)."""
        if self.config.check_coherence:
            # Dirty data discarded by the invalidation reverts the golden
            # image to whatever memory holds (the log undo that follows
            # refines it further for the logged lines).
            for line in self.l2s[pid].dirty_lines():
                self.golden[line.addr] = self.memory.peek(line.addr)
        self.directory.purge_core(pid, clear_lw=True)
        n = self.l2s[pid].invalidate_all()
        self.l1s[pid].invalidate_all()
        self.energy["l2"] += n
        return n
