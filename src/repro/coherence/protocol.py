"""Directory-based MESI coherence engine with Rebound dependence hooks.

This is the substrate Rebound piggybacks on (Section 3.3.1): every
transaction that transfers data between processors updates the
directory's LW-ID field and, through the :class:`DependenceTracker`
interface implemented by the checkpointing scheme, the MyProducers /
MyConsumers / WSIG registers.

Flows implemented (Figure 3.2a):

* ``WR`` — a store gains exclusive ownership; the directory records the
  writer's PID in LW-ID; the previous last writer (if any, and if its
  WSIG confirms) records the WAW dependence in its MyConsumers.
* ``RD`` — a load of a line with a live LW-ID records a RAW dependence:
  the reader sets MyProducers, the writer sets MyConsumers.
* ``RDX`` — a load that finds the line uncached is granted Exclusive and
  therefore also stamps LW-ID (the core may later write silently).
* ``NO_WR`` — the supposed last writer's WSIG misses: the dependence is
  declined and the directory lazily clears the stale LW-ID
  (Section 3.3.2).  The reader's MyProducers was already set, so it stays
  a superset — exactly the imprecision the checkpoint protocol's
  Decline messages absorb.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.coherence.directory import Directory, EXCL, SHARED, UNCACHED
from repro.interconnect import Interconnect, MessageClass
from repro.mem import (
    Cache,
    EXCLUSIVE,
    L1Cache,
    MODIFIED,
    MainMemory,
    MemoryChannels,
)
from repro.mem import SHARED as L_SHARED
from repro.params import MachineConfig


class DependenceTracker:
    """Scheme-side interface for LW-ID / Dep-register maintenance.

    The default implementation tracks nothing (used by Global and the
    no-checkpointing baseline, which have no such hardware).
    """

    enabled = False

    def on_write(self, pid: int, addr: int) -> None:
        """A store or exclusive grant: add ``addr`` to pid's WSIG."""

    def record_producer(self, consumer: int, producer: int) -> None:
        """Consumer optimistically sets MyProducers[producer]."""

    def query_writer(self, pid: int, addr: int) -> tuple[bool, bool]:
        """'Are you the last writer of addr?' -> (claims, genuine)."""
        return False, False

    def record_consumer(self, producer: int, consumer: int, addr: int,
                        genuine: bool) -> None:
        """Producer sets MyConsumers[consumer] (``genuine``=False on a
        Bloom false positive; tracked for the Table 6.1 statistic)."""

    def on_line_left_cache(self, pid: int, addr: int, now: float) -> None:
        """A Delayed/dirty line left pid's L2 via coherence activity."""

    def interval_of(self, pid: int) -> int:
        """The checkpoint interval ``pid`` is currently executing."""
        return 0

    def delayed_interval_of(self, pid: int) -> int:
        """Interval owning pid's Delayed lines (the one being drained)."""
        return self.interval_of(pid)

    def on_fastpath_epoch(self, pid: int) -> None:
        """``pid``'s fast-path residency epoch advanced.

        Fired (via :meth:`CoherenceEngine.fastpath_epoch`) on every event
        that can change a line's provable-hit status for ``pid`` —
        eviction, invalidation, downgrade, checkpoint-interval advance
        (WSIG epoch), delayed-writeback activity, rollback.  Schemes that
        cache per-interval residency assumptions override this one hook
        instead of poking cache internals; the default tracks nothing.
        """


class CoherenceEngine:
    """Executes loads, stores, writebacks and invalidations.

    All latencies follow Figure 4.3(a); message counts are kept per class
    so the harness can report the extra traffic Rebound adds (Table 6.1).

    Energy events are plain ``__slots__`` int fields (one per accounting
    class) rather than a ``Counter``: the dict-keyed ``+=`` was a
    measurable fraction of every miss.  :meth:`energy_events` rebuilds
    the historical mapping for :class:`~repro.sim.stats.SimStats`.
    """

    __slots__ = (
        "config", "channels", "memory", "network", "tracker", "directory",
        "l1s", "l2s",
        "energy_l1", "energy_l2", "energy_dir", "energy_dram", "energy_log",
        "energy_wsig", "energy_depreg",
        "fast_loads", "fast_stores", "fastpath_epochs",
        "ckpt_wait", "invalidations_sent", "forced_delayed_writebacks",
        "golden",
    )

    def __init__(self, config: MachineConfig, channels: MemoryChannels,
                 memory: MainMemory, network: Interconnect,
                 tracker: DependenceTracker):
        self.config = config
        self.channels = channels
        self.memory = memory
        self.network = network
        self.tracker = tracker
        self.directory = Directory(config.n_cores)
        self.l1s = [L1Cache(config.l1) for _ in range(config.n_cores)]
        self.l2s = [Cache(config.l2) for _ in range(config.n_cores)]
        self.energy_l1 = 0
        self.energy_l2 = 0
        self.energy_dir = 0
        self.energy_dram = 0
        self.energy_log = 0
        self.energy_wsig = 0
        self.energy_depreg = 0
        # Accesses serviceable on the fast path: loads hitting the L1
        # residency filter, stores to MODIFIED non-Delayed lines.  These
        # count *eligibility*, so the slow path bumps them in exactly the
        # branches the inline fast path services — the totals are
        # invariant under REPRO_FASTPATH.
        self.fast_loads = 0
        self.fast_stores = 0
        # Per-core residency-filter epochs: bumped on every event that
        # can change a line's provable-hit status (see fastpath_epoch).
        self.fastpath_epochs = [0] * config.n_cores
        # Demand-wait cycles caused by checkpoint traffic, per core
        # (feeds the IPCDelay category of Figure 6.5).
        self.ckpt_wait = [0.0] * config.n_cores
        self.invalidations_sent = 0
        self.forced_delayed_writebacks = 0
        # Golden architectural image: last value stored to each line, in
        # the simulator's serialization order.  Used by the coherence
        # property tests (config.check_coherence).
        self.golden: dict[int, int] = {}

    def energy_events(self) -> dict:
        """The per-class energy-event mapping (Counter-compatible shape).

        Only classes with at least one event appear, matching the old
        ``Counter`` behaviour where a key existed iff it was bumped.
        """
        events = {}
        for key, count in (("l1", self.energy_l1), ("l2", self.energy_l2),
                           ("dir", self.energy_dir),
                           ("dram", self.energy_dram),
                           ("log", self.energy_log),
                           ("wsig", self.energy_wsig),
                           ("depreg", self.energy_depreg)):
            if count:
                events[key] = count
        return events

    # ------------------------------------------------------------------
    # fast-path residency services
    # ------------------------------------------------------------------
    def fastpath_epoch(self, pid: int) -> None:
        """Advance ``pid``'s residency-filter epoch.

        The single funnel for every event that can change a line's
        provable-hit status for ``pid`` — eviction, invalidation,
        downgrade, delayed-writeback activity, checkpoint-interval
        advance, rollback.  Fires the scheme's
        :meth:`DependenceTracker.on_fastpath_epoch` hook; fired
        identically whether the fast path is on or off, so the epoch
        totals are mode-invariant.
        """
        self.fastpath_epochs[pid] += 1
        self.tracker.on_fastpath_epoch(pid)

    def flush_fastpath(self, l1_loads: list, l2_loads: list,
                       stores: list) -> None:
        """Fold batched per-core fast-path counters into the aggregates.

        ``l1_loads[pid]``/``l2_loads[pid]``/``stores[pid]`` are the hits
        the machine's inline fast path serviced since the last flush
        (loads by the level that supplied them).  The bumps mirror, one
        for one, what the slow path would have accumulated had each
        access entered :meth:`load`/:meth:`store`: hit/miss counters on
        the cache level each access touched, and the l1/l2 energy
        events.  The lists are zeroed in place.
        """
        total_l1 = 0
        total_l2 = 0
        total_stores = 0
        l1s = self.l1s
        l2s = self.l2s
        for pid, n in enumerate(l1_loads):
            if n:
                l1s[pid].n_hits += n
                total_l1 += n
                l1_loads[pid] = 0
        for pid, n in enumerate(l2_loads):
            if n:
                l1s[pid].n_misses += n
                l2s[pid].n_hits += n
                total_l2 += n
                l2_loads[pid] = 0
        for pid, n in enumerate(stores):
            if n:
                l2s[pid].n_hits += n
                total_stores += n
                stores[pid] = 0
        if total_l1 or total_l2 or total_stores:
            self.fast_loads += total_l1 + total_l2
            self.fast_stores += total_stores
            self.energy_l1 += total_l1 + total_l2 + total_stores
            self.energy_l2 += total_l2 + total_stores

    def _check_load(self, addr: int, value: int) -> None:
        if self.config.check_coherence:
            expected = self.golden.get(addr, 0)
            assert value == expected, (
                f"coherence violation at {addr:#x}: "
                f"loaded {value:#x}, expected {expected:#x}")

    # ------------------------------------------------------------------
    # dependence recording
    # ------------------------------------------------------------------
    def _handle_dependence(self, entry, consumer: int, now: float,
                           piggybacked: bool) -> None:
        """Record producer->consumer through LW-ID (Figure 3.2a)."""
        producer = entry.lw_id
        if producer is None or producer == consumer:
            return
        if not self.tracker.enabled:
            return
        # The consumer's MyProducers is updated as the line arrives, before
        # any NO_WR could revert it (superset semantics, Section 3.3.2).
        self.tracker.record_producer(consumer, producer)
        self.energy_depreg += 1
        claims, genuine = self.tracker.query_writer(producer, entry.addr)
        self.energy_wsig += 1
        if not piggybacked:
            # Dedicated "are you the last writer?" query + reply.
            self.network.send(MessageClass.DEP, 2)
        if claims:
            self.tracker.record_consumer(producer, consumer, entry.addr,
                                         genuine)
            self.energy_depreg += 1
        else:
            # NO_WR: tell the directory to clear the stale LW-ID.
            self.network.send(MessageClass.DEP, 1)
            entry.lw_id = None

    def _stamp_writer(self, entry, pid: int) -> None:
        entry.lw_id = pid
        if self.tracker.enabled:
            self.tracker.on_write(pid, entry.addr)
            self.energy_wsig += 1

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _evict(self, pid: int, victim, now: float) -> None:
        """Handle an L2 victim: write back if dirty, update directory."""
        self.fastpath_epoch(pid)
        self.l1s[pid].invalidate(victim.addr)  # inclusion
        interval = self.tracker.interval_of(pid)
        if victim.delayed:
            interval = self.tracker.delayed_interval_of(pid)
            self.tracker.on_line_left_cache(pid, victim.addr, now)
            self.forced_delayed_writebacks += 1
        if victim.dirty:
            # Dirty displacement between checkpoints: the memory controller
            # logs the old value (Section 3.3.3).
            self.channels.writeback(now, victim.addr, logged=True,
                                    checkpoint=False)
            self.memory.writeback(now, pid, victim.addr, victim.value,
                                  interval)
            self.energy_dram += 2
            self.energy_log += 1
            self.network.send(MessageClass.BASE, 1)
        else:
            self.network.send(MessageClass.BASE, 1)  # PUTS notification
        self.directory.evict_copy(victim.addr, pid)
        self.energy_dir += 1

    def _install(self, pid: int, addr: int, state: int, value: int,
                 now: float):
        line, victim = self.l2s[pid].insert(addr, state, value)
        if victim is not None:
            self._evict(pid, victim, now)
        self.l1s[pid].fill(addr)
        return line

    def _invalidate_sharers(self, entry, keep: int, now: float) -> int:
        """Invalidate all sharers except ``keep``; returns count."""
        count = 0
        for sharer in entry.sharer_list():
            if sharer == keep:
                continue
            self.fastpath_epoch(sharer)
            line = self.l2s[sharer].invalidate(entry.addr)
            self.l1s[sharer].invalidate(entry.addr)
            if line is not None and line.delayed:
                # The checkpointed copy must reach memory before the line
                # leaves the cache (Section 4.1).
                self.channels.writeback(now, entry.addr, logged=True,
                                        checkpoint=True)
                self.memory.writeback(
                    now, sharer, entry.addr, line.value,
                    self.tracker.delayed_interval_of(sharer))
                self.tracker.on_line_left_cache(sharer, entry.addr, now)
                self.forced_delayed_writebacks += 1
            count += 1
        self.network.send(MessageClass.BASE, 2 * count)  # inval + ack
        self.invalidations_sent += count
        entry.sharers = 0
        return count

    def _fetch_from_owner(self, entry, pid: int, now: float,
                          downgrade_to_shared: bool) -> int:
        """Serve a miss from the exclusive owner's L2; returns the value."""
        owner = entry.owner
        self.fastpath_epoch(owner)  # downgrade or invalidation below
        oline = self.l2s[owner].peek(entry.addr)
        assert oline is not None, "directory owner lost the line"
        value = oline.value
        self.energy_l2 += 1
        if oline.delayed:
            # Forced early writeback of a Delayed line (Section 4.1).
            self.channels.writeback(now, entry.addr, logged=True,
                                    checkpoint=True)
            self.memory.writeback(now, owner, entry.addr, oline.value,
                                  self.tracker.delayed_interval_of(owner))
            self.tracker.on_line_left_cache(owner, entry.addr, now)
            self.forced_delayed_writebacks += 1
            oline.delayed = False
            oline.dirty = False
            oline.state = EXCLUSIVE
        if downgrade_to_shared:
            if oline.dirty:
                # Sharing writeback: memory picks up the dirty data (and
                # the controller logs the old value).
                self.channels.writeback(now, entry.addr, logged=True,
                                        checkpoint=False)
                self.memory.writeback(now, owner, entry.addr, oline.value,
                                      self.tracker.interval_of(owner))
                self.energy_dram += 2
                self.energy_log += 1
                oline.dirty = False
            oline.state = L_SHARED
            entry.mode = SHARED
            entry.sharers = (1 << owner) | (1 << pid)
            entry.owner = None
        else:
            # Dirty (or clean-exclusive) transfer; owner invalidated.
            self.l2s[owner].invalidate(entry.addr)
            self.l1s[owner].invalidate(entry.addr)
            entry.owner = pid
        self.network.send(MessageClass.BASE, 2)  # forward + data
        return value

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def load(self, pid: int, addr: int, now: float) -> float:
        """Execute a load; returns its latency in cycles."""
        config = self.config
        self.energy_l1 += 1
        if self.l1s[pid].contains(addr):
            # Fast-path-eligible: counted here so the total is invariant
            # under REPRO_FASTPATH (the inline fast path batches the
            # same bump and the engine is then never entered).
            self.fast_loads += 1
            if config.check_coherence:
                resident = self.l2s[pid].peek(addr)
                assert resident is not None, "L1/L2 inclusion violated"
                self._check_load(addr, resident.value)
            return config.l1.hit_cycles
        self.energy_l2 += 1
        line = self.l2s[pid].lookup(addr)
        if line is not None:
            # Fast-path-eligible too (any resident line): counted here
            # so the total is invariant under REPRO_FASTPATH.
            self.fast_loads += 1
            self.l1s[pid].fill(addr)
            self._check_load(addr, line.value)
            return config.l2.hit_cycles
        # L2 miss -> home directory.
        entry = self.directory.entry(addr)
        self.energy_dir += 1
        self.network.send(MessageClass.BASE, 2)  # request + response
        latency = float(config.l2.hit_cycles)
        if entry.mode == EXCL and entry.owner != pid:
            self._handle_dependence(entry, pid, now, piggybacked=True)
            value = self._fetch_from_owner(entry, pid, now,
                                           downgrade_to_shared=True)
            latency += config.remote_l2_cycles
            self._install(pid, addr, L_SHARED, value, now)
        elif entry.mode == SHARED:
            self._handle_dependence(entry, pid, now, piggybacked=False)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += config.memory_cycles + extra
            value = self.memory.read_line(addr)
            self.energy_dram += 1
            entry.sharers |= 1 << pid
            self._install(pid, addr, L_SHARED, value, now)
        else:  # UNCACHED -> RDX: grant Exclusive, stamp LW-ID (Fig 3.2a)
            self._handle_dependence(entry, pid, now, piggybacked=False)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += config.memory_cycles + extra
            value = self.memory.read_line(addr)
            self.energy_dram += 1
            entry.mode = EXCL
            entry.owner = pid
            entry.sharers = 0
            self._stamp_writer(entry, pid)
            self._install(pid, addr, EXCLUSIVE, value, now)
        self._check_load(addr, value)
        return latency

    def store(self, pid: int, addr: int, value: int, now: float) -> float:
        """Execute a store (write-through L1, write-back L2); returns latency."""
        config = self.config
        if config.check_coherence:
            self.golden[addr] = value
        self.energy_l1 += 1
        self.energy_l2 += 1
        line = self.l2s[pid].lookup(addr)
        latency = float(config.l2.hit_cycles)
        if line is not None and line.state == MODIFIED:
            if line.delayed:
                latency += self._force_delayed_writeback(pid, line, now)
                line.value = value
                return latency
            # Fast-path-eligible (MODIFIED, not Delayed): counted here so
            # the total is invariant under REPRO_FASTPATH.
            self.fast_stores += 1
            line.value = value
            return latency
        if line is not None and line.state == EXCLUSIVE:
            # Silent E -> M upgrade: no directory traffic; LW-ID was
            # already stamped at the exclusive grant (RDX semantics).
            if line.delayed:
                latency += self._force_delayed_writeback(pid, line, now)
            line.state = MODIFIED
            line.dirty = True
            line.value = value
            if self.tracker.enabled:
                self.tracker.on_write(pid, addr)
                self.energy_wsig += 1
            return latency
        entry = self.directory.entry(addr)
        self.energy_dir += 1
        self.network.send(MessageClass.BASE, 2)
        if line is not None and line.state == L_SHARED:
            # Upgrade: invalidate the other sharers.
            self._handle_dependence(entry, pid, now, piggybacked=False)
            self._invalidate_sharers(entry, keep=pid, now=now)
            entry.mode = EXCL
            entry.owner = pid
            latency += config.remote_l2_cycles
            line.state = MODIFIED
            line.dirty = True
            line.value = value
            self._stamp_writer(entry, pid)
            return latency
        # Full write miss.
        if entry.mode == EXCL and entry.owner != pid:
            self._handle_dependence(entry, pid, now, piggybacked=True)
            self._fetch_from_owner(entry, pid, now, downgrade_to_shared=False)
            latency += config.remote_l2_cycles
        elif entry.mode == SHARED:
            self._handle_dependence(entry, pid, now, piggybacked=False)
            self._invalidate_sharers(entry, keep=pid, now=now)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += config.memory_cycles + extra
            self.energy_dram += 1
        else:
            self._handle_dependence(entry, pid, now, piggybacked=False)
            extra, ckpt_wait = self.channels.demand_access(now, addr)
            self.ckpt_wait[pid] += ckpt_wait
            latency += config.memory_cycles + extra
            self.energy_dram += 1
        entry.mode = EXCL
        entry.owner = pid
        entry.sharers = 0
        self._stamp_writer(entry, pid)
        self._install(pid, addr, MODIFIED, value, now)
        return latency

    def _force_delayed_writeback(self, pid: int, line, now: float) -> float:
        """Write a Delayed line back immediately before a new store hits it.

        The flush takes the priority path (the store is on the critical
        path); the stall is checkpoint-induced, so it feeds IPCDelay.
        """
        self.fastpath_epoch(pid)
        done = self.channels.priority_writeback(now, line.addr)
        self.memory.writeback(now, pid, line.addr, line.value,
                              self.tracker.delayed_interval_of(pid))
        self.energy_dram += 2
        self.energy_log += 1
        line.delayed = False
        self.tracker.on_line_left_cache(pid, line.addr, now)
        self.forced_delayed_writebacks += 1
        stall = max(0.0, done - now)
        self.ckpt_wait[pid] += stall
        return stall

    # ------------------------------------------------------------------
    # checkpoint / rollback services
    # ------------------------------------------------------------------
    def dirty_line_addrs(self, pid: int) -> list[int]:
        return [ln.addr for ln in self.l2s[pid].dirty_lines()]

    def checkpoint_writeback(self, pid: int, now: float) -> tuple[float, int]:
        """Burst-writeback all dirty lines of ``pid`` (stalling variant).

        Lines stay cached clean (state M -> E); returns ``(completion
        time, n_lines)``.
        """
        self.fastpath_epoch(pid)
        dirty = self.l2s[pid].dirty_lines()
        interval = self.tracker.interval_of(pid)
        done = now
        for line in dirty:
            done = max(done, self.channels.writeback(now, line.addr,
                                                     logged=True,
                                                     checkpoint=True))
            self.memory.writeback(now, pid, line.addr, line.value, interval)
            self.energy_dram += 2
            self.energy_log += 1
            line.dirty = False
            line.delayed = False
            if line.state == MODIFIED:
                line.state = EXCLUSIVE
        return done, len(dirty)

    def mark_delayed(self, pid: int) -> int:
        """Set the Delayed bit on all dirty lines (Section 4.1 start)."""
        self.fastpath_epoch(pid)
        count = 0
        for line in self.l2s[pid].dirty_lines():
            line.delayed = True
            count += 1
        return count

    def complete_delayed(self, pid: int, now: float, interval: int) -> int:
        """Drain every still-Delayed line of ``pid`` to memory.

        Channel occupancy for the drain window is accounted separately by
        the scheme (background traffic); here we move the data and log it
        tagged with the checkpointed ``interval`` that produced it.
        """
        self.fastpath_epoch(pid)
        count = 0
        for line in list(self.l2s[pid].lines()):
            if not line.delayed:
                continue
            self.memory.writeback(now, pid, line.addr, line.value, interval)
            self.energy_dram += 2
            self.energy_log += 1
            line.delayed = False
            line.dirty = False
            if line.state == MODIFIED:
                line.state = EXCLUSIVE
            count += 1
        return count

    def invalidate_core(self, pid: int) -> int:
        """Flash-invalidate both cache levels of ``pid`` (rollback)."""
        self.fastpath_epoch(pid)
        if self.config.check_coherence:
            # Dirty data discarded by the invalidation reverts the golden
            # image to whatever memory holds (the log undo that follows
            # refines it further for the logged lines).
            for line in self.l2s[pid].dirty_lines():
                self.golden[line.addr] = self.memory.peek(line.addr)
        self.directory.purge_core(pid, clear_lw=True)
        n = self.l2s[pid].invalidate_all()
        self.l1s[pid].invalidate_all()
        self.energy_l2 += n
        return n
