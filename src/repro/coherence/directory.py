"""Full-map directory with the Rebound Last-Writer-ID field.

Each cache-line entry tracks the MESI sharing mode (uncached / shared /
exclusive-owner), a full-map sharer bit vector, and the **LW-ID**: the
processor that last wrote (or read exclusively) the line in the current
checkpoint interval (Section 3.3.1).

Two paper-faithful subtleties:

* Evicting a line does *not* clear its LW-ID — doing so would lose the
  ability to record dependences on the line (Section 3.3.1).
* LW-ID is allowed to go stale after a checkpoint; it is lazily cleared
  when the supposed writer answers a query with NO_WR (Section 3.3.2).
"""

from __future__ import annotations

from typing import Iterator, Optional

UNCACHED = 0
SHARED = 1
EXCL = 2


class DirEntry:
    """Directory state of one cache line."""

    __slots__ = ("addr", "mode", "owner", "sharers", "lw_id")

    def __init__(self, addr: int):
        self.addr = addr
        self.mode = UNCACHED
        self.owner: Optional[int] = None
        self.sharers = 0          # bit i set => core i holds a copy
        self.lw_id: Optional[int] = None

    def sharer_list(self) -> list[int]:
        out, mask, i = [], self.sharers, 0
        while mask:
            if mask & 1:
                out.append(i)
            mask >>= 1
            i += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = {UNCACHED: "U", SHARED: "S", EXCL: "E"}[self.mode]
        return (f"<Dir {self.addr:#x} {mode} owner={self.owner} "
                f"sharers={self.sharers:b} lw={self.lw_id}>")


class Directory:
    """The distributed full-map directory, indexed by line address.

    Physically the paper distributes one directory module per tile (home
    node by address interleaving); functionally it is a single map, which
    is what we model.  Latency of reaching the home node is part of the
    protocol's round-trip constants.
    """

    __slots__ = ("n_cores", "_entries", "lookups")

    def __init__(self, n_cores: int):
        self.n_cores = n_cores
        self._entries: dict[int, DirEntry] = {}
        self.lookups = 0

    def entry(self, addr: int) -> DirEntry:
        self.lookups += 1
        entry = self._entries.get(addr)
        if entry is None:
            entry = DirEntry(addr)
            self._entries[addr] = entry
        return entry

    def peek(self, addr: int) -> Optional[DirEntry]:
        return self._entries.get(addr)

    def entries(self) -> Iterator[DirEntry]:
        return iter(self._entries.values())

    def home_of(self, addr: int) -> int:
        """Home tile of a line (address-interleaved)."""
        return addr % self.n_cores

    # -- bulk maintenance --------------------------------------------------
    def evict_copy(self, addr: int, pid: int) -> None:
        """A clean/dirty copy left core ``pid``'s cache (LW-ID preserved)."""
        entry = self._entries.get(addr)
        if entry is None:
            return
        if entry.mode == EXCL and entry.owner == pid:
            entry.mode = UNCACHED
            entry.owner = None
            entry.sharers = 0
        elif entry.mode == SHARED:
            entry.sharers &= ~(1 << pid)
            if entry.sharers == 0:
                entry.mode = UNCACHED

    def purge_core(self, pid: int, clear_lw: bool = True) -> int:
        """Drop every copy held by ``pid`` (rollback invalidation).

        Also clears LW-ID fields naming the processor, as the rollback
        protocol does (Section 3.3.5).  Returns entries touched.
        """
        bit = 1 << pid
        touched = 0
        for entry in self._entries.values():
            hit = False
            if entry.mode == EXCL and entry.owner == pid:
                entry.mode = UNCACHED
                entry.owner = None
                entry.sharers = 0
                hit = True
            elif entry.sharers & bit:
                entry.sharers &= ~bit
                if entry.sharers == 0 and entry.mode == SHARED:
                    entry.mode = UNCACHED
                hit = True
            if clear_lw and entry.lw_id == pid:
                entry.lw_id = None
                hit = True
            touched += hit
        return touched
