"""``reprolint``: contract-enforcing static analysis for the repro tree.

The codebase rests on three contracts enforced, until now, only at
runtime — after a cache is poisoned or a replica batch has degraded:
bit-determinism (the content-addressed result/workload caches),
fork-safety (every scheduled callback a ``DurableCall``), and
fingerprint coverage (every module that can affect a ``SimStats``
hashed by ``code_fingerprint()``).  ``reprolint`` proves them
statically.  Production rules:

========  ==================  ===========================================
code      name                contract
========  ==================  ===========================================
RL001     fork-safety         no closure callbacks through ``schedule``/
                              ``schedule_call``/heap pushes in
                              ``repro.sim``/``repro.core``
RL002     determinism         no wall clocks, OS entropy, global random
                              state, ``id()`` ordering or unordered-set
                              iteration in sim/core/workloads
RL003     fingerprint-        import closure of ``execute_run``/
          coverage            ``run_replica_batch`` ⊆ the
                              ``code_fingerprint()`` file set;
                              ``register_workload`` outside
                              ``repro/workloads`` passes ``fingerprint=``
RL004     cache-identity      types riding in ``RunKey``/``Overrides``/
                              store idents are frozen dataclasses,
                              Enums, or define ``__hash__``+``__repr__``
RL005     trace-              no in-place mutation of ``CompiledTrace``
          immutability        ``.ops``/``.args`` columns outside
                              ``trace.py`` — specs are shared across
                              runs (store LRU, mmap views, leaders)
RL006     fastpath-           no direct cache-line/directory mutation
          invalidation        outside ``coherence``/``mem`` — residency
                              changes funnel through the engine so the
                              fast-path filters stay coherent
========  ==================  ===========================================

Run it with ``python -m repro.harness lint [--json] [--rules RL001,...]``;
suppress a line with ``# reprolint: disable=CODE``.  Out-of-tree rules
register through :func:`register_rule`, mirroring the scheme/workload
registries.
"""

from repro.analysis.framework import (
    Finding,
    LintError,
    LintReport,
    ModuleContext,
    Project,
    ProjectContext,
    Rule,
    default_project,
    register_rule,
    registered_rules,
    resolve_rules,
    run_lint,
    unregister_rule,
)
from repro.analysis.rules_cache import CacheIdentityRule
from repro.analysis.rules_determinism import DeterminismRule
from repro.analysis.rules_fingerprint import FingerprintCoverageRule
from repro.analysis.rules_fork import ForkSafetyRule
from repro.analysis.rules_memsys import FastpathInvalidationRule
from repro.analysis.rules_trace import TraceImmutabilityRule

__all__ = [
    "Finding",
    "LintError",
    "LintReport",
    "ModuleContext",
    "Project",
    "ProjectContext",
    "Rule",
    "default_project",
    "register_rule",
    "registered_rules",
    "resolve_rules",
    "run_lint",
    "unregister_rule",
    "ForkSafetyRule",
    "DeterminismRule",
    "FingerprintCoverageRule",
    "CacheIdentityRule",
    "TraceImmutabilityRule",
    "FastpathInvalidationRule",
]


def _register_builtins() -> None:
    """The six production rules register themselves at import time,
    exactly like the built-in schemes and workloads do."""
    for rule_cls in (ForkSafetyRule, DeterminismRule,
                     FingerprintCoverageRule, CacheIdentityRule,
                     TraceImmutabilityRule, FastpathInvalidationRule):
        register_rule(rule_cls())


_register_builtins()
