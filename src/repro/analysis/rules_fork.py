"""RL001 — fork-safety: scheduled callbacks must be ``DurableCall``\\ s.

``Machine.fork`` (the vectorized campaign executor's replica spill)
deep-copies the event heap; ``copy.deepcopy`` treats functions as
atomic, so a scheduled closure would keep firing into the *parent*
machine.  The runtime guard (``UnforkableMachineError``) only trips
once a batch has already formed — and then silently degrades it to
scalar runs.  This rule bans the hazard at the source, inside
``repro.sim`` and ``repro.core``:

* any call through the legacy closure path ``<obj>.schedule(...)``;
* a ``lambda`` argument to ``schedule_call`` or a heap push;
* a locally-defined function (a closure by construction) passed by
  name to ``schedule_call`` or a heap push.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import Finding, ModuleContext, Rule

#: Callables whose arguments must stay closure-free: the DurableCall
#: scheduling entry point and raw event-heap pushes.
_SINKS = ("schedule_call", "heappush")


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class _ForkSafetyVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: List[Finding] = []
        #: Names of functions defined inside an enclosing function —
        #: closures by construction, one scope set per nesting level.
        self._local_fns: list[set[str]] = []

    # -- scope tracking ----------------------------------------------------
    def _visit_function(self, node) -> None:
        if self._local_fns:
            self._local_fns[-1].add(node.name)
        self._local_fns.append(set())
        self.generic_visit(node)
        self._local_fns.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _is_local_fn(self, name: str) -> bool:
        return any(name in scope for scope in self._local_fns)

    # -- the checks --------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name == "schedule" and isinstance(node.func, ast.Attribute):
            self.findings.append(Finding(
                self.ctx.relpath, node.lineno, "RL001",
                "legacy closure scheduling (Machine.schedule); use "
                "schedule_call with a DurableCall so forks stay sound"))
        elif name in _SINKS:
            for arg in ast.walk(node):
                if isinstance(arg, ast.Lambda):
                    self.findings.append(Finding(
                        self.ctx.relpath, arg.lineno, "RL001",
                        f"lambda passed to {name}; scheduled callbacks "
                        f"must be DurableCalls (deepcopy treats "
                        f"functions as atomic, breaking Machine.fork)"))
                elif isinstance(arg, ast.Name) \
                        and self._is_local_fn(arg.id):
                    self.findings.append(Finding(
                        self.ctx.relpath, arg.lineno, "RL001",
                        f"local function {arg.id!r} passed to {name}; "
                        f"scheduled callbacks must be DurableCalls "
                        f"(a closure would fire into the pre-fork "
                        f"machine)"))
        self.generic_visit(node)


class ForkSafetyRule(Rule):
    code = "RL001"
    name = "fork-safety"
    description = ("no lambda/closure/local-function callbacks through "
                   "Machine.schedule, schedule_call or heap pushes in "
                   "repro.sim / repro.core — only DurableCall")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_packages("sim", "core"):
            return iter(())
        visitor = _ForkSafetyVisitor(ctx)
        visitor.visit(ctx.tree)
        return iter(visitor.findings)
