"""RL004 — cache-identity hygiene: key material must hash/repr stably.

A ``RunKey``'s ``repr`` *is* the disk-cache file name (hashed together
with the code fingerprint) and its ``hash`` is the in-memory memo key;
``Overrides`` and the workload-store idents feed the same machinery.
Every type that rides in them must therefore be value-like: equal
values must hash alike and repr alike, across processes and sessions.
The default ``object.__repr__``/``__hash__`` (address-derived) violate
both.

The rule collects the *identity type set* — every class name referenced
in ``RunKey``'s field annotations, plus the duck-typed registry tags
(``SchemeTag``, ``WorkloadTag``) that ride in fields typed as plain
``str``/``Scheme``, plus ``RunKey`` and ``Overrides`` themselves — and
requires each class defined in the tree under one of those names to be

* an ``Enum`` (members are singletons with stable name/repr), or
* a frozen dataclass (generated ``__hash__``/``__repr__`` are
  value-based), or
* an explicit implementor of both ``__hash__`` and ``__repr__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ProjectContext, Rule

_ENUM_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})

#: Identity carriers not visible in RunKey's annotations: the registry
#: tags ride in fields annotated ``str``/``Scheme`` (duck-typed via
#: ``.value``), and Overrides/RunKey are identity material themselves.
_ALWAYS_IDENTITY = ("RunKey", "Overrides", "SchemeTag", "WorkloadTag",
                    "FaultPlan")


def _annotation_names(node: ast.expr) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations ("FaultPlan") still name types.
            try:
                yield from _annotation_names(
                    ast.parse(sub.value, mode="eval").body)
            except SyntaxError:
                pass


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.attr if isinstance(func, ast.Attribute) \
            else (func.id if isinstance(func, ast.Name) else "")
        if name != "dataclass":
            continue
        for kw in decorator.keywords:
            if kw.arg == "frozen" and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is True:
                return True
    return False


def _is_enum(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) \
            else (base.id if isinstance(base, ast.Name) else "")
        if name in _ENUM_BASES:
            return True
    return False


def _defines(node: ast.ClassDef, *methods: str) -> bool:
    names = {item.name for item in node.body
             if isinstance(item, ast.FunctionDef)}
    return all(method in names for method in methods)


class CacheIdentityRule(Rule):
    code = "RL004"
    name = "cache-identity"
    description = ("every type riding in RunKey / Overrides / store "
                   "idents must be a frozen dataclass, an Enum, or "
                   "define __hash__ + a stable __repr__")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        identity_names = set(_ALWAYS_IDENTITY)
        classes: list[tuple[ast.ClassDef, str]] = []
        for ctx in project.modules:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    classes.append((node, ctx.relpath))
                    if node.name == "RunKey":
                        for item in node.body:
                            if isinstance(item, ast.AnnAssign):
                                identity_names.update(
                                    _annotation_names(item.annotation))
        findings = []
        for node, relpath in classes:
            if node.name not in identity_names:
                continue
            if _is_enum(node) or _is_frozen_dataclass(node) \
                    or _defines(node, "__hash__", "__repr__"):
                continue
            findings.append(Finding(
                relpath, node.lineno, "RL004",
                f"class {node.name} rides in cache identities but is "
                f"neither a frozen dataclass nor an Enum and does not "
                f"define both __hash__ and __repr__; its default "
                f"address-derived identity would poison the "
                f"content-addressed caches"))
        return iter(findings)
