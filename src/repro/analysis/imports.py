"""Static import graph over one package tree.

RL003 needs the transitive import closure of the cache entry points
(``execute_run``, ``run_replica_batch``) to compare against the code
fingerprint's file set.  This module builds that graph from the ASTs
alone — no imports are executed — resolving absolute
(``import repro.sim.machine``, ``from repro.workloads import x``) and
relative (``from .faults import FaultPlan``) edges to in-package
module files.  ``from pkg import name`` adds an edge to ``pkg`` *and*
to ``pkg/name`` when the latter is itself a module — the conservative
reading: either object may carry simulation-relevant code.

Imports of foreign packages (stdlib, numpy) are ignored: the fingerprint
contract only covers the package's own sources (the interpreter version
baked into the fingerprint stands in for everything else).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.framework import ModuleContext, ProjectContext


@dataclass
class ImportGraph:
    """Module-name edges plus the unresolvable in-package imports."""

    #: module name -> set of in-package module names it imports.
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: (module name, lineno, missing target) for ``package.*`` imports
    #: that resolve to no file — a deleted or moved module.
    unresolved: list[tuple[str, int, str]] = field(default_factory=list)

    def reachable(self, roots: set[str]) -> set[str]:
        """Transitive closure of ``roots`` over the import edges."""
        seen = set()
        frontier = [name for name in roots if name in self.edges]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            frontier.extend(self.edges.get(name, ()))
        return seen


def _package_parts(ctx: ModuleContext) -> list[str]:
    """The package the module lives in (its own name for packages)."""
    parts = ctx.module.split(".")
    if not ctx.relpath.endswith("__init__.py"):
        parts = parts[:-1]
    return parts


def _resolve_relative(ctx: ModuleContext, node: ast.ImportFrom,
                      ) -> Optional[str]:
    """The absolute module a relative ``from ... import`` addresses, or
    None when the dots climb out of the package."""
    base = _package_parts(ctx)
    if node.level > len(base):
        return None
    if node.level:
        base = base[:len(base) - (node.level - 1)]
    return ".".join(base + (node.module.split(".") if node.module else []))


def _module_edges(ctx: ModuleContext, package: str,
                  known: set[str]) -> Iterator[tuple[str, int, bool]]:
    """(target module name, lineno, resolved) for every in-package
    import of ``ctx``; submodule names of ``from mod import name`` are
    emitted only when they resolve (a plain attribute import is not an
    edge miss)."""
    prefix = package + "."
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name == package or name.startswith(prefix):
                    yield name, node.lineno, name in known
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                target = _resolve_relative(ctx, node)
            else:
                target = node.module
            if target is None or not (target == package
                                      or target.startswith(prefix)):
                continue
            yield target, node.lineno, target in known
            for alias in node.names:
                sub = f"{target}.{alias.name}"
                if sub in known:
                    yield sub, node.lineno, True


def build_import_graph(project: ProjectContext) -> ImportGraph:
    """The in-package import graph of every parsed module."""
    package = project.project.package
    known = {ctx.module for ctx in project.modules}
    graph = ImportGraph()
    for ctx in project.modules:
        edges = graph.edges.setdefault(ctx.module, set())
        # A package's modules implicitly depend on their ancestors'
        # __init__ bodies (importing repro.sim.machine executes
        # repro/__init__.py and repro/sim/__init__.py first).
        parts = ctx.module.split(".")
        for depth in range(1, len(parts)):
            ancestor = ".".join(parts[:depth])
            if ancestor in known:
                edges.add(ancestor)
        for target, lineno, resolved in _module_edges(ctx, package, known):
            if resolved:
                edges.add(target)
            else:
                graph.unresolved.append((ctx.module, lineno, target))
    return graph


def defining_modules(project: ProjectContext,
                     function_names: tuple[str, ...],
                     ) -> dict[str, Optional[str]]:
    """function name -> module that defines it at top level (None when
    no module does)."""
    table: dict[str, Optional[str]] = {name: None
                                       for name in function_names}
    for ctx in project.modules:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name in table and table[node.name] is None:
                table[node.name] = ctx.module
    return table
