"""The ``reprolint`` rule framework: findings, registry, runner, output.

The repository rests on three contracts that, before this module, were
enforced only *dynamically* — after the damage was done:

* **Determinism** — the content-addressed result/workload caches
  (:mod:`repro.harness.engine`, :mod:`repro.harness.workload_store`)
  silently serve wrong entries if two runs of the same key can differ.
* **Fork-safety** — every scheduled callback must be a
  :class:`~repro.sim.events.DurableCall`; ``Machine.fork`` raises
  ``UnforkableMachineError`` at runtime otherwise and the replica batch
  quietly falls back to scalar runs.
* **Fingerprint coverage** — every module that can affect a
  ``SimStats`` must be hashed by ``code_fingerprint()``, or a code
  change keeps serving stale cache entries.

``reprolint`` proves these statically, before a poisoned cache or a
degraded batch exists.  The framework mirrors the scheme/workload
registries: every rule is a named entry (``RL001`` ...) in a
string-keyed registry; :func:`run_lint` parses the tree once and
dispatches each module (and the whole project) to the selected rules.

Suppressions are line-scoped comments::

    machine.schedule(when, cb)  # reprolint: disable=RL001
    x = hazard()                # reprolint: disable=RL002,RL004
    y = hazard()                # reprolint: disable=all

Output is human text (``path:line: CODE message``) or JSON
(``--json``); the run exits non-zero iff unsuppressed findings remain.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Finding",
    "LintError",
    "LintReport",
    "ModuleContext",
    "Project",
    "ProjectContext",
    "Rule",
    "default_project",
    "register_rule",
    "registered_rules",
    "resolve_rules",
    "run_lint",
    "unregister_rule",
]


class LintError(RuntimeError):
    """The lint run itself is invalid (unknown rule, unparseable file)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str          # project-relative posix path
    line: int
    code: str          # rule code, e.g. "RL001"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line,
                "code": self.code, "message": self.message}


@dataclass(frozen=True)
class Project:
    """What to lint: a package directory plus its cache contracts.

    ``root`` is the *package* directory (the one holding the top-level
    ``__init__.py``); module paths are read relative to it, so rule
    scoping (``sim/``, ``core/``, ...) works the same for the shipped
    tree and for fixture trees.  ``fingerprint_paths`` is the exact
    file set the result cache's code fingerprint hashes (``None``
    means every file under ``root``); ``entrypoints`` are the function
    names whose import closure that set must cover.
    """

    root: Path
    package: str = "repro"
    fingerprint_paths: Optional[frozenset[Path]] = None
    entrypoints: tuple[str, ...] = ("execute_run", "run_replica_batch")


def default_project() -> Project:
    """The shipped ``repro`` tree, with the fingerprint file set taken
    from the engine itself — the linter audits the contract the result
    cache actually enforces, not a copy of it."""
    from repro.harness.engine import fingerprint_paths

    root = Path(__file__).resolve().parents[1]
    return Project(root=root, package="repro",
                   fingerprint_paths=frozenset(
                       path.resolve() for path in fingerprint_paths()))


#: ``# reprolint: disable=RL001`` / ``disable=RL001,RL002`` / ``disable=all``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Line number -> codes suppressed on that line (``all`` wildcard
    included verbatim)."""
    table: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match:
            codes = frozenset(token.strip()
                              for token in match.group(1).split(","))
            table[lineno] = codes
    return table


@dataclass
class ModuleContext:
    """One parsed source module, as the per-module rule hook sees it."""

    path: Path                 # absolute
    relpath: str               # posix path relative to the project root
    module: str                # dotted module name ("repro.sim.machine")
    tree: ast.Module
    source: str
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def in_packages(self, *prefixes: str) -> bool:
        """True when the module lives under one of the given top-level
        subpackage prefixes (``"sim"``, ``"core"``, ...)."""
        return any(self.relpath.startswith(prefix + "/")
                   or self.relpath == prefix + ".py"
                   for prefix in prefixes)


@dataclass
class ProjectContext:
    """The whole parsed project, as the project-wide rule hook sees it."""

    project: Project
    modules: list[ModuleContext]

    def module_by_name(self, name: str) -> Optional[ModuleContext]:
        for ctx in self.modules:
            if ctx.module == name:
                return ctx
        return None


class Rule:
    """One named contract check.

    Subclasses set ``code``/``name``/``description`` and override
    :meth:`check_module` (called once per parsed file) and/or
    :meth:`check_project` (called once with the whole tree — import
    graphs, cross-module type lookups).  Both return findings; the
    runner handles selection, suppression and ordering.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        return iter(())


#: code -> rule instance (mirrors the scheme/workload registries).
_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule, *, replace: bool = False) -> Rule:
    """Register ``rule`` under its code; out-of-tree checks plug in the
    same way the production rules do."""
    if not rule.code or not isinstance(rule.code, str):
        raise ValueError(f"rule code must be a non-empty string, "
                         f"got {rule.code!r}")
    if rule.code in _RULES and not replace:
        raise ValueError(f"rule {rule.code!r} is already registered; "
                         f"pass replace=True to override it")
    _RULES[rule.code] = rule
    return rule


def unregister_rule(code: str) -> None:
    """Remove a registered rule (test hygiene)."""
    if code not in _RULES:
        raise KeyError(f"rule {code!r} is not registered")
    del _RULES[code]


def registered_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(_RULES[code] for code in sorted(_RULES))


def resolve_rules(codes: Optional[Iterable[str]]) -> tuple[Rule, ...]:
    """The rules selected by ``codes`` (None = all), rejecting unknown
    codes with the known set in the message."""
    if codes is None:
        return registered_rules()
    selected = []
    for code in codes:
        try:
            selected.append(_RULES[code])
        except KeyError:
            raise LintError(
                f"unknown rule {code!r}; known: {sorted(_RULES)}"
                ) from None
    return tuple(selected)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[Finding]
    suppressed: int
    checked_files: int
    rules: tuple[str, ...]
    root: str

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(
            f"reprolint: {status} across {self.checked_files} file(s), "
            f"{self.suppressed} suppressed "
            f"[{','.join(self.rules)}]")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "version": 1,
            "root": self.root,
            "rules": list(self.rules),
            "checked_files": self.checked_files,
            "suppressed": self.suppressed,
            "ok": self.ok,
            "findings": [finding.to_json() for finding in self.findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2)


def _parse_modules(project: Project) -> list[ModuleContext]:
    modules = []
    for path in sorted(project.root.rglob("*.py")):
        relpath = path.relative_to(project.root).as_posix()
        parts = [project.package] + relpath[:-3].split("/")
        if parts[-1] == "__init__":
            parts.pop()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"{relpath}:{exc.lineno}: "
                            f"cannot parse: {exc.msg}") from None
        modules.append(ModuleContext(
            path=path, relpath=relpath, module=".".join(parts),
            tree=tree, source=source,
            suppressions=parse_suppressions(source)))
    return modules


def run_lint(project: Optional[Project] = None,
             rules: Optional[Sequence[str]] = None) -> LintReport:
    """Lint ``project`` (default: the shipped tree) with the selected
    ``rules`` (default: all registered), returning a :class:`LintReport`
    with suppressions already applied."""
    if project is None:
        project = default_project()
    selected = resolve_rules(rules)
    modules = _parse_modules(project)
    ctx = ProjectContext(project=project, modules=modules)
    raw: list[Finding] = []
    for rule in selected:
        for module in modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(ctx))
    suppressions = {module.relpath: module.suppressions
                    for module in modules}
    findings: list[Finding] = []
    suppressed = 0
    for finding in sorted(set(raw)):
        codes = suppressions.get(finding.path, {}).get(finding.line)
        if codes and (finding.code in codes or "all" in codes):
            suppressed += 1
        else:
            findings.append(finding)
    return LintReport(findings=findings, suppressed=suppressed,
                      checked_files=len(modules),
                      rules=tuple(rule.code for rule in selected),
                      root=str(project.root))
