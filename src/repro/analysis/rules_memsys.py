"""RL006 — fast-path invalidation discipline: no cache pokes outside
``coherence``/``mem``.

The memory-system fast path (``Machine._advance_main`` with
``REPRO_FASTPATH`` on) services provable private hits against the
caches' residency maps without entering the coherence engine.  Its
correctness rests on one discipline: **every event that can change a
line's hit status funnels through the engine** — eviction and
invalidation inside :class:`~repro.coherence.protocol.CoherenceEngine`,
interval advances through :meth:`CoherenceEngine.fastpath_epoch` (which
fires the scheme's ``on_fastpath_epoch`` hook).  A scheme that reaches
into ``engine.l2s[pid]`` and invalidates a line directly, or flips a
``CacheLine``/``DirEntry`` field in place, mutates residency behind the
filter's back; the stats would silently diverge between the fast and
slow paths.

This rule bans, everywhere outside the ``coherence`` and ``mem``
packages (the engine and the caches themselves):

* calling a residency-mutating cache method (``insert``,
  ``invalidate``, ``invalidate_all``, ``fill``) on a receiver that
  reaches through an ``l1s``/``l2s`` attribute
  (``machine.engine.l2s[pid].invalidate(addr)``);
* assigning or aug-assigning a line/directory state field (``state``,
  ``dirty``, ``delayed``, ``value``, ``lw_id``, ``owner``, ``sharers``,
  ``mode``) through an ``l1s``/``l2s``/``directory`` receiver
  (``engine.l2s[pid].peek(addr).delayed = False``).

Mutations through a bare local (``line.value = v`` after the engine
handed the line out) stay legal: the engine-side call that produced the
local is the audited entry point.  Schemes react to residency changes
in ``on_fastpath_epoch`` instead of poking cache internals.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import Finding, ModuleContext, Rule

#: Attributes naming the private cache arrays / directory on the engine.
_CACHE_ROOTS = frozenset({"l1s", "l2s", "directory"})

#: Cache methods that change which lines are resident.
_RESIDENCY_MUTATORS = frozenset({
    "insert", "invalidate", "invalidate_all", "fill",
})

#: Per-line / per-entry state fields the protocol owns.
_STATE_FIELDS = frozenset({
    "state", "dirty", "delayed", "value", "lw_id", "owner", "sharers",
    "mode",
})


def _cache_root(node: ast.expr) -> str:
    """The first ``l1s``/``l2s``/``directory`` attribute reached through
    ``node``'s receiver chain, else ``""``.  Bare names (a local
    ``line`` the engine handed out) never match."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _CACHE_ROOTS:
            return sub.attr
    return ""


class _CachePokeVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def _flag(self, lineno: int, what: str) -> None:
        self.findings.append(Finding(
            self.ctx.relpath, lineno, "RL006",
            f"{what}; cache-line and directory state is mutated only "
            f"inside coherence/mem — residency changes must funnel "
            f"through CoherenceEngine.fastpath_epoch (schemes react in "
            f"on_fastpath_epoch) or the fast-path filters go stale"))

    def _check_target(self, target: ast.expr, verb: str) -> None:
        if (isinstance(target, ast.Attribute)
                and target.attr in _STATE_FIELDS):
            root = _cache_root(target.value)
            if root:
                self._flag(target.lineno,
                           f"{verb} to .{target.attr} of a line reached "
                           f"through .{root}")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, "augmented assignment")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _RESIDENCY_MUTATORS):
            root = _cache_root(func.value)
            if root:
                self._flag(node.lineno,
                           f"residency-mutating call .{func.attr}() on a "
                           f"cache reached through .{root}")
        self.generic_visit(node)


class FastpathInvalidationRule(Rule):
    code = "RL006"
    name = "fastpath-invalidation"
    description = ("no direct cache-line/directory mutation outside "
                   "coherence/mem — residency changes go through the "
                   "engine so the fast-path filters stay coherent")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_packages("coherence", "mem"):
            return iter(())
        visitor = _CachePokeVisitor(ctx)
        visitor.visit(ctx.tree)
        return iter(visitor.findings)
