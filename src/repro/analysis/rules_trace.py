"""RL005 — trace immutability: ``CompiledTrace`` columns are frozen.

The zero-copy data plane hands the *same* column objects to many
readers: ``WorkloadStore`` serves one LRU-cached spec to every task of
a worker chunk, ``from_buffer`` columns are read-only memoryviews over
a shared mmap, and the vectorized executor's leader walks columns that
every forked replica also sees.  One in-place write —
``trace.ops[i] = x``, ``trace.args.frombytes(...)`` — would therefore
corrupt *other* runs' inputs (or die with ``TypeError: cannot modify
read-only memory`` only on the mmap path, i.e. only sometimes).

The contract: columns are built exclusively through ``TraceBuilder``
and are immutable afterwards.  This rule bans, everywhere outside
``trace.py`` (the builder's home, where ``from_bytes`` legitimately
fills fresh local arrays):

* subscript assignment / augmented assignment / deletion through an
  ``.ops`` / ``.args`` attribute (``<expr>.ops[i] = v``);
* calling a mutating sequence method on such an attribute
  (``<expr>.args.append(v)``, ``.frombytes``, ``.byteswap``, ...).

Plain attribute *rebinding* (``self.ops = trace.ops.tolist()`` in the
core loop, ``DurableCall.args = args``) stays legal: it replaces the
reference, never the shared buffer.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import Finding, ModuleContext, Rule

#: The frozen column attributes of the trace IR.
_COLUMNS = ("ops", "args")

#: In-place mutators of array/list/memoryview receivers.
_MUTATORS = frozenset({
    "append", "extend", "insert", "pop", "remove", "clear", "reverse",
    "sort", "frombytes", "fromlist", "fromunicode", "byteswap",
    "release",
})


def _column_attr(node: ast.expr) -> str:
    """``"ops"``/``"args"`` when ``node`` is an ``<expr>.ops``-style
    attribute access (any receiver expression), else ``""``.  Bare
    names (a local ``ops`` array under construction) never match."""
    if isinstance(node, ast.Attribute) and node.attr in _COLUMNS:
        return node.attr
    return ""


class _TraceMutationVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def _flag(self, lineno: int, what: str) -> None:
        self.findings.append(Finding(
            self.ctx.relpath, lineno, "RL005",
            f"{what}; CompiledTrace columns are immutable outside "
            f"TraceBuilder (shared via the store LRU, mmap views and "
            f"batch leaders — an in-place write corrupts other runs)"))

    def _check_target(self, target: ast.expr, verb: str) -> None:
        if isinstance(target, ast.Subscript):
            attr = _column_attr(target.value)
            if attr:
                self._flag(target.lineno,
                           f"{verb} of a .{attr} trace column element")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, "deletion")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = _column_attr(func.value)
            if attr:
                self._flag(node.lineno,
                           f"mutating call .{attr}.{func.attr}() on a "
                           f"trace column")
        self.generic_visit(node)


class TraceImmutabilityRule(Rule):
    code = "RL005"
    name = "trace-immutability"
    description = ("no in-place mutation of CompiledTrace .ops/.args "
                   "columns outside trace.py — specs are shared across "
                   "runs (store LRU, mmap views, batch leaders)")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.relpath == "trace.py":
            return iter(())
        visitor = _TraceMutationVisitor(ctx)
        visitor.visit(ctx.tree)
        return iter(visitor.findings)
