"""RL003 — fingerprint coverage: the cache must see every input.

A disk-cache entry's identity is ``code_fingerprint() | RunKey``; the
fingerprint hashes a fixed file set (``fingerprint_paths()`` in
:mod:`repro.harness.engine`).  Any module that can influence a
``SimStats`` but is *not* in that set makes the cache lie: edit it and
stale results keep being served.  Statically, "can influence" is the
transitive import closure of the execution entry points
(``execute_run`` for scalar runs, ``run_replica_batch`` for vectorized
campaign batches).  This rule fails when:

* an entry point cannot be found anywhere in the tree (the contract
  became unverifiable — someone renamed the executor);
* a module reachable from an entry point lies outside the fingerprint
  file set;
* a reachable module imports an in-package module that resolves to no
  file (deleted or moved — its former behaviour is still cached);
* ``register_workload`` is called outside ``repro/workloads/`` without
  ``fingerprint=`` — an out-of-tree generator's source is invisible to
  the code fingerprint, so the registration fingerprint is its *only*
  invalidation signal (without it the store/cache must be bypassed,
  which the registry does, but silently rebuilding per run is almost
  never what a registered production workload wants).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
)
from repro.analysis.imports import build_import_graph, defining_modules


class FingerprintCoverageRule(Rule):
    code = "RL003"
    name = "fingerprint-coverage"
    description = ("every module reachable from execute_run / "
                   "run_replica_batch must be inside the "
                   "code_fingerprint() file set; register_workload "
                   "outside repro/workloads needs fingerprint=")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_packages("workloads"):
            return iter(())
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) \
                else (func.id if isinstance(func, ast.Name) else "")
            if name != "register_workload":
                continue
            if not any(kw.arg == "fingerprint" for kw in node.keywords):
                findings.append(Finding(
                    ctx.relpath, node.lineno, "RL003",
                    "register_workload without fingerprint=: the "
                    "generator's source is outside the code "
                    "fingerprint, so a content fingerprint is its only "
                    "cache-invalidation signal"))
        return iter(findings)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        if not project.modules:
            return iter(())
        findings = []
        anchor = project.modules[0].relpath
        entry_modules = defining_modules(project,
                                         project.project.entrypoints)
        roots = set()
        for entrypoint, module in sorted(entry_modules.items()):
            if module is None:
                findings.append(Finding(
                    anchor, 1, "RL003",
                    f"entry point {entrypoint}() is defined nowhere in "
                    f"the tree; fingerprint coverage cannot be "
                    f"verified"))
            else:
                roots.add(module)
        graph = build_import_graph(project)
        reachable = graph.reachable(roots)
        allowed = project.project.fingerprint_paths
        for ctx in project.modules:
            if ctx.module not in reachable:
                continue
            if allowed is not None and ctx.path.resolve() not in allowed:
                findings.append(Finding(
                    ctx.relpath, 1, "RL003",
                    f"module {ctx.module} is reachable from "
                    f"{'/'.join(sorted(roots))} but outside the "
                    f"code_fingerprint() file set — edits to it would "
                    f"keep serving stale cache entries"))
        for module, lineno, target in graph.unresolved:
            ctx = project.module_by_name(module)
            if ctx is None or module not in reachable:
                continue
            findings.append(Finding(
                ctx.relpath, lineno, "RL003",
                f"import of {target} resolves to no module file "
                f"(deleted or moved?); its former behaviour may still "
                f"be served from the result cache"))
        return iter(findings)
