"""RL002 — determinism: simulation code must be seed-deterministic.

The result cache and the workload store are content-addressed: a
``RunKey`` (plus the code fingerprint) *is* the result.  Any entropy
source inside ``repro.sim``, ``repro.core`` or ``repro.workloads``
breaks that identity silently — the cache keeps serving whichever
variant ran first.  Banned:

* wall clocks: ``time.time``/``monotonic``/``perf_counter`` (+ ``_ns``
  variants), ``datetime.now``/``utcnow``/``today``;
* OS/crypto entropy: ``os.urandom``, ``uuid.uuid1``/``uuid4``, any
  ``secrets.*``;
* the module-level ``random.*`` API (shared global RNG state — runs
  perturb each other); seeded ``random.Random(seed)`` instances are the
  sanctioned source and are not flagged;
* ``id()`` feeding an ordering (``sorted``/``min``/``max``/``.sort``):
  CPython ids are address-derived and vary across processes;
* iteration over unordered collections — ``set`` literals/calls/
  comprehensions, ``frozenset(...)``, ``.keys()`` views — in ``for``
  loops, comprehensions or ``list``/``tuple`` materialization; wrap in
  ``sorted(...)`` before the order can feed stats, cache identities or
  trace emission.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.framework import Finding, ModuleContext, Rule

#: module name -> banned attributes (None = every attribute).
_BANNED_ATTRS: dict[str, Optional[frozenset[str]]] = {
    "time": frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns",
                       "process_time", "process_time_ns"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "secrets": None,
}

#: ``random.<fn>`` hits the process-global RNG for every fn but these.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})

_ORDERING_CALLS = frozenset({"sorted", "min", "max", "sort"})


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"] (empty when not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_unordered(node: ast.expr) -> Optional[str]:
    """A human name for ``node`` when it produces an unordered iterable."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "keys" and not node.args:
            return ".keys()"
    return None


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(self.ctx.relpath, node.lineno,
                                     "RL002", message))

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) >= 2:
            # Accept both ``time.time()`` and ``datetime.datetime.now()``
            # spellings: match on the last module-ish segment.
            module, attr = chain[-2], chain[-1]
            banned = _BANNED_ATTRS.get(module)
            if module in _BANNED_ATTRS \
                    and (banned is None or attr in banned):
                self._flag(node, f"{module}.{attr}() is runtime entropy; "
                                 f"simulation results must be "
                                 f"bit-deterministic (cache identity)")
            elif module == "random" and attr not in _RANDOM_OK:
                self._flag(node, f"module-level random.{attr}() uses the "
                                 f"shared global RNG; draw from a seeded "
                                 f"random.Random instance instead")
        name = node.func.attr if isinstance(node.func, ast.Attribute) \
            else (node.func.id if isinstance(node.func, ast.Name) else "")
        if name in _ORDERING_CALLS:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Name) \
                        and sub.func.id == "id":
                    self._flag(sub, "id() feeds an ordering; CPython "
                                    "ids are address-derived and vary "
                                    "across processes/runs")
        if name in ("list", "tuple") and isinstance(node.func, ast.Name) \
                and len(node.args) == 1:
            self._check_iterable(node.args[0])
        self.generic_visit(node)

    def _check_iterable(self, node: ast.expr) -> None:
        what = _is_unordered(node)
        if what is not None:
            self._flag(node, f"iteration over {what} has no stable "
                             f"order; wrap in sorted(...) before it "
                             f"feeds stats, cache identities or trace "
                             f"emission")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for generator in node.generators:
            self._check_iterable(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set is still unordered-in, unordered-out
        # — only the *consumption* order matters, so the generators are
        # checked like any other comprehension.
        self._visit_comp(node)


class DeterminismRule(Rule):
    code = "RL002"
    name = "determinism"
    description = ("no wall clocks, OS entropy, global random state, "
                   "id()-derived ordering or unordered-set iteration in "
                   "repro.sim / repro.core / repro.workloads")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_packages("sim", "core", "workloads"):
            return iter(())
        visitor = _DeterminismVisitor(ctx)
        visitor.visit(ctx.tree)
        return iter(visitor.findings)
