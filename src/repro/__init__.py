"""Rebound: scalable checkpointing for coherent shared memory.

A from-scratch reproduction of the ISCA 2011 Rebound system: coordinated
local checkpointing on directory-based cache coherence, together with
every substrate it needs (MESI directory protocol, private-cache
manycore simulator, ReVive-style logging, interconnect and DRAM-channel
models, synthetic workloads and a power model).

Quickstart::

    from repro import MachineConfig, Scheme, run_app

    stats = run_app("ocean", n_cores=16, scheme=Scheme.REBOUND)
    print(stats.summary())
"""

from __future__ import annotations

from typing import Optional

from repro.params import CacheConfig, MachineConfig, Scheme
from repro.sim import Machine, SimStats
from repro.workloads import get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "CacheConfig",
    "Scheme",
    "Machine",
    "SimStats",
    "run_app",
    "run_workload",
    "get_workload",
    "list_workloads",
    "__version__",
]


def run_workload(config: MachineConfig, workload,
                 faults: Optional[list[tuple[float, int]]] = None,
                 max_cycles: Optional[float] = None) -> SimStats:
    """Simulate ``workload`` on a machine built from ``config``."""
    machine = Machine(config, workload, faults=faults)
    return machine.run(max_cycles=max_cycles)


def run_app(name: str, n_cores: int = 16,
            scheme: Scheme = Scheme.REBOUND, scale: int = 40,
            intervals: float = 5.0, seed: int = 1,
            faults: Optional[list[tuple[float, int]]] = None,
            **overrides) -> SimStats:
    """Simulate one of the paper's applications end to end.

    ``scale`` shrinks the paper configuration for tractable simulation
    (see :meth:`MachineConfig.scaled`); other keyword overrides are
    forwarded to the configuration.
    """
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                  scale=scale, **overrides)
    workload = get_workload(name, n_cores, config, intervals=intervals,
                            seed=seed)
    return run_workload(config, workload, faults=faults)
