"""Workload lookup and registration: a string-keyed, pluggable registry.

This mirrors the scheme registry of :mod:`repro.core.factory`: every
workload — the 18 modeled applications of Figure 4.3(b) and any
out-of-tree or experimental generator — is a named entry mapping the
workload's identity (``RunKey.app``) to a builder callable.

Built-ins register themselves at import time from the profile table.
Out-of-tree generators plug in with::

    from repro.workloads import register_workload

    def build_mine(n_threads, config, intervals, seed):
        ...  # -> WorkloadSpec
    tag = register_workload("my_app", build_mine)
    stats = execute_run(RunKey(tag, 8, Scheme.REBOUND, 3.0, 1, 40))

``register_workload`` returns a picklable :class:`WorkloadTag`; put the
tag in a ``RunKey`` wherever a built-in app name would go.  CLI workload
tokens resolve through :func:`resolve_workload`, so registered names
work in ``--workloads``/``--apps`` arguments too.

A registration may carry a ``fingerprint`` — a version string that
changes whenever the generator's *code or data* would produce different
output for the same inputs.  Built-ins use the profile repr; it is what
makes the harness's content-addressed workload store
(:mod:`repro.harness.workload_store`) able to reuse a generator's
output across runs.  The store keys registered generators by the full
resolved ``MachineConfig`` (they receive the whole config, so any field
may shape their output; built-ins are keyed by
``checkpoint_interval`` alone and shared across every other axis).
Registrations without a fingerprint simply bypass the store (the
workload is rebuilt per run, exactly as before).

Note on process pools: the engine's workers import ``repro`` afresh, so
a workload registered dynamically in the parent process is unknown to
them.  Register out-of-tree workloads at import time (e.g. from a
module both sides import) or run with ``jobs=1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.params import MachineConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.profiles import ALL_APPS, AppProfile, get_profile
from repro.workloads.synthetic import build_workload

#: ``(n_threads, config, intervals, seed) -> WorkloadSpec``.
WorkloadBuilder = Callable[[int, MachineConfig, float, int], WorkloadSpec]


@dataclass(frozen=True)
class WorkloadTag:
    """Workload identity for out-of-tree generators.

    Built-in workloads are addressed by their plain profile name (a
    ``str``, which keeps every pre-registry ``RunKey`` cache identity
    byte-identical); registered generators get a ``WorkloadTag`` — a
    frozen, picklable value exposing ``value`` like
    :class:`repro.params.SchemeTag` does for schemes — usable as
    ``RunKey.app`` and in CLI ``--workloads`` arguments.
    """

    value: str


WorkloadLike = Union[str, WorkloadTag]

#: name -> builder callable.
_BUILDERS: dict[str, WorkloadBuilder] = {}

#: name -> the identity carrying that name (str for built-ins).
_TAGS: dict[str, WorkloadLike] = {}

#: name -> content fingerprint (None = workload store bypass).
_FINGERPRINTS: dict[str, Optional[str]] = {}


def workload_name(app: WorkloadLike) -> str:
    """The registry name behind a ``RunKey.app`` value (str or tag)."""
    return getattr(app, "value", app)


def register_workload(name: str, builder: WorkloadBuilder, *,
                      fingerprint: Optional[str] = None,
                      replace: bool = False) -> WorkloadTag:
    """Register an out-of-tree workload generator under ``name``.

    Returns the :class:`WorkloadTag` to use as ``RunKey.app``.
    Duplicate names are rejected unless ``replace=True`` (built-in
    profile names can never be replaced).  ``fingerprint`` opts the
    generator into the content-addressed workload store (see module
    docstring).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"workload name must be a non-empty string, "
                         f"got {name!r}")
    if fingerprint is not None and (not isinstance(fingerprint, str)
                                    or not fingerprint.strip()):
        # An empty fingerprint would be taken at face value by the
        # workload store and the result cache — a "signal" that never
        # changes, i.e. entries that are never invalidated.
        raise ValueError(f"workload {name!r}: fingerprint must be a "
                         f"non-empty string (or None to bypass the "
                         f"workload store), got {fingerprint!r}")
    if name in _BUILDERS and isinstance(_TAGS[name], str):
        raise ValueError(
            f"workload {name!r} is a built-in application profile and "
            f"cannot be replaced")
    if name in _BUILDERS and not replace:
        raise ValueError(
            f"workload {name!r} is already registered; pass replace=True "
            f"to override it")
    tag = WorkloadTag(name)
    _BUILDERS[name] = builder
    _TAGS[name] = tag
    _FINGERPRINTS[name] = fingerprint
    return tag


def unregister_workload(name: str) -> None:
    """Remove a previously registered out-of-tree workload (test
    hygiene)."""
    if name not in _BUILDERS:
        raise KeyError(f"workload {name!r} is not registered")
    if isinstance(_TAGS[name], str):
        raise ValueError(f"cannot unregister built-in workload {name!r}")
    del _BUILDERS[name]
    del _TAGS[name]
    del _FINGERPRINTS[name]


def registered_workloads() -> tuple[str, ...]:
    """Every registered workload name, sorted (built-ins included)."""
    return tuple(sorted(_BUILDERS))


def resolve_workload(token: str) -> WorkloadLike:
    """The identity named ``token`` — the built-in name itself, or the
    :class:`WorkloadTag` of a registered generator (how CLI
    ``--workloads`` arguments address the registry)."""
    try:
        return _TAGS[token]
    except KeyError:
        raise ValueError(
            f"unknown workload {token!r}; known: "
            f"{sorted(_BUILDERS)}") from None


def workload_fingerprint(app: WorkloadLike) -> Optional[str]:
    """Content fingerprint for the workload store (None = bypass)."""
    return _FINGERPRINTS.get(workload_name(app))


def is_builtin_workload(app: WorkloadLike) -> bool:
    """True for the profile-backed built-ins.

    The workload store keys built-ins by ``config.checkpoint_interval``
    alone (their builders provably consume nothing else from the
    config); registered generators receive the *full* config, so the
    store keys them by the whole resolved config instead — conservative
    sharing, never a wrong workload.
    """
    return isinstance(_TAGS.get(workload_name(app)), str)


def list_workloads() -> list[str]:
    """Names of all modeled applications plus registered extras."""
    extras = sorted(set(_BUILDERS) - set(ALL_APPS))
    return list(ALL_APPS) + extras


def get_workload(app: WorkloadLike, n_threads: int, config: MachineConfig,
                 intervals: float = 5.0, seed: int = 1) -> WorkloadSpec:
    """Build the named workload for ``n_threads`` threads.

    ``app`` is a built-in profile name or a :class:`WorkloadTag`;
    ``intervals`` sets the run length in checkpoint intervals and the
    footprints scale with ``config.checkpoint_interval`` (DESIGN.md §3).
    """
    name = workload_name(app)
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: "
            f"{sorted(_BUILDERS)}") from None
    return builder(n_threads, config, intervals, seed)


def _builtin_builder(profile: AppProfile) -> WorkloadBuilder:
    def build(n_threads: int, config: MachineConfig, intervals: float,
              seed: int) -> WorkloadSpec:
        return build_workload(profile, n_threads,
                              config.checkpoint_interval,
                              intervals=intervals, seed=seed)
    return build


def _register_builtins() -> None:
    """The 18 application profiles register themselves; the profile repr
    is the content fingerprint (any profile change re-addresses the
    stored workload)."""
    for name in ALL_APPS:
        profile = get_profile(name)
        _BUILDERS[name] = _builtin_builder(profile)
        _TAGS[name] = name
        _FINGERPRINTS[name] = repr(profile)


_register_builtins()
