"""Workload lookup by name, mirroring Figure 4.3(b)."""

from __future__ import annotations

from repro.params import MachineConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.profiles import ALL_APPS, get_profile
from repro.workloads.synthetic import build_workload


def list_workloads() -> list[str]:
    """Names of all 18 modeled applications."""
    return list(ALL_APPS)


def get_workload(name: str, n_threads: int, config: MachineConfig,
                 intervals: float = 5.0, seed: int = 1) -> WorkloadSpec:
    """Build the named application's workload for ``n_threads`` threads.

    ``intervals`` sets the run length in checkpoint intervals; the
    footprints scale with ``config.checkpoint_interval`` (DESIGN.md §3).
    """
    profile = get_profile(name)
    return build_workload(profile, n_threads, config.checkpoint_interval,
                          intervals=intervals, seed=seed)
