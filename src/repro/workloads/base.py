"""Workload description consumed by the machine.

A :class:`WorkloadSpec` carries one trace per thread (compiled
:class:`repro.trace.CompiledTrace` IR from the generators, or plain
tuple lists from hand-written tests — the machine compiles the latter
on construction) plus the synchronization plan, and serializes to a
compact deterministic byte string (:meth:`WorkloadSpec.to_bytes`) for
the harness's content-addressed workload store.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field

from repro.trace import CompiledTrace, compile_trace

#: Bump when the serialized workload layout changes incompatibly.
#: 2: zero-copy container — the traces moved out of the pickled
#:    metadata into raw, offset-addressed sections after it, so
#:    ``from_buffer`` can build memoryview-backed traces straight over
#:    a mapped store file instead of copying them through pickle.
WORKLOAD_WIRE_FORMAT = 2

#: Fixed pickle protocol so the byte image of a workload is identical
#: across interpreter lines (the store's determinism guarantee).
_WIRE_PICKLE_PROTOCOL = 4

#: Container header: wire format, reserved, metadata pickle length.
#: The raw trace sections follow the metadata back to back; their
#: lengths ride inside the metadata.
_WIRE_HEADER = struct.Struct("<HHQ")


@dataclass(frozen=True)
class LockSpec:
    """One application lock and the cache line backing it."""

    lock_id: int
    line: int


@dataclass(frozen=True)
class BarrierSpec:
    """One barrier: its participants and its count/flag cache lines."""

    barrier_id: int
    participants: list[int]
    count_line: int
    flag_line: int


@dataclass
class WorkloadSpec:
    """A fully generated workload: one trace per thread plus sync plan."""

    name: str
    traces: list
    locks: list[LockSpec] = field(default_factory=list)
    barriers: list[BarrierSpec] = field(default_factory=list)

    @property
    def n_threads(self) -> int:
        return len(self.traces)

    def total_instructions(self) -> int:
        from repro.trace import trace_instruction_count
        return sum(trace_instruction_count(t) for t in self.traces)

    # ------------------------------------------------------------------
    # wire format (workload store)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Deterministic serialized form: a fixed header, a pickled
        metadata block (name, per-trace section lengths, sync plan as
        plain ints), then each trace's flat compiled-IR bytes *raw* —
        addressable by offset, so :meth:`from_buffer` can view them in
        place.  The same workload content always produces the same byte
        string."""
        blobs = [compile_trace(t).to_bytes() for t in self.traces]
        meta = pickle.dumps((
            self.name,
            [len(blob) for blob in blobs],
            [(lock.lock_id, lock.line) for lock in self.locks],
            [(b.barrier_id, tuple(b.participants), b.count_line,
              b.flag_line) for b in self.barriers],
        ), protocol=_WIRE_PICKLE_PROTOCOL)
        header = _WIRE_HEADER.pack(WORKLOAD_WIRE_FORMAT, 0, len(meta))
        return b"".join([header, meta] + blobs)

    @classmethod
    def _parse(cls, data, trace_of) -> "WorkloadSpec":
        """Shared container parsing; ``trace_of(offset, length)`` builds
        each trace from its raw section."""
        if len(data) < _WIRE_HEADER.size:
            raise ValueError("truncated serialized workload")
        version, _, meta_len = _WIRE_HEADER.unpack_from(data)
        if version != WORKLOAD_WIRE_FORMAT:
            raise ValueError(
                f"serialized workload wire format {version} != "
                f"{WORKLOAD_WIRE_FORMAT}")
        meta_end = _WIRE_HEADER.size + meta_len
        if len(data) < meta_end:
            raise ValueError("truncated serialized workload metadata")
        name, lengths, locks, barriers = pickle.loads(
            bytes(data[_WIRE_HEADER.size:meta_end]))
        if len(data) != meta_end + sum(lengths):
            raise ValueError(
                f"serialized workload is {len(data)} bytes, expected "
                f"{meta_end + sum(lengths)}")
        traces = []
        offset = meta_end
        for length in lengths:
            traces.append(trace_of(offset, length))
            offset += length
        return cls(
            name=name,
            traces=traces,
            locks=[LockSpec(lock_id, line) for lock_id, line in locks],
            barriers=[BarrierSpec(barrier_id, list(participants),
                                  count_line, flag_line)
                      for barrier_id, participants, count_line, flag_line
                      in barriers],
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "WorkloadSpec":
        """Inverse of :meth:`to_bytes` (raises ValueError on mismatch);
        the traces are independent array-backed copies."""
        return cls._parse(
            data,
            lambda offset, length:
                CompiledTrace.from_bytes(bytes(data[offset:offset + length])))

    @classmethod
    def from_buffer(cls, data) -> "WorkloadSpec":
        """Zero-copy variant of :meth:`from_bytes`: the traces are
        read-only :meth:`CompiledTrace.from_buffer` views aliasing
        ``data`` (an ``mmap``, ``bytes`` or ``memoryview``), which stays
        alive as long as any trace does.  The workload store's mmap load
        path goes through here."""
        return cls._parse(
            data,
            lambda offset, _length: CompiledTrace.from_buffer(data, offset))
