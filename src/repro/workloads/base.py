"""Workload description consumed by the machine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LockSpec:
    """One application lock and the cache line backing it."""

    lock_id: int
    line: int


@dataclass(frozen=True)
class BarrierSpec:
    """One barrier: its participants and its count/flag cache lines."""

    barrier_id: int
    participants: list[int]
    count_line: int
    flag_line: int


@dataclass
class WorkloadSpec:
    """A fully generated workload: one trace per thread plus sync plan."""

    name: str
    traces: list[list[tuple]]
    locks: list[LockSpec] = field(default_factory=list)
    barriers: list[BarrierSpec] = field(default_factory=list)

    @property
    def n_threads(self) -> int:
        return len(self.traces)

    def total_instructions(self) -> int:
        from repro.trace import trace_instruction_count
        return sum(trace_instruction_count(t) for t in self.traces)
