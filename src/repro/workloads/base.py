"""Workload description consumed by the machine.

A :class:`WorkloadSpec` carries one trace per thread (compiled
:class:`repro.trace.CompiledTrace` IR from the generators, or plain
tuple lists from hand-written tests — the machine compiles the latter
on construction) plus the synchronization plan, and serializes to a
compact deterministic byte string (:meth:`WorkloadSpec.to_bytes`) for
the harness's content-addressed workload store.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.trace import CompiledTrace, compile_trace

#: Bump when the serialized workload layout changes incompatibly.
WORKLOAD_WIRE_FORMAT = 1

#: Fixed pickle protocol so the byte image of a workload is identical
#: across interpreter lines (the store's determinism guarantee).
_WIRE_PICKLE_PROTOCOL = 4


@dataclass(frozen=True)
class LockSpec:
    """One application lock and the cache line backing it."""

    lock_id: int
    line: int


@dataclass(frozen=True)
class BarrierSpec:
    """One barrier: its participants and its count/flag cache lines."""

    barrier_id: int
    participants: list[int]
    count_line: int
    flag_line: int


@dataclass
class WorkloadSpec:
    """A fully generated workload: one trace per thread plus sync plan."""

    name: str
    traces: list
    locks: list[LockSpec] = field(default_factory=list)
    barriers: list[BarrierSpec] = field(default_factory=list)

    @property
    def n_threads(self) -> int:
        return len(self.traces)

    def total_instructions(self) -> int:
        from repro.trace import trace_instruction_count
        return sum(trace_instruction_count(t) for t in self.traces)

    # ------------------------------------------------------------------
    # wire format (workload store)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Deterministic serialized form: the traces as flat compiled-IR
        bytes, the sync plan as plain ints — the same workload content
        always produces the same byte string."""
        payload = (
            WORKLOAD_WIRE_FORMAT,
            self.name,
            [compile_trace(t).to_bytes() for t in self.traces],
            [(lock.lock_id, lock.line) for lock in self.locks],
            [(b.barrier_id, tuple(b.participants), b.count_line,
              b.flag_line) for b in self.barriers],
        )
        return pickle.dumps(payload, protocol=_WIRE_PICKLE_PROTOCOL)

    @classmethod
    def from_bytes(cls, data: bytes) -> "WorkloadSpec":
        """Inverse of :meth:`to_bytes` (raises ValueError on mismatch)."""
        payload = pickle.loads(data)
        if not isinstance(payload, tuple) or len(payload) != 5 \
                or payload[0] != WORKLOAD_WIRE_FORMAT:
            raise ValueError("unrecognized serialized workload")
        _, name, traces, locks, barriers = payload
        return cls(
            name=name,
            traces=[CompiledTrace.from_bytes(t) for t in traces],
            locks=[LockSpec(lock_id, line) for lock_id, line in locks],
            barriers=[BarrierSpec(barrier_id, list(participants),
                                  count_line, flag_line)
                      for barrier_id, participants, count_line, flag_line
                      in barriers],
        )
