"""Synthetic trace generation from an :class:`AppProfile`.

Each thread's trace interleaves run-length-encoded compute with explicit
memory accesses, lock sections and barriers (see ``repro.trace``).  The
generator realizes the profile's communication structure:

* Threads are partitioned into fixed *clusters* of size
  ``round(cluster_frac * n_threads)``; a thread's shared reads target a
  random cluster peer's owned shared region, so producer->consumer
  dependences stay inside the cluster — unless barriers or global locks
  chain the clusters together, exactly the dynamics behind the ICHK
  sizes of Figures 6.1/6.2.
* Lock sections read-modify-write a line owned by the lock (migratory
  data), creating the lock-holder dependence chains of Section 6.1.
* Barriers are emitted at identical logical positions in every thread,
  so every thread crosses every barrier generation exactly once.

Generation is deterministic in ``(profile, n_threads, seed)``, and the
threads' traces are emitted directly into the columnar IR of
:class:`repro.trace.CompiledTrace` through a
:class:`repro.trace.TraceBuilder` — no intermediate tuple lists — which
is also what the harness's content-addressed workload store serializes.
"""

from __future__ import annotations

import random

from repro.trace import AddressSpace, CompiledTrace, TraceBuilder
from repro.workloads.base import BarrierSpec, LockSpec, WorkloadSpec
from repro.workloads.profiles import AppProfile, REFERENCE_INTERVAL


def _scale(value: int, interval: int) -> int:
    """Rescale a paper-interval-relative quantity to ``interval``."""
    return max(1, int(value * interval / REFERENCE_INTERVAL))


class SyntheticWorkload:
    """Builds a :class:`WorkloadSpec` from an application profile."""

    #: instructions consumed by a lock section beyond its memory ops.
    LOCK_SECTION_COMPUTE = 20

    def __init__(self, profile: AppProfile, n_threads: int,
                 checkpoint_interval: int, intervals: float = 5.0,
                 seed: int = 1):
        if n_threads < 1:
            raise ValueError("need at least one thread")
        self.profile = profile
        self.n_threads = n_threads
        self.interval = checkpoint_interval
        self.total_instructions = int(intervals * checkpoint_interval)
        self.seed = seed
        self.space = AddressSpace()
        # Footprints scale with the interval so the ratio of checkpoint
        # writeback volume to interval length is preserved (DESIGN.md §3).
        scale_ref = min(1.0, checkpoint_interval / REFERENCE_INTERVAL * 40)
        self.private_lines = max(8, int(profile.private_lines * scale_ref))
        self.shared_lines = max(4, int(profile.shared_lines * scale_ref))
        self.private_regions = [self.space.region(self.private_lines)
                                for _ in range(n_threads)]
        self.shared_regions = [self.space.region(self.shared_lines)
                               for _ in range(n_threads)]
        self.clusters = self._make_clusters()
        self.locks, self.lock_lines, self.lock_data = self._make_locks()
        self.barrier_positions = self._barrier_positions()

    # ------------------------------------------------------------------
    def _make_clusters(self) -> list[list[int]]:
        """Partition threads into communication clusters."""
        size = max(2, round(self.profile.cluster_frac * self.n_threads))
        size = min(size, self.n_threads)
        clusters = []
        for start in range(0, self.n_threads, size):
            clusters.append(list(range(start,
                                       min(start + size, self.n_threads))))
        # A trailing singleton cluster cannot communicate; merge it.
        if len(clusters) > 1 and len(clusters[-1]) == 1:
            clusters[-2].extend(clusters.pop())
        return clusters

    def cluster_of(self, tid: int) -> list[int]:
        for cluster in self.clusters:
            if tid in cluster:
                return cluster
        raise ValueError(f"thread {tid} not in any cluster")

    def _make_locks(self):
        """Lock pool: global scope shares one pool, cluster scope gets a
        pool per cluster.  Each lock protects one migratory data line."""
        profile = self.profile
        locks: list[LockSpec] = []
        lock_data: dict[int, int] = {}
        pools: dict[str, list[int]] = {}
        if profile.lock_scope == "none" or profile.lock_rate <= 0:
            return locks, pools, lock_data
        next_id = 0
        if profile.lock_scope == "global":
            pool = []
            for _ in range(max(2, self.n_threads // 4)):
                line = self.space.sync_line()
                locks.append(LockSpec(next_id, line))
                lock_data[next_id] = self.space.sync_line()
                pool.append(next_id)
                next_id += 1
            pools["global"] = pool
        else:  # cluster scope
            for ci, cluster in enumerate(self.clusters):
                pool = []
                for _ in range(max(2, len(cluster) // 2)):
                    line = self.space.sync_line()
                    locks.append(LockSpec(next_id, line))
                    lock_data[next_id] = self.space.sync_line()
                    pool.append(next_id)
                    next_id += 1
                pools[f"cluster{ci}"] = pool
        return locks, pools, lock_data

    def _lock_pool_for(self, tid: int) -> list[int]:
        if not self.lock_lines:
            return []
        if self.profile.lock_scope == "global":
            return self.lock_lines["global"]
        for ci, cluster in enumerate(self.clusters):
            if tid in cluster:
                return self.lock_lines.get(f"cluster{ci}", [])
        return []

    def _barrier_positions(self) -> list[int]:
        every = self.profile.barrier_every
        if every is None:
            return []
        # Profiles quote barrier spacing in paper-scale instructions;
        # rescale so the *barriers per checkpoint interval* — what drives
        # ICHK and the BarCK optimization — is preserved (DESIGN.md §3).
        scaled = max(200, int(every * self.interval / REFERENCE_INTERVAL))
        n = self.total_instructions // scaled
        return [scaled * (i + 1) for i in range(n)]

    # ------------------------------------------------------------------
    def build(self) -> WorkloadSpec:
        barriers = []
        if self.barrier_positions:
            barriers.append(BarrierSpec(
                barrier_id=0, participants=list(range(self.n_threads)),
                count_line=self.space.sync_line(),
                flag_line=self.space.sync_line()))
        traces = [self._thread_trace(tid) for tid in range(self.n_threads)]
        return WorkloadSpec(name=self.profile.name, traces=traces,
                            locks=self.locks, barriers=barriers)

    def _thread_trace(self, tid: int) -> CompiledTrace:
        profile = self.profile
        rng = random.Random((self.seed * 1_000_003) ^ (tid * 97 + 11))
        trace = TraceBuilder()
        instr = 0
        # Threads do not start in lockstep: thread creation, warm-up and
        # data distribution skew them apart, which staggers the local
        # checkpoints of different clusters (they re-align at barriers).
        jitter = rng.randint(0, max(1, self.interval // 3))
        trace.compute(jitter)
        instr += jitter
        barrier_idx = 0
        recent: list[int] = []
        cluster = self.cluster_of(tid)
        peers = [p for p in cluster if p != tid]
        lock_pool = self._lock_pool_for(tid)
        lock_gap = (int(1000 / profile.lock_rate)
                    if profile.lock_rate > 0 and lock_pool else None)
        next_lock = rng.randint(1, lock_gap) if lock_gap else None
        mem_every = profile.mem_every
        while instr < self.total_instructions:
            gap = rng.randint(max(1, mem_every // 2), mem_every * 3 // 2)
            trace.compute(gap)
            instr += gap
            while (barrier_idx < len(self.barrier_positions)
                   and instr >= self.barrier_positions[barrier_idx]):
                trace.barrier(0)
                barrier_idx += 1
            if next_lock is not None and instr >= next_lock:
                instr += self._emit_lock_section(trace, rng, lock_pool)
                next_lock = instr + rng.randint(1, 2 * lock_gap)
                continue
            instr += self._emit_access(trace, rng, tid, peers, recent)
        while barrier_idx < len(self.barrier_positions):
            trace.barrier(0)
            barrier_idx += 1
        return trace.build()

    def _emit_access(self, trace: TraceBuilder, rng: random.Random,
                     tid: int, peers: list[int],
                     recent: list[int]) -> int:
        profile = self.profile
        if peers and rng.random() < profile.shared_frac:
            if rng.random() < profile.write_frac:
                # Produce into the thread's own shared region.
                region = self.shared_regions[tid]
                trace.store(region[rng.randrange(len(region))])
            else:
                # Consume from a cluster peer's region (RAW dependence).
                peer = peers[rng.randrange(len(peers))]
                region = self.shared_regions[peer]
                trace.load(region[rng.randrange(len(region))])
            return 1
        # Private access with temporal locality.
        region = self.private_regions[tid]
        if recent and rng.random() < profile.reuse:
            line = recent[rng.randrange(len(recent))]
        else:
            line = region[rng.randrange(len(region))]
            recent.append(line)
            if len(recent) > 16:
                recent.pop(0)
        if rng.random() < profile.write_frac:
            trace.store(line)
        else:
            trace.load(line)
        return 1

    def _emit_lock_section(self, trace: TraceBuilder, rng: random.Random,
                           pool: list[int]) -> int:
        """LOCK; RMW the protected migratory line; UNLOCK."""
        lock_id = pool[rng.randrange(len(pool))]
        data_line = self.lock_data[lock_id]
        trace.lock(lock_id)
        trace.load(data_line)
        trace.compute(self.LOCK_SECTION_COMPUTE)
        trace.store(data_line)
        trace.unlock(lock_id)
        # LOCK/UNLOCK expand to RMWs inside the simulator (2 instr each).
        return 2 + self.LOCK_SECTION_COMPUTE + 2 + 2


def build_workload(profile: AppProfile, n_threads: int,
                   checkpoint_interval: int, intervals: float = 5.0,
                   seed: int = 1) -> WorkloadSpec:
    """Generate a workload for ``profile`` (convenience wrapper)."""
    return SyntheticWorkload(profile, n_threads, checkpoint_interval,
                             intervals, seed).build()
