"""Output-I/O injection for the Figure 6.7 experiment.

Output I/O must be preceded by a checkpoint (Section 6.4): the paper
forces one processor out of 64 to initiate a checkpoint every half
checkpoint interval, as if it were writing output, and measures how far
the *other* processors' effective checkpoint intervals degrade under
Global versus Rebound.
"""

from __future__ import annotations

from repro.trace import COMPUTE, ONE_INSTR_OPS, TraceBuilder
from repro.workloads.base import WorkloadSpec


def inject_output_io(spec: WorkloadSpec, pid: int = 0,
                     every_instructions: int = 2_000_000,
                     io_bytes: int = 4096) -> WorkloadSpec:
    """Insert an OUTPUT record into thread ``pid`` every N instructions.

    Returns a new spec whose injected trace is a compiled
    :class:`CompiledTrace` (tuple traces are accepted too); the other
    threads are untouched.
    """
    if not 0 <= pid < spec.n_threads:
        raise ValueError(f"thread {pid} out of range")
    trace = spec.traces[pid]
    new_trace = TraceBuilder()
    instr = 0
    next_io = every_instructions
    for record in trace:
        op = record[0]
        if op == COMPUTE:
            remaining = record[1]
            # Split compute bursts so the OUTPUT lands on schedule.
            while instr + remaining >= next_io:
                chunk = next_io - instr
                if chunk > 0:
                    new_trace.compute(chunk)
                    instr += chunk
                    remaining -= chunk
                new_trace.output(io_bytes)
                instr += 1
                next_io += every_instructions
            if remaining > 0:
                new_trace.compute(remaining)
                instr += remaining
            continue
        new_trace.append(op, record[1] if len(record) > 1 else 0)
        if op in ONE_INSTR_OPS:
            instr += 1
            if instr >= next_io:
                new_trace.output(io_bytes)
                instr += 1
                next_io += every_instructions
    traces = list(spec.traces)
    traces[pid] = new_trace.build()
    return WorkloadSpec(name=f"{spec.name}+io", traces=traces,
                        locks=spec.locks, barriers=spec.barriers)
