"""Synthetic workload models of the paper's 18 applications."""

from repro.workloads.base import BarrierSpec, LockSpec, WorkloadSpec
from repro.workloads.io_inject import inject_output_io
from repro.workloads.profiles import (
    ALL_APPS,
    BARRIER_INTENSIVE,
    LOW_ICHK,
    PARSEC,
    PARSEC_APACHE,
    PROFILES,
    SPLASH2,
    AppProfile,
    get_profile,
)
from repro.workloads.registry import (
    WorkloadTag,
    get_workload,
    list_workloads,
    register_workload,
    registered_workloads,
    resolve_workload,
    unregister_workload,
    workload_fingerprint,
    workload_name,
)
from repro.workloads.synthetic import SyntheticWorkload, build_workload

__all__ = [
    "WorkloadSpec",
    "LockSpec",
    "BarrierSpec",
    "AppProfile",
    "PROFILES",
    "SPLASH2",
    "PARSEC",
    "PARSEC_APACHE",
    "ALL_APPS",
    "BARRIER_INTENSIVE",
    "LOW_ICHK",
    "get_profile",
    "get_workload",
    "list_workloads",
    "build_workload",
    "SyntheticWorkload",
    "inject_output_io",
    "WorkloadTag",
    "register_workload",
    "registered_workloads",
    "resolve_workload",
    "unregister_workload",
    "workload_fingerprint",
    "workload_name",
]
