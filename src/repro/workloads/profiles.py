"""Per-application communication/sharing profiles.

The paper evaluates 13 SPLASH-2 codes, 4 PARSEC codes and Apache
(Figure 4.3b).  We cannot run the binaries under Pin, so each app is
modeled by the behavioural parameters that drive every Chapter 6 result
(DESIGN.md §3):

* ``barrier_every`` — instructions between global barriers.  The paper
  states Ocean synchronizes every ~50k instructions; barrier-heavy codes
  are what make ICHK ≈ 100% and what the BarCK optimization targets.
* ``cluster_frac`` — the fraction of the machine a thread communicates
  with directly (communication locality).  Blackscholes and Apache have
  strong locality (ICHK ≈ 20%); FFT/Radix are all-to-all.
* ``lock_rate`` / ``lock_scope`` — dynamic-lock intensity.  Raytrace and
  Radiosity use global task queues, chaining everyone into one
  interaction set.
* footprint parameters — private/shared working-set lines and write
  fraction, calibrated so the per-interval log volume preserves the
  relative ordering of Table 6.1 (Ocean >> FFT > LU > ... > Water-Sp).

Values are expressed per *paper-scale* interval (4M instructions) and
rescaled by the generator to the configured interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Paper-scale checkpoint interval the profile numbers are quoted at.
REFERENCE_INTERVAL = 4_000_000


@dataclass(frozen=True)
class AppProfile:
    """Behavioural model of one application (see module docstring)."""

    name: str
    suite: str                       # "splash2" | "parsec" | "server"
    barrier_every: Optional[int]     # instructions; None = no barriers
    cluster_frac: float              # communication locality (0..1]
    lock_rate: float                 # lock sections per 1k instructions
    lock_scope: str                  # "none" | "cluster" | "global"
    private_lines: int               # per-thread private working set
    shared_lines: int                # per-thread owned shared region
    shared_frac: float               # fraction of accesses hitting shared
    write_frac: float                # fraction of accesses that store
    mem_every: int = 50              # instructions per explicit memory op
    reuse: float = 0.6               # temporal locality of private data

    @property
    def barrier_intensive(self) -> bool:
        """Apps Figure 6.4 includes in the barrier-optimization study."""
        return self.barrier_every is not None and self.barrier_every <= 100_000


def _p(name, suite, barrier_every, cluster_frac, lock_rate, lock_scope,
       private_lines, shared_lines, shared_frac, write_frac,
       mem_every=50, reuse=0.6) -> AppProfile:
    return AppProfile(name, suite, barrier_every, cluster_frac, lock_rate,
                      lock_scope, private_lines, shared_lines, shared_frac,
                      write_frac, mem_every, reuse)


#: The 18 applications of Figure 4.3(b).
PROFILES: dict[str, AppProfile] = {p.name: p for p in [
    # ---- SPLASH-2 (evaluated at up to 64 processors) --------------------
    # Barnes: octree build uses clustered locks; a barrier per time step
    # (steps span millions of instructions).
    _p("barnes", "splash2", 5_000_000, 0.15, 0.10, "cluster", 120, 24, 0.20, 0.25),
    # Cholesky: global task queue, no barriers inside factorization.
    _p("cholesky", "splash2", None, 0.25, 0.25, "global", 250, 32, 0.25, 0.30),
    # FFT: all-to-all transpose between barrier-separated phases.
    _p("fft", "splash2", 80_000, 1.00, 0.00, "none", 400, 64, 0.30, 0.35),
    # FMM: tree interactions, clustered; a barrier per step.
    _p("fmm", "splash2", 6_000_000, 0.15, 0.08, "cluster", 180, 32, 0.22, 0.28),
    # Radix: all-to-all key permutation each rank step.
    _p("radix", "splash2", 70_000, 1.00, 0.00, "none", 200, 48, 0.35, 0.45),
    # LU contiguous / non-contiguous: barrier per elimination step.
    _p("lu_c", "splash2", 60_000, 0.20, 0.00, "none", 350, 48, 0.25, 0.40),
    _p("lu_nc", "splash2", 60_000, 0.20, 0.00, "none", 360, 48, 0.28, 0.40),
    # Volrend: task stealing from a global queue, low rate.
    _p("volrend", "splash2", None, 0.20, 0.15, "global", 150, 24, 0.18, 0.22),
    # Water-Spatial: neighbour cells only, tiny write footprint; one
    # barrier per long time step.
    _p("water_sp", "splash2", 8_000_000, 0.10, 0.04, "cluster", 60, 12, 0.15, 0.15),
    # Water-Nsquared: all-pairs forces, per-molecule locks.
    _p("water_nsq", "splash2", 6_000_000, 0.30, 0.12, "cluster", 220, 32, 0.22, 0.28),
    # Radiosity: global distributed task queues, lock-dominated.
    _p("radiosity", "splash2", None, 1.00, 0.50, "global", 90, 24, 0.25, 0.22),
    # Ocean: a barrier every ~50k instructions (stated in Section 6.1)
    # and the largest per-interval log footprint of the suite.
    _p("ocean", "splash2", 50_000, 0.10, 0.00, "none", 500, 64, 0.30, 0.45),
    # Raytrace: very frequent dynamic locks on a global work queue.
    _p("raytrace", "splash2", None, 1.00, 0.60, "global", 90, 16, 0.22, 0.20),
    # ---- PARSEC (evaluated at up to 24 processors) -----------------------
    # Blackscholes: embarrassingly parallel; strong locality.
    _p("blackscholes", "parsec", None, 0.20, 0.00, "none", 120, 16, 0.08, 0.25),
    # Fluidanimate: neighbour-cell locks, barrier per frame.
    _p("fluidanimate", "parsec", 100_000, 0.20, 0.30, "cluster", 200, 32, 0.25, 0.30),
    # Ferret: pipeline stages connected by queues.
    _p("ferret", "parsec", None, 0.25, 0.20, "cluster", 180, 32, 0.22, 0.26),
    # Streamcluster: frequent barriers between phases.
    _p("streamcluster", "parsec", 60_000, 0.20, 0.00, "none", 70, 16, 0.20, 0.22),
    # ---- Server ----------------------------------------------------------
    # Apache (ab driven): per-connection locality, shared-cache locks.
    _p("apache", "server", None, 0.20, 0.08, "cluster", 200, 32, 0.15, 0.30),
]}

#: Subsets used by the harness.
SPLASH2 = [n for n, p in PROFILES.items() if p.suite == "splash2"]
PARSEC = [n for n, p in PROFILES.items() if p.suite == "parsec"]
PARSEC_APACHE = PARSEC + ["apache"]
ALL_APPS = list(PROFILES)

#: Barrier-intensive applications (Figure 6.4).
BARRIER_INTENSIVE = [n for n, p in PROFILES.items() if p.barrier_intensive]

#: Low-ICHK applications used in the output-I/O study (Figure 6.7).
LOW_ICHK = ["blackscholes", "apache", "water_sp", "barnes", "fmm"]


def get_profile(name: str) -> AppProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(PROFILES)}"
        ) from None
