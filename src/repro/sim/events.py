"""Fork-safe scheduled callbacks for the machine's event heap.

Closures capture ``self``/core references, so ``copy.deepcopy`` (which
treats functions as atomic) would leave a forked machine's heap firing
into the *original* machine.  A :class:`DurableCall` instead names its
target symbolically — ``"machine"`` or ``"scheme"`` plus a method name
and plain-data args — and resolves it against whichever machine fires
it.  This is what makes :meth:`repro.sim.machine.Machine.fork` sound:
every pending built-in callback re-binds to the clone automatically.

Lives in its own tiny module so both the machine and the scheme layer
can import it without a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


class DurableCall:
    """A deepcopy/pickle-safe scheduled callback (immutable)."""

    __slots__ = ("target", "method", "args")

    def __init__(self, target: str, method: str, args: tuple):
        if target not in ("machine", "scheme"):
            raise ValueError(f"unknown DurableCall target {target!r}")
        self.target = target
        self.method = method
        self.args = args

    def fire(self, machine: "Machine", when: float) -> None:
        obj = machine if self.target == "machine" else machine.scheme
        getattr(obj, self.method)(*self.args, when)

    def __deepcopy__(self, memo):
        return self  # immutable plain data: forks share it

    def __repr__(self) -> str:
        return f"DurableCall({self.target}.{self.method}{self.args})"
