"""Cycle-approximate manycore simulator (the SESC/Pin/DRAMsim substitute)."""

from repro.sim.cores import Core, CoreSnapshot
from repro.sim.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.machine import Machine, SimulationDeadlock
from repro.sim.stats import (
    CampaignSummary,
    CheckpointEvent,
    CoreStats,
    RollbackEvent,
    SimStats,
    summarize_campaign,
)
from repro.sim.sync import BarrierState, LockState, SyncManager

__all__ = [
    "Machine",
    "SimulationDeadlock",
    "Core",
    "CoreSnapshot",
    "SimStats",
    "CoreStats",
    "CheckpointEvent",
    "RollbackEvent",
    "CampaignSummary",
    "summarize_campaign",
    "FaultInjector",
    "FaultEvent",
    "FaultPlan",
    "SyncManager",
    "LockState",
    "BarrierState",
]
