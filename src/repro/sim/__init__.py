"""Cycle-approximate manycore simulator (the SESC/Pin/DRAMsim substitute)."""

from repro.sim.cores import Core, CoreSnapshot
from repro.sim.faults import FaultEvent, FaultInjector
from repro.sim.machine import Machine, SimulationDeadlock
from repro.sim.stats import CheckpointEvent, CoreStats, RollbackEvent, SimStats
from repro.sim.sync import BarrierState, LockState, SyncManager

__all__ = [
    "Machine",
    "SimulationDeadlock",
    "Core",
    "CoreSnapshot",
    "SimStats",
    "CoreStats",
    "CheckpointEvent",
    "RollbackEvent",
    "FaultInjector",
    "FaultEvent",
    "SyncManager",
    "LockState",
    "BarrierState",
]
