"""The manycore machine: event loop, trace execution, run assembly.

Execution model (DESIGN.md §4): a min-heap orders cores by local time;
one trace record executes atomically at its timestamp against the shared
structures (caches, directory, channels, log).  Checkpointing schemes
inject delays through ``core.not_before`` and scheduled callbacks; fault
injection reveals faults after the detection latency L and hands them to
the scheme's rollback protocol.

Hot path: traces are consumed as the columnar IR of
:class:`repro.trace.CompiledTrace` — the executor reads parallel
``ops``/``args`` columns (``op = ops[ip]; arg = args[ip]``) instead of
unpacking per-record tuples — and runs of consecutive
COMPUTE/LOAD/STORE records of one core are fused into a single heap
residency: the core keeps executing without a push/pop per record for
as long as no other heap event is due at or before its next record, up
to ``fuse_quantum`` records.  Because the
fusion condition is exactly the condition under which the serial heap
discipline would pop the same core again next, the interleaving (and
therefore every statistic) is bit-identical to the unbatched loop;
``fuse_quantum=1`` recovers the original one-record-per-pop behaviour
and the parity tests compare the two.
"""

from __future__ import annotations

import copy
import heapq
import os
from typing import Callable, Optional

from repro.coherence.protocol import CoherenceEngine
from repro.core.factory import build_scheme
from repro.core.scheme_base import BaseScheme
from repro.interconnect import Interconnect
from repro.mem import MODIFIED, MainMemory, MemoryChannels, ReviveLog
from repro.params import MachineConfig
from repro.sim.cores import Core
from repro.sim.events import DurableCall
from repro.sim.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.stats import SimStats
from repro.sim.sync import SyncManager
from repro.trace import (
    BARRIER,
    COMPUTE,
    END,
    LOAD,
    LOCK,
    OUTPUT,
    STORE,
    UNLOCK,
    compile_trace,
)
from repro.workloads.base import WorkloadSpec

_EXEC = 0
_CALL = 1      # legacy closure callback (out-of-tree schemes, tests)
_DCALL = 2     # durable descriptor callback (fork-safe)
_PAUSE = 3     # replica-batch pause sentinel (never observable)

#: Sentinel seq base: more negative than any fault seq, so a pause
#: fires before a same-time fault would in a true run (the fork then
#: replays the fault first inside the spilled machine).
_PAUSE_SEQ_BASE = -(10 ** 15)

#: Fork-injected fault events sort after sentinels but before every
#: normal heap entry at the same timestamp — exactly the order the
#: scalar run produces by scheduling faults first (seqs 1..F).
_FAULT_SEQ_BASE = -(10 ** 9)


class SimulationDeadlock(RuntimeError):
    """No runnable core remains while work is outstanding."""


class UnforkableMachineError(RuntimeError):
    """The machine holds state a fork cannot clone faithfully (e.g. a
    pending closure callback scheduled via :meth:`Machine.schedule` by
    an out-of-tree scheme); the caller must fall back to scalar runs."""


#: Records fused per heap residency before a forced re-push (fairness
#: backstop only; correctness never depends on it).
DEFAULT_FUSE_QUANTUM = 256


def _fastpath_default() -> bool:
    """Resolve the ``REPRO_FASTPATH`` gate (default on).

    Same strict on/off parsing as the harness ``REPRO_VECTOR`` idiom —
    a typo like ``REPRO_FASTPATH=fasle`` must not silently pick either
    behaviour — re-implemented here because ``repro.sim`` keeps zero
    harness imports.
    """
    text = os.environ.get("REPRO_FASTPATH")
    if text is None:
        return True
    lower = text.strip().lower()
    if lower in ("1", "on", "true", "yes"):
        return True
    if lower in ("0", "off", "false", "no"):
        return False
    raise ValueError(f"REPRO_FASTPATH must be one of 1/0/on/off/true/"
                     f"false/yes/no, got {text!r}")


class Machine:
    """A manycore running one workload under one checkpointing scheme."""

    def __init__(self, config: MachineConfig, workload: WorkloadSpec,
                 faults: Optional[list[tuple[float, int]] | FaultPlan] = None,
                 fuse_quantum: int = DEFAULT_FUSE_QUANTUM,
                 fastpath: Optional[bool] = None):
        if workload.n_threads > config.n_cores:
            raise ValueError(
                f"workload needs {workload.n_threads} threads but the "
                f"machine has {config.n_cores} cores")
        self.config = config
        self.workload = workload
        self.log = ReviveLog(n_banks=config.n_mem_channels,
                             bin_cycles=max(1, config.checkpoint_interval))
        self.memory = MainMemory(self.log)
        self.channels = MemoryChannels(config)
        self.network = Interconnect(config)
        self.scheme = build_scheme(self)
        self.engine = CoherenceEngine(config, self.channels, self.memory,
                                      self.network, self.scheme)
        # Traces are consumed as the columnar IR; tuple traces are
        # compiled once here (compiled traces pass through untouched).
        self.cores = [Core(pid, compile_trace(trace))
                      for pid, trace in enumerate(workload.traces)]
        self.sync = SyncManager()
        for lock in workload.locks:
            self.sync.add_lock(lock.lock_id, lock.line)
        for barrier in workload.barriers:
            self.sync.add_barrier(barrier.barrier_id, barrier.participants,
                                  barrier.count_line, barrier.flag_line)
        if isinstance(faults, FaultPlan):
            faults = list(faults.faults)
        self.faults = FaultInjector(faults or [], config.detection_latency)
        if fuse_quantum < 1:
            raise ValueError("fuse_quantum must be >= 1")
        self.fuse_quantum = fuse_quantum
        # Inline private-hit servicing (the memory-system fast path):
        # None defers to REPRO_FASTPATH (default on).  Bit-identical
        # either way — tests/test_fastpath.py pins the equivalence.
        self.fastpath = (_fastpath_default() if fastpath is None
                         else bool(fastpath))
        # The hot loop only calls post_op once a core has executed
        # post_op_gate() instructions since its checkpoint (the gate is
        # owned by the scheme, next to post_op itself).  Schemes that
        # don't override post_op never need the call at all.
        if type(self.scheme).post_op is BaseScheme.post_op:
            self._post_op_gate = float("inf")
        else:
            self._post_op_gate = self.scheme.post_op_gate()
        self._heap: list[tuple] = []
        self._seq = 0
        self._n_done = 0
        # Phased-run state: "init" (not started), "main" (application
        # loop), "drain" (post-run background work), "done".
        self._phase = "init"
        self._pause_seq = _PAUSE_SEQ_BASE
        self._limit = float("inf")
        self._max_cycles: Optional[float] = None
        self.now = 0.0
        self.stats = SimStats(config=config, scheme=config.scheme,
                              workload=workload.name)
        self.scheme.attach(self)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def push_core(self, core: Core) -> None:
        """(Re)schedule a core at max(core.time, core.not_before)."""
        if core.done or core.blocked is not None:
            return
        core.epoch += 1
        self._seq += 1
        when = max(core.time, core.not_before)
        heapq.heappush(self._heap,
                       (when, self._seq, _EXEC, core.pid, core.epoch))

    def schedule(self, when: float, callback: Callable[[float], None]) -> None:
        """Run ``callback(time)`` at simulated time ``when``.

        Closure-based (legacy) entry point: still supported for
        out-of-tree schemes and tests, but a machine with such a
        callback pending cannot be forked (see :meth:`fork`); the
        built-in schemes schedule through :meth:`schedule_call`.
        """
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, _CALL, callback, None))

    def schedule_call(self, when: float, call: DurableCall) -> None:
        """Run ``call.fire(self, time)`` at simulated time ``when``
        (the fork-safe scheduling primitive)."""
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, _DCALL, call, None))

    def _deliver_fault_at(self, index: int, when: float) -> None:
        """Durable fault delivery: event ``index`` of the injector."""
        self._deliver_fault(self.faults.events[index], when)

    def _deliver_fault(self, event: FaultEvent, when: float) -> None:
        """Heap callback firing exactly at ``event.detect_time``.

        After the application has finished (the post-run drain loop)
        there is no execution left to roll back into, so the fault is
        recorded as undelivered instead of silently vanishing — the
        stats then refuse to report a fake 0-cycle recovery.
        """
        if self._n_done >= len(self.cores):
            self.faults.mark_undelivered(event)
            return
        self.faults.mark_delivered(event)
        self.scheme.handle_fault(event.pid, event.detect_time)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[float] = None) -> SimStats:
        """Drive the event loop to completion and assemble the stats.

        Equivalent to ``start(); advance(); finalize()`` — the phased
        form exists so the replica-batch executor
        (:mod:`repro.sim.vector`) can pause a fault-free leader machine
        at each replica's first fault-detection time and fork it.
        """
        self.start(max_cycles)
        self.advance()
        return self.finalize()

    def start(self, max_cycles: Optional[float] = None) -> None:
        """Schedule the initial events; the machine becomes advanceable."""
        if self._phase != "init":
            raise RuntimeError(f"machine already started ({self._phase})")
        self._max_cycles = max_cycles
        self._limit = max_cycles if max_cycles is not None else float("inf")
        # Faults are first-class heap events at their exact detection
        # times: the fusion condition consults the heap, so a batch
        # always breaks before a fault is due and no core can commit
        # work past a detect_time before the scheme hears about it.
        # Scheduled before the initial core pushes so a fault beats any
        # trace record carrying the same timestamp.
        for index, event in enumerate(self.faults.events):
            self.schedule_call(event.detect_time,
                               DurableCall("machine", "_deliver_fault_at",
                                           (index,)))
        for core in self.cores:
            if not core.trace:
                core.done = True
                self._n_done += 1
            else:
                self.push_core(core)
        self._phase = "main"

    def _cycle_limit_exceeded(self) -> RuntimeError:
        return RuntimeError(
            f"simulation exceeded {self._max_cycles:,.0f} cycles")

    def advance(self, pause_at: Optional[float] = None) -> bool:
        """Drive the event loop; returns True if paused, False if done.

        With ``pause_at`` a sentinel heap entry is planted at that time:
        its presence gives the fused executor exactly the fusion horizon
        a pending fault at the same time would (the condition only reads
        ``heap[0][0]``), and popping it suspends the loop with the
        machine in precisely the state a true run with such a fault has
        at the moment the fault fires.  The sentinel never advances the
        clock and is stripped from forks, so it is unobservable.

        The trace executor is inlined into the pop loop (every local is
        bound once per call, not once per record): on each pop the
        owning core executes records until it blocks, stalls, or
        another heap event becomes due at or before its next record —
        the fused continuation re-runs the per-pop bookkeeping (clock,
        cycle guard) inline, so results are bit-identical to the
        one-record-per-pop discipline (``fuse_quantum=1``).  Fault
        delivery needs no bookkeeping here: faults are heap events, so
        they both break fusion and pop at their exact detection times.
        """
        if self._phase == "init":
            raise RuntimeError("machine not started")
        if pause_at is not None:
            self._pause_seq -= 1
            heapq.heappush(self._heap,
                           (pause_at, self._pause_seq, _PAUSE, None, None))
        if self._phase == "main" and not self._advance_main():
            return True
        if self._phase == "drain" and not self._advance_drain():
            return True
        return False

    def _advance_main(self) -> bool:
        """Application loop; returns False when paused mid-phase.

        With ``self.fastpath`` on, LOAD/STORE records whose outcome is a
        provable private hit are serviced inline against the caches'
        residency maps without entering the coherence engine: a load of
        any resident line (L1 or L2), a store to an L2 line already
        MODIFIED and not Delayed.  All carry a fixed latency and no
        observable side effect beyond counters (an L2-hit load also
        refills the L1 presence filter, exactly as the slow path would),
        which are batched per core in plain ints
        and flushed into the engine aggregates on every exit from this
        loop (pause, completion, exception) — before anything that could
        observe them (``fork``, ``finalize``), so stats stay
        bit-identical to the slow path.  LRU recency is maintained
        exactly (same ``move_to_end`` the slow path performs), and map
        membership is exactly cache membership, so the engine-entry
        sequence — and therefore every transition, message and energy
        event — is identical in both modes.
        """
        limit = self._limit
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        cores = self.cores
        scheme = self.scheme
        sync = self.sync
        engine = self.engine
        engine_load = engine.load
        engine_store = engine.store
        post_op_gate = self._post_op_gate
        io_cycles = self.config.io_cycles
        quantum = self.fuse_quantum
        n_cores = len(cores)
        fastpath = self.fastpath
        check = self.config.check_coherence
        modified = MODIFIED
        golden = engine.golden
        l1_maps = [l1._map for l1 in engine.l1s]
        l1_fills = [l1.fill for l1 in engine.l1s]
        l2_maps = [l2._map for l2 in engine.l2s]
        l2_sets = [l2._sets for l2 in engine.l2s]
        l2_n_sets = self.config.l2.n_sets
        l1_hit_cycles = self.config.l1.hit_cycles
        l2_hit_cycles = self.config.l2.hit_cycles     # int: load hits
        l2_store_cycles = float(l2_hit_cycles)        # float: store base
        fast_l1_loads = [0] * n_cores
        fast_l2_loads = [0] * n_cores
        fast_stores = [0] * n_cores
        try:
            while self._n_done < n_cores:
                if not heap:
                    self._diagnose_deadlock()
                when, _, kind, a, b = heappop(heap)
                if kind != _EXEC:
                    if kind == _PAUSE:
                        # Unobservable: the clock stays at the last real
                        # event (a true run only advances it on real pops).
                        return False
                    if when > self.now:
                        self.now = when
                    if when > limit:
                        raise self._cycle_limit_exceeded()
                    if kind == _DCALL:
                        a.fire(self, when)
                    else:
                        a(when)
                    continue
                if when > self.now:
                    self.now = when
                if when > limit:
                    raise self._cycle_limit_exceeded()
                core = cores[a]
                if core.done or core.blocked is not None or b != core.epoch:
                    continue  # stale entry
                if when < core.not_before:
                    self.push_core(core)
                    continue
                # -- trace execution: a batch of records for ``core`` ------
                t = core.time
                now = when if when >= t else t
                ops = core.ops
                args = core.args
                n_records = len(ops)
                pid = core.pid
                stats = core.stats
                l1_map = l1_maps[pid]
                l1_fill = l1_fills[pid]
                l2_map = l2_maps[pid]
                l2_set_list = l2_sets[pid]
                store_tag = core.store_tag
                budget = quantum
                while True:
                    # Checkpoint-initiation decisions run here, at the
                    # core's true position in the global time order — not
                    # at the end-time of a long record committed eagerly
                    # during an earlier pop.  Below the interval threshold
                    # post_op is a guaranteed no-op (BaseScheme contract),
                    # so skip it.
                    if core.instr_since_ckpt >= post_op_gate:
                        scheme.post_op(core, now)
                        if core.not_before > now:
                            self.push_core(core)  # back-off / ckpt stall
                            break
                    ip = core.ip
                    if ip < n_records:
                        op = ops[ip]
                        arg = args[ip]
                    else:
                        op = END
                    if op == COMPUTE:
                        core.time = now + arg
                        core.instr_count += arg
                        core.instr_since_ckpt += arg
                        stats.busy += arg
                        core.ip = ip + 1
                    elif op == LOAD:
                        if not fastpath:
                            latency = engine_load(pid, arg, now)
                        elif (cset := l1_map.get(arg)) is not None:
                            # Provable L1 hit: fixed latency, LRU touch,
                            # batched counters; the engine is not entered.
                            cset.move_to_end(arg)
                            fast_l1_loads[pid] += 1
                            latency = l1_hit_cycles
                            if check:
                                resident = l2_map.get(arg)
                                assert resident is not None, \
                                    "L1/L2 inclusion violated"
                                assert resident.value == golden.get(arg, 0), \
                                    f"coherence violation at {arg:#x}"
                        elif (line := l2_map.get(arg)) is not None:
                            # Provable L2 hit: fixed latency, LRU touch,
                            # L1 refill (the slow path's only residency
                            # side effect), batched counters.
                            l2_set_list[arg % l2_n_sets].move_to_end(arg)
                            l1_fill(arg)
                            fast_l2_loads[pid] += 1
                            latency = l2_hit_cycles
                            if check:
                                assert line.value == golden.get(arg, 0), \
                                    f"coherence violation at {arg:#x}"
                        else:
                            latency = engine_load(pid, arg, now)
                        core.time = now + latency
                        core.instr_count += 1
                        core.instr_since_ckpt += 1
                        stats.busy += latency
                        core.ip = ip + 1
                    elif op == STORE:
                        line = l2_map.get(arg) if fastpath else None
                        if (line is not None and line.state == modified
                                and not line.delayed):
                            # Already MODIFIED by self, nothing Delayed:
                            # the slow path would only set line.value and
                            # return the L2 hit latency.
                            seq = core.store_seq + 1
                            core.store_seq = seq
                            value = store_tag | seq
                            if check:
                                golden[arg] = value
                            l2_set_list[arg % l2_n_sets].move_to_end(arg)
                            line.value = value
                            fast_stores[pid] += 1
                            latency = l2_store_cycles
                        else:
                            latency = engine_store(pid, arg,
                                                   core.next_store_value(),
                                                   now)
                        core.time = now + latency
                        core.instr_count += 1
                        core.instr_since_ckpt += 1
                        stats.busy += latency
                        core.ip = ip + 1
                    elif op == BARRIER:
                        result = sync.barrier_arrive(self, core, arg, now)
                        if result is None:
                            break  # blocked; ip advances on release
                        core.ip = ip + 1
                        core.time = result
                        self.push_core(core)
                        break
                    elif op == LOCK:
                        result = sync.lock_acquire(self, core, arg, now)
                        if result is None:
                            break  # blocked; ip advances on grant
                        core.ip = ip + 1
                        core.time = result
                        self.push_core(core)
                        break
                    elif op == UNLOCK:
                        core.time = sync.lock_release(self, core, arg,
                                                      now)
                        core.ip = ip + 1
                        self.push_core(core)
                        break
                    elif op == OUTPUT:
                        # Output I/O must be preceded by a checkpoint
                        # (Sec 6.4).
                        after = scheme.on_output(core, now)
                        if after is None:
                            # Busy (e.g. a delayed-writeback drain in
                            # flight): the scheme set not_before; retry the
                            # same record then.
                            self.push_core(core)
                            break
                        core.time = after + io_cycles
                        stats.busy += io_cycles
                        core.instr_count += 1
                        core.instr_since_ckpt += 1
                        core.ip = ip + 1
                        self.push_core(core)
                        break
                    elif op == END:
                        core.done = True
                        stats.end_time = core.time
                        self._n_done += 1
                        scheme.on_core_done(core, now)
                        break
                    else:  # pragma: no cover - malformed trace
                        raise ValueError(f"unknown trace op {(op, arg)!r}")
                    # -- fused continuation --------------------------------
                    budget -= 1
                    t = core.time
                    nb = core.not_before
                    when = t if t >= nb else nb
                    if budget <= 0 or (heap and heap[0][0] <= when):
                        core.epoch += 1
                        self._seq += 1
                        heappush(heap,
                                 (when, self._seq, _EXEC, pid, core.epoch))
                        break
                    # ``self.now`` is not advanced record-by-record:
                    # nothing can observe it mid-batch (callbacks only run
                    # from pops), and the next pop re-synchronizes it.
                    if when > limit:
                        self.now = when
                        raise self._cycle_limit_exceeded()
                    now = when
        finally:
            # Every exit — pause, completion, deadlock/cycle-limit raise —
            # folds the batched fast-path counters into the engine before
            # anything (fork's deepcopy, finalize) can observe them.
            if fastpath:
                engine.flush_fastpath(fast_l1_loads, fast_l2_loads,
                                      fast_stores)
        self._phase = "drain"
        return True

    def _advance_drain(self) -> bool:
        """Post-run drain; returns False when paused mid-phase.

        The application finished, but background work (delayed-writeback
        drains) may still be scheduled: let it complete so checkpoints
        close and the log/markers are consistent.  The cycle limit is
        enforced here too — a runaway background-callback chain must
        not spin past ``max_cycles`` silently just because the
        application part of the run is over.  Fault events popping here
        (detection after the application end) are recorded as
        undelivered by ``_deliver_fault``.
        """
        limit = self._limit
        heap = self._heap
        while heap:
            when, _, kind, a, _ = heapq.heappop(heap)
            if kind == _PAUSE:
                return False
            if kind == _CALL or kind == _DCALL:
                if when > self.now:
                    self.now = when
                if when > limit:
                    raise self._cycle_limit_exceeded()
                if kind == _DCALL:
                    a.fire(self, when)
                else:
                    a(when)
        self._phase = "done"
        return True

    def _diagnose_deadlock(self) -> None:
        states = []
        for core in self.cores:
            if not core.done:
                states.append(f"core {core.pid}: blocked={core.blocked} "
                              f"site={core.block_site} ip={core.ip}")
        raise SimulationDeadlock("no runnable core; waiting: " +
                                 "; ".join(states))

    # ------------------------------------------------------------------
    # wiring helpers used by schemes and sync
    # ------------------------------------------------------------------
    def wake_core(self, core: Core, when: float) -> None:
        """Unblock and reschedule a core at ``when``."""
        core.blocked = None
        core.block_site = None
        core.time = max(core.time, when)
        self.push_core(core)

    # ------------------------------------------------------------------
    # replica forking (vectorized campaign batches)
    # ------------------------------------------------------------------
    def fork(self) -> "Machine":
        """A paused machine cloned mid-run, bit-identical from here on.

        The clone shares the immutable bulk (config, workload, trace
        columns) with the parent and deep-copies all mutable simulation
        state (caches, directory, log, heap, cores, scheme, RNG), so
        advancing the clone is indistinguishable from advancing a
        machine that was *constructed* with the clone's state.  Pause
        sentinels are stripped — they belong to the parent's schedule.

        Refuses (``UnforkableMachineError``) if a legacy closure
        callback is pending: ``copy.deepcopy`` treats functions as
        atomic, so a cloned closure would fire into the parent.  The
        built-in schemes only schedule :class:`DurableCall`s.
        """
        if any(entry[2] == _CALL for entry in self._heap):
            raise UnforkableMachineError(
                "pending closure callback (Machine.schedule); only "
                "DurableCall-scheduled machines can fork")
        memo = {id(self.config): self.config,
                id(self.workload): self.workload}
        for core in self.cores:
            # The trace columns (and their tolist'd hot-loop mirrors)
            # are never mutated: every replica reads the same objects.
            memo[id(core.trace)] = core.trace
            if core.ops is not None:
                memo[id(core.ops)] = core.ops
                memo[id(core.args)] = core.args
        clone = copy.deepcopy(self, memo)
        if any(entry[2] == _PAUSE for entry in clone._heap):
            clone._heap = [entry for entry in clone._heap
                           if entry[2] != _PAUSE]
            heapq.heapify(clone._heap)
        return clone

    def rebind_config(self, config: MachineConfig) -> None:
        """Re-point a forked replica at its *own* resolved config.

        The batch planner only groups keys whose configs differ in
        fields the scheme declared **fault-free invariant**
        (``FAULT_FREE_INVARIANT_OVERRIDES``, e.g. ``detection_latency``
        for Global/NONE): the shared leader prefix is bit-identical
        under either config, but everything that runs *after* the fork
        — fault detection times (:meth:`install_faults` re-reads
        ``self.config``), recovery's safe-snapshot search and IRec
        construction (both read ``scheme.config`` lazily), and the
        final stats equality (``SimStats.config``) — must see the
        replica's config, not the leader's.  Invariant fields must be
        read lazily through these references; capturing one at
        construction time would make this rebind a silent no-op.
        """
        self.config = config
        self.stats.config = config
        self.scheme.config = config

    def install_faults(self, faults: list[tuple[float, int]] | FaultPlan,
                       ) -> None:
        """Arm a forked replica with its fault campaign.

        The injected heap events carry sequence numbers below every
        live entry's, so at equal timestamps a fault still fires before
        any trace record or drain callback — the exact order the scalar
        run establishes by scheduling faults first (seqs ``1..F``).
        Pending faults must all lie at or after the fork point; the
        parent leader is paused at the batch's earliest detection time,
        so this holds by construction for every replica.
        """
        if self.faults.events:
            raise RuntimeError("machine already has faults installed")
        if isinstance(faults, FaultPlan):
            faults = list(faults.faults)
        self.faults = FaultInjector(faults or [],
                                    self.config.detection_latency)
        for index, event in enumerate(self.faults.events):
            heapq.heappush(
                self._heap,
                (event.detect_time, _FAULT_SEQ_BASE + index, _DCALL,
                 DurableCall("machine", "_deliver_fault_at", (index,)),
                 None))
        # A replica forked past its drain (or even past the final pop)
        # still owes its faults an undelivered verdict: re-open the
        # drain so advance() pops them.
        if self._phase == "done" and self._heap:
            self._phase = "drain"

    # ------------------------------------------------------------------
    # run assembly
    # ------------------------------------------------------------------
    def finalize(self) -> SimStats:
        stats = self.stats
        stats.cores = [core.stats for core in self.cores]
        for pid, core in enumerate(self.cores):
            core.stats.ipc_delay += self.engine.ckpt_wait[pid]
            core.stats.end_time = max(core.stats.end_time, core.time)
        stats.runtime = max((c.end_time for c in stats.cores), default=0.0)
        # Checkpoint-stall windows charged past a core's last committed
        # record (a final checkpoint's sync/writeback tail, an
        # end-of-run back-off loop) displaced no execution: refund the
        # overhang so the overhead bucket stays inside the run's
        # runtime x n_cores cycle budget.
        for core in self.cores:
            core.refund_stall_overhang()
        stats.total_instructions = sum(c.instr_count for c in self.cores)
        for core in self.cores:
            core.stats.instructions = core.instr_count
        stats.base_messages = self.network.base_messages
        stats.dep_messages = self.network.dep_messages
        stats.protocol_messages = self.network.protocol_messages
        stats.log_bytes = self.log.total_bytes
        stats.max_interval_log_bytes = self.log.max_interval_bytes()
        stats.injected_faults = len(self.faults.events)
        stats.undelivered_faults = (len(self.faults.undelivered) +
                                    self.faults.outstanding)
        self.scheme.finalize(stats)
        engine = self.engine
        stats.energy_events = engine.energy_events()
        stats.l1_hits = sum(l1.n_hits for l1 in engine.l1s)
        stats.l1_misses = sum(l1.n_misses for l1 in engine.l1s)
        stats.l2_hits = sum(l2.n_hits for l2 in engine.l2s)
        stats.l2_misses = sum(l2.n_misses for l2 in engine.l2s)
        stats.fastpath_loads = engine.fast_loads
        stats.fastpath_stores = engine.fast_stores
        stats.fastpath_epoch_bumps = sum(engine.fastpath_epochs)
        stats.invalidations = engine.invalidations_sent
        stats.mem_accesses = engine.energy_l1  # one l1 event per load+store
        # Useful-work accounting audit: with the golden coherence checker
        # on (every unit-test machine), also assert that the four cycle
        # buckets partition runtime x n_cores exactly and stay
        # non-negative — a double-charged stall window fails the run
        # right here instead of skewing a campaign table later.
        if self.config.check_coherence:
            stats.verify_cycle_accounting()
        return stats

    def unfinished_cores(self) -> list[int]:
        return [c.pid for c in self.cores if not c.done]

    @property
    def finished(self) -> bool:
        """True once :meth:`advance` has drained every event."""
        return self._phase == "done"
