"""The manycore machine: event loop, trace execution, run assembly.

Execution model (DESIGN.md §4): a min-heap orders cores by local time;
one trace record executes atomically at its timestamp against the shared
structures (caches, directory, channels, log).  Checkpointing schemes
inject delays through ``core.not_before`` and scheduled callbacks; fault
injection reveals faults after the detection latency L and hands them to
the scheme's rollback protocol.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.coherence.protocol import CoherenceEngine
from repro.core.factory import build_scheme
from repro.interconnect import Interconnect
from repro.mem import MainMemory, MemoryChannels, ReviveLog
from repro.params import MachineConfig
from repro.sim.cores import Core
from repro.sim.faults import FaultInjector
from repro.sim.stats import SimStats
from repro.sim.sync import SyncManager
from repro.trace import (
    BARRIER,
    COMPUTE,
    END,
    LOAD,
    LOCK,
    OUTPUT,
    STORE,
    UNLOCK,
)
from repro.workloads.base import WorkloadSpec

_EXEC = 0
_CALL = 1


class SimulationDeadlock(RuntimeError):
    """No runnable core remains while work is outstanding."""


class Machine:
    """A manycore running one workload under one checkpointing scheme."""

    def __init__(self, config: MachineConfig, workload: WorkloadSpec,
                 faults: Optional[list[tuple[float, int]]] = None):
        if workload.n_threads > config.n_cores:
            raise ValueError(
                f"workload needs {workload.n_threads} threads but the "
                f"machine has {config.n_cores} cores")
        self.config = config
        self.workload = workload
        self.log = ReviveLog(n_banks=config.n_mem_channels,
                             bin_cycles=max(1, config.checkpoint_interval))
        self.memory = MainMemory(self.log)
        self.channels = MemoryChannels(config)
        self.network = Interconnect(config)
        self.scheme = build_scheme(self)
        self.engine = CoherenceEngine(config, self.channels, self.memory,
                                      self.network, self.scheme)
        self.cores = [Core(pid, trace)
                      for pid, trace in enumerate(workload.traces)]
        self.sync = SyncManager()
        for lock in workload.locks:
            self.sync.add_lock(lock.lock_id, lock.line)
        for barrier in workload.barriers:
            self.sync.add_barrier(barrier.barrier_id, barrier.participants,
                                  barrier.count_line, barrier.flag_line)
        self.faults = FaultInjector(faults or [], config.detection_latency)
        self._heap: list[tuple] = []
        self._seq = 0
        self._n_done = 0
        self.now = 0.0
        self.stats = SimStats(config=config, scheme=config.scheme,
                              workload=workload.name)
        self.scheme.attach(self)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def push_core(self, core: Core) -> None:
        """(Re)schedule a core at max(core.time, core.not_before)."""
        if core.done or core.blocked is not None:
            return
        core.epoch += 1
        self._seq += 1
        when = max(core.time, core.not_before)
        heapq.heappush(self._heap,
                       (when, self._seq, _EXEC, core.pid, core.epoch))

    def schedule(self, when: float, callback: Callable[[float], None]) -> None:
        """Run ``callback(time)`` at simulated time ``when``."""
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, _CALL, callback, None))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: Optional[float] = None) -> SimStats:
        for core in self.cores:
            if not core.trace:
                core.done = True
                self._n_done += 1
            else:
                self.push_core(core)
        while self._n_done < len(self.cores):
            if not self._heap:
                self._diagnose_deadlock()
            when, _, kind, a, b = heapq.heappop(self._heap)
            self.now = max(self.now, when)
            if max_cycles is not None and when > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles:,.0f} cycles")
            pending = self.faults.due(when)
            for fault in pending:
                self.scheme.handle_fault(fault.pid, fault.detect_time)
            if kind == _CALL:
                a(when)
                continue
            core = self.cores[a]
            if core.done or core.blocked is not None or b != core.epoch:
                continue  # stale entry
            if when < core.not_before:
                self.push_core(core)
                continue
            self._execute(core, max(when, core.time))
        # The application finished, but background work (delayed-writeback
        # drains) may still be scheduled: let it complete so checkpoints
        # close and the log/markers are consistent.
        while self._heap:
            when, _, kind, a, _ = heapq.heappop(self._heap)
            if kind == _CALL:
                self.now = max(self.now, when)
                a(when)
        return self.finalize()

    def _diagnose_deadlock(self) -> None:
        states = []
        for core in self.cores:
            if not core.done:
                states.append(f"core {core.pid}: blocked={core.blocked} "
                              f"site={core.block_site} ip={core.ip}")
        raise SimulationDeadlock("no runnable core; waiting: " +
                                 "; ".join(states))

    # ------------------------------------------------------------------
    # trace execution
    # ------------------------------------------------------------------
    def _execute(self, core: Core, now: float) -> None:
        # Checkpoint-initiation decisions run here, at the core's true
        # position in the global time order — not at the end-time of a
        # long record committed eagerly during an earlier pop.
        self.scheme.post_op(core, now)
        if core.not_before > now:
            self.push_core(core)   # back-off / checkpoint stall injected
            return
        trace = core.trace
        record = trace[core.ip] if core.ip < len(trace) else (END,)
        op = record[0]
        if op == COMPUTE:
            n = record[1]
            core.time = now + n
            core.instr_count += n
            core.instr_since_ckpt += n
            core.stats.busy += n
            core.ip += 1
        elif op == LOAD:
            latency = self.engine.load(core.pid, record[1], now)
            core.time = now + latency
            core.instr_count += 1
            core.instr_since_ckpt += 1
            core.stats.busy += latency
            core.ip += 1
        elif op == STORE:
            latency = self.engine.store(core.pid, record[1],
                                        core.next_store_value(), now)
            core.time = now + latency
            core.instr_count += 1
            core.instr_since_ckpt += 1
            core.stats.busy += latency
            core.ip += 1
        elif op == BARRIER:
            result = self.sync.barrier_arrive(self, core, record[1], now)
            if result is None:
                return  # blocked; ip advances on release
            core.ip += 1
            core.time = result
        elif op == LOCK:
            result = self.sync.lock_acquire(self, core, record[1], now)
            if result is None:
                return  # blocked; ip advances on grant
            core.ip += 1
            core.time = result
        elif op == UNLOCK:
            core.time = self.sync.lock_release(self, core, record[1], now)
            core.ip += 1
        elif op == OUTPUT:
            # Output I/O must be preceded by a checkpoint (Section 6.4).
            after = self.scheme.on_output(core, now)
            core.time = after + self.config.io_cycles
            core.stats.busy += self.config.io_cycles
            core.instr_count += 1
            core.instr_since_ckpt += 1
            core.ip += 1
        elif op == END:
            core.done = True
            core.stats.end_time = core.time
            self._n_done += 1
            self.scheme.on_core_done(core, now)
            return
        else:  # pragma: no cover - malformed trace
            raise ValueError(f"unknown trace op {record!r}")
        self.push_core(core)

    # ------------------------------------------------------------------
    # wiring helpers used by schemes and sync
    # ------------------------------------------------------------------
    def wake_core(self, core: Core, when: float) -> None:
        """Unblock and reschedule a core at ``when``."""
        core.blocked = None
        core.block_site = None
        core.time = max(core.time, when)
        self.push_core(core)

    # ------------------------------------------------------------------
    # run assembly
    # ------------------------------------------------------------------
    def finalize(self) -> SimStats:
        stats = self.stats
        stats.cores = [core.stats for core in self.cores]
        for pid, core in enumerate(self.cores):
            core.stats.ipc_delay += self.engine.ckpt_wait[pid]
            core.stats.end_time = max(core.stats.end_time, core.time)
        stats.runtime = max((c.end_time for c in stats.cores), default=0.0)
        stats.total_instructions = sum(c.instr_count for c in self.cores)
        for core in self.cores:
            core.stats.instructions = core.instr_count
        stats.base_messages = self.network.base_messages
        stats.dep_messages = self.network.dep_messages
        stats.protocol_messages = self.network.protocol_messages
        stats.log_bytes = self.log.total_bytes
        stats.max_interval_log_bytes = self.log.max_interval_bytes()
        self.scheme.finalize(stats)
        stats.energy_events = dict(self.engine.energy)
        return stats

    def unfinished_cores(self) -> list[int]:
        return [c.pid for c in self.cores if not c.done]
