"""Per-core simulation state.

A core executes its trace at one instruction per cycle (Figure 4.3a)
plus memory latencies.  It carries the architectural snapshot machinery
used by every checkpointing scheme: at a checkpoint the core's register
state — here, its trace position, instruction counts and held
synchronization state — is saved; a rollback rewinds the core to a
snapshot, after which it re-executes the lost work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.stats import CoreStats
from repro.trace import CompiledTrace


@dataclass(slots=True)
class CoreSnapshot:
    """Register/context state captured with checkpoint ``ckpt_id``."""

    ckpt_id: int
    trace_ip: int
    instr_count: int
    time: float
    held_locks: frozenset[int]
    barrier_crossings: dict[int, int]
    complete_time: Optional[float] = None   # writebacks (incl. delayed) done
    #: Cumulative net checkpoint-overhead cycles charged to the core
    #: when the snapshot was captured: the reclaim baseline of a
    #: rollback to this snapshot — only overhead charged *after* the
    #: span's start may be reclassified out of rollback waste.
    overhead_mark: float = 0.0


class Core:
    """One tile's core: trace cursor, clock, block state, snapshots."""

    __slots__ = (
        "pid", "trace", "ops", "args", "ip", "time", "instr_count",
        "instr_since_ckpt",
        "done", "blocked", "block_site", "block_start", "epoch",
        "not_before", "held_locks", "barrier_crossings", "stats",
        "store_seq", "store_tag", "ckpt_busy_until", "snapshots",
        "next_ckpt_id",
        "pending_delayed", "delayed_ckpt_id", "waste_charged_until",
        "recovery_until", "overhead_reclaim_mark", "stall_segments",
    )

    def __init__(self, pid: int, trace):
        self.pid = pid
        self.trace = trace
        # The hot loop indexes the columnar IR as plain lists: ``tolist``
        # pre-boxes every op/arg once, so the per-record fetch is two
        # allocation-free list lookups instead of a tuple fetch + two
        # element reads.  A raw tuple trace (unit tests poking at core
        # state directly) keeps ``ops``/``args`` unset — the machine
        # always compiles traces before building cores.
        if isinstance(trace, CompiledTrace):
            self.ops = trace.ops.tolist()
            self.args = trace.args.tolist()
        else:
            self.ops = None
            self.args = None
        self.ip = 0
        self.time = 0.0
        self.instr_count = 0
        self.instr_since_ckpt = 0
        self.done = False
        self.blocked: Optional[str] = None      # None|'lock'|'barrier'
        self.block_site: Optional[int] = None
        self.block_start = 0.0
        self.epoch = 0                          # guards stale heap entries
        self.not_before = 0.0                   # scheme-injected delay floor
        self.held_locks: set[int] = set()
        self.barrier_crossings: dict[int, int] = {}
        self.stats = CoreStats()
        self.store_seq = 0
        self.store_tag = pid << 40      # high bits of every store value
        # While a checkpoint (or its delayed drain) is in flight the core
        # Nacks/Busies external checkpoint requests (Sections 3.3.4, 4.1).
        self.ckpt_busy_until = 0.0
        # Snapshot 0 is program start; rolling back to it replays all work.
        self.snapshots: list[CoreSnapshot] = [
            CoreSnapshot(0, 0, 0, 0.0, frozenset(), {}, complete_time=0.0)
        ]
        self.next_ckpt_id = 1
        self.pending_delayed = 0                # lines still draining
        self.delayed_ckpt_id: Optional[int] = None
        # Clock watermarks for back-to-back rollbacks: cycles below
        # waste_charged_until were already written off as wasted work,
        # and recovery time before recovery_until was already counted.
        self.waste_charged_until = 0.0
        self.recovery_until = 0.0
        # Cumulative checkpoint-overhead cycles already attributed at
        # the last rollback: a discarded span contains checkpoint stalls
        # too, and those cycles must stay in the overhead bucket rather
        # than be charged a second time as rollback waste (the useful-
        # work partition would go negative otherwise).
        self.overhead_reclaim_mark = 0.0
        # Wall-clock extents of every charged checkpoint-stall window:
        # a window that runs past the core's last committed record (the
        # final checkpoint's sync and writeback tail, an end-of-run
        # back-off loop) or past a rollback cut displaced no execution,
        # so its overhang is tracked in ``stats.stall_overhang`` and
        # netted out of the useful-work overhead bucket.
        self.stall_segments: list[tuple[float, float]] = []

    def charge_stall(self, field: str, start: float, end: float) -> None:
        """Charge a checkpoint-stall window to CoreStats ``field`` and
        remember its wall-clock extent for overhang accounting."""
        if end <= start:
            return
        setattr(self.stats, field, getattr(self.stats, field) +
                (end - start))
        self.stall_segments.append((start, end))

    def truncate_stalls(self, cut: float) -> None:
        """End every in-flight stall window at ``cut`` (a rollback took
        the core over): the charged tail past the cut goes to
        ``stall_overhang``, netting it out of the overhead bucket while
        the gross per-category counters keep the paper-facing values.

        Every segment is then dropped: rollback cuts arrive in
        non-decreasing detection order and the core's final end time is
        at least this rollback's resume time, so a window ending at or
        before ``cut`` can never produce overhang again — keeping it
        would only grow the list for later rescans."""
        for start, end in self.stall_segments:
            if end > cut:
                self.stats.stall_overhang += \
                    end - (start if start > cut else cut)
        self.stall_segments.clear()

    def refund_stall_overhang(self) -> None:
        """Count stall cycles charged past the core's final end time as
        overhang (called once by the machine's finalize, after end_time
        is set): a window that ran past the last committed record
        displaced no execution, so it must not occupy overhead budget
        inside the run's [0, runtime] cycle partition."""
        end_time = self.stats.end_time
        for start, end in self.stall_segments:
            overhang = end - (start if start > end_time else end_time)
            if overhang > 0.0:
                self.stats.stall_overhang += overhang

    # -- values -------------------------------------------------------------
    def next_store_value(self) -> int:
        """Unique architectural value for the next store (pid, seq)."""
        self.store_seq += 1
        return self.store_tag | self.store_seq

    # -- snapshots ------------------------------------------------------------
    def take_snapshot(self, now: float,
                      overhead_mark: float = 0.0) -> CoreSnapshot:
        snap = CoreSnapshot(
            self.next_ckpt_id, self.ip, self.instr_count, now,
            frozenset(self.held_locks), dict(self.barrier_crossings),
            overhead_mark=overhead_mark)
        self.snapshots.append(snap)
        self.next_ckpt_id += 1
        self.stats.n_checkpoints += 1
        self.stats.ckpt_gap_sum += now - self.stats.last_ckpt_time
        self.stats.ckpt_gap_count += 1
        self.stats.last_ckpt_time = now
        return snap

    def snapshot_for(self, ckpt_id: int) -> CoreSnapshot:
        for snap in reversed(self.snapshots):
            if snap.ckpt_id == ckpt_id:
                return snap
        raise KeyError(f"core {self.pid}: no snapshot {ckpt_id}")

    def latest_safe_snapshot(self, detect_time: float,
                             detection_latency: float) -> CoreSnapshot:
        """Newest snapshot fully complete >= L cycles before detection.

        The program-start snapshot always qualifies, so recovery can never
        fail to find a target (Appendix A relies on this).
        """
        for snap in reversed(self.snapshots):
            done = snap.complete_time
            if done is not None and detect_time - done >= detection_latency:
                return snap
        return self.snapshots[0]

    def rollback_to(self, snap: CoreSnapshot, resume_time: float,
                    detect_time: Optional[float] = None) -> float:
        """Rewind to ``snap``; returns the wasted (discarded) cycles.

        Waste is the execution discarded *this* rollback: the clock
        span from the rollback target (or the previous rollback's
        resume point — ``waste_charged_until`` — whichever is later) up
        to the detection time.  The detect cap keeps in-flight record
        tails out; the watermark keeps a back-to-back fault, detected
        before re-execution got anywhere, from charging the same span
        (or the recovery wait itself) a second time.
        """
        executed_until = self.time if detect_time is None \
            else min(self.time, detect_time)
        wasted = max(0.0, executed_until -
                     max(snap.time, self.waste_charged_until))
        self.waste_charged_until = max(self.waste_charged_until,
                                       resume_time)
        self.ip = snap.trace_ip
        self.instr_count = snap.instr_count
        self.instr_since_ckpt = 0
        self.held_locks = set(snap.held_locks)
        self.barrier_crossings = dict(snap.barrier_crossings)
        self.snapshots = [s for s in self.snapshots
                          if s.ckpt_id <= snap.ckpt_id]
        self.next_ckpt_id = snap.ckpt_id + 1
        self.time = resume_time
        self.blocked = None
        self.block_site = None
        self.done = False
        self.not_before = resume_time
        self.ckpt_busy_until = resume_time
        self.pending_delayed = 0
        self.delayed_ckpt_id = None
        return wasted
