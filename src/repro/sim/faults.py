"""Fault injection under the paper's fault model (Section 3.2).

Transient or permanent faults can strike any core at any time, including
during a checkpoint.  Detection is out of scope for the paper except for
its latency: a fault occurring at time ``t`` is revealed to the recovery
machinery at ``t + L``, and a checkpoint that completed more than L
cycles ago is safe.  Off-chip memory and the log never fault.

Two ways to describe the faults of a run:

* a plain list of ``(time, pid)`` pairs (hand-placed faults, as the
  single-fault figures use), or
* a :class:`FaultPlan` — a seed-deterministic draw from an exponential
  (MTTF) model.  Plans are frozen, hashable and have a stable repr, so
  they can ride inside a :class:`~repro.harness.engine.RunKey` and make
  fault runs cacheable and parallelizable like any other simulation.

Delivery: the :class:`~repro.sim.machine.Machine` schedules every fault
as its own heap event at its detection time, so delivery is exact
regardless of record fusing.  A fault whose detection time falls after
the application finished can never be delivered; it is recorded as
*undelivered* instead of silently vanishing (the harness refuses to
report a 0-cycle recovery for such runs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class FaultPlan:
    """Seed-deterministic fault campaign: a tuple of (time, pid) faults.

    Frozen and hashable with a stable ``repr``, so a plan can be part of
    a cache key.  ``seed`` and ``mttf`` are provenance metadata excluded
    from equality, hashing *and* repr: the ``faults`` tuple alone
    defines the simulation, so two plans with identical faults share one
    engine cache entry no matter how they were constructed.
    """

    faults: tuple[tuple[float, int], ...]
    seed: Optional[int] = field(default=None, compare=False, repr=False)
    mttf: Optional[float] = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(
            (float(time), int(pid)) for time, pid in self.faults))

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @staticmethod
    def single(time: float, pid: int = 0) -> "FaultPlan":
        """The classic one-scripted-fault run as a plan."""
        return FaultPlan(((float(time), pid),))

    @staticmethod
    def from_mttf(seed: int, mttf: float, horizon: float, n_cores: int,
                  max_faults: int = 256) -> "FaultPlan":
        """Draw a fault campaign from an exponential failure model.

        ``mttf`` is the *machine-wide* mean time to failure in cycles
        (equivalently: each of the ``n_cores`` cores fails independently
        with per-core MTTF ``n_cores * mttf``).  Inter-arrival times are
        exponential; each fault strikes a uniformly random core, so
        mid-checkpoint and back-to-back faults on one core all occur
        with their natural probability.  Same seed => identical plan.

        ``max_faults`` is a sanity bound, not a silent truncation: a
        draw that hits it raises, because labeling results with an MTTF
        the injected process no longer matches would be a lie.
        """
        if mttf <= 0:
            raise ValueError("mttf must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = random.Random(seed)
        faults = []
        t = 0.0
        while True:
            t += rng.expovariate(1.0 / mttf)
            if t >= horizon:
                break
            if len(faults) >= max_faults:
                raise ValueError(
                    f"fault plan exceeds max_faults={max_faults} "
                    f"(~{horizon / mttf:.0f} faults expected for "
                    f"mttf={mttf:g}, horizon={horizon:g}); raise "
                    f"max_faults or use a longer MTTF")
            faults.append((round(t, 1), rng.randrange(n_cores)))
        return FaultPlan(tuple(faults), seed=seed, mttf=float(mttf))


@dataclass
class FaultEvent:
    """One injected fault and its detection time."""

    time: float
    pid: int
    detect_time: float = field(init=False)
    detected: bool = False
    undelivered: bool = False

    def __post_init__(self):
        self.detect_time = self.time  # patched by the injector


class FaultInjector:
    """Hands faults to the scheme once their detection latency elapses.

    Events resolve strictly in detection order, either through the pull
    API (:meth:`due`, used by unit tests and external drivers) or the
    push API (:meth:`mark_delivered` / :meth:`mark_undelivered`, used by
    the machine's heap-event delivery).  The cursor makes every
    operation O(1) per fault — campaign-scale fault lists stay linear.
    """

    def __init__(self, faults: list[tuple[float, int]],
                 detection_latency: float):
        self.detection_latency = detection_latency
        self.events: list[FaultEvent] = []
        for time, pid in sorted(faults):
            event = FaultEvent(time, pid)
            event.detect_time = time + detection_latency
            self.events.append(event)
        self._next = 0                     # first unresolved event
        self.delivered: list[FaultEvent] = []
        self.undelivered: list[FaultEvent] = []

    @property
    def pending(self) -> list[FaultEvent]:
        """Events not yet delivered or written off, in detection order."""
        return self.events[self._next:]

    def due(self, now: float) -> list[FaultEvent]:
        """Faults whose detection time has been reached."""
        out = []
        while self._next < len(self.events) and \
                self.events[self._next].detect_time <= now:
            event = self.events[self._next]
            self._next += 1
            event.detected = True
            self.delivered.append(event)
            out.append(event)
        return out

    def _resolve(self, event: FaultEvent) -> None:
        if self._next >= len(self.events) or \
                self.events[self._next] is not event:
            raise ValueError(
                f"fault {event} resolved out of detection order")
        self._next += 1

    def mark_delivered(self, event: FaultEvent) -> None:
        """The machine handed ``event`` to the scheme."""
        self._resolve(event)
        event.detected = True
        self.delivered.append(event)

    def mark_undelivered(self, event: FaultEvent) -> None:
        """``event``'s detection time fell after the application
        finished: there is no execution left to roll back."""
        self._resolve(event)
        event.undelivered = True
        self.undelivered.append(event)

    @property
    def outstanding(self) -> int:
        return len(self.events) - self._next
