"""Fault injection under the paper's fault model (Section 3.2).

Transient or permanent faults can strike any core at any time, including
during a checkpoint.  Detection is out of scope for the paper except for
its latency: a fault occurring at time ``t`` is revealed to the recovery
machinery at ``t + L``, and a checkpoint that completed more than L
cycles ago is safe.  Off-chip memory and the log never fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultEvent:
    """One injected fault and its detection time."""

    time: float
    pid: int
    detect_time: float = field(init=False)
    detected: bool = False

    def __post_init__(self):
        self.detect_time = self.time  # patched by the injector


class FaultInjector:
    """Hands faults to the scheme once their detection latency elapses."""

    def __init__(self, faults: list[tuple[float, int]],
                 detection_latency: float):
        self.detection_latency = detection_latency
        self.pending: list[FaultEvent] = []
        for time, pid in sorted(faults):
            event = FaultEvent(time, pid)
            event.detect_time = time + detection_latency
            self.pending.append(event)
        self.delivered: list[FaultEvent] = []

    def due(self, now: float) -> list[FaultEvent]:
        """Faults whose detection time has been reached."""
        out = []
        while self.pending and self.pending[0].detect_time <= now:
            event = self.pending.pop(0)
            event.detected = True
            self.delivered.append(event)
            out.append(event)
        return out

    @property
    def outstanding(self) -> int:
        return len(self.pending)
