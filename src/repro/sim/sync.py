"""Locks and barriers built on coherent memory accesses.

Synchronization is implemented with ordinary loads/stores on dedicated
cache lines, so the directory's LW-ID field and the Dep registers observe
the dependences it creates — exactly the property the paper exploits:
lock hand-offs chain producer->consumer through the lock word, and a
barrier's count/flag lines chain *all* participants together, which is
why barriers induce global interaction sets (Figure 4.2b) and why the
BarCK optimization exists.

The manager also knows how to repair its state when a set of processors
rolls back (locks re-granted from checkpoint snapshots, barrier
generations regressed); see DESIGN.md §4.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cores import Core, CoreSnapshot
    from repro.sim.machine import Machine


class LockState:
    """A test-and-set lock on one cache line."""

    __slots__ = ("lock_id", "line", "holder", "queue")

    def __init__(self, lock_id: int, line: int):
        self.lock_id = lock_id
        self.line = line
        self.holder: Optional[int] = None
        self.queue: deque[int] = deque()


class BarrierState:
    """A sense-reversing barrier: count line + flag line."""

    __slots__ = ("barrier_id", "participants", "count_line", "flag_line",
                 "arrived", "arrival_times", "gen", "barck_pending",
                 "barck_initiator", "barck_time", "barck_members")

    def __init__(self, barrier_id: int, participants: list[int],
                 count_line: int, flag_line: int):
        self.barrier_id = barrier_id
        self.participants = list(participants)
        self.count_line = count_line
        self.flag_line = flag_line
        self.arrived: list[int] = []
        self.arrival_times: dict[int, float] = {}
        self.gen = 0
        # Barrier-optimization state (Section 4.2.1).
        self.barck_pending = False
        self.barck_initiator: Optional[int] = None
        self.barck_time = 0.0
        self.barck_members: dict[int, tuple] = {}

    @property
    def n(self) -> int:
        return len(self.participants)


class SyncManager:
    """Owns all lock/barrier state for one machine."""

    def __init__(self):
        self.locks: dict[int, LockState] = {}
        self.barriers: dict[int, BarrierState] = {}
        self.lock_acquisitions = 0
        self.barrier_episodes = 0

    def add_lock(self, lock_id: int, line: int) -> LockState:
        lock = LockState(lock_id, line)
        self.locks[lock_id] = lock
        return lock

    def add_barrier(self, barrier_id: int, participants: list[int],
                    count_line: int, flag_line: int) -> BarrierState:
        barrier = BarrierState(barrier_id, participants, count_line,
                               flag_line)
        self.barriers[barrier_id] = barrier
        return barrier

    # ------------------------------------------------------------------
    # lock operations
    # ------------------------------------------------------------------
    def lock_acquire(self, machine: "Machine", core: "Core", lock_id: int,
                     now: float) -> Optional[float]:
        """Try to take the lock; returns completion time or None (blocked)."""
        lock = self.locks[lock_id]
        if lock.holder is None:
            latency = self._rmw(machine, core, lock.line, now)
            lock.holder = core.pid
            core.held_locks.add(lock_id)
            self.lock_acquisitions += 1
            return now + latency
        lock.queue.append(core.pid)
        core.blocked = "lock"
        core.block_site = lock_id
        core.block_start = now
        core.time = now
        return None

    def lock_release(self, machine: "Machine", core: "Core", lock_id: int,
                     now: float) -> float:
        """Release; hands the lock to the next waiter (FIFO)."""
        lock = self.locks[lock_id]
        assert lock.holder == core.pid, "unlock by non-holder"
        latency = machine.engine.store(core.pid, lock.line,
                                       core.next_store_value(), now)
        core.instr_count += 1
        core.instr_since_ckpt += 1
        lock.holder = None
        core.held_locks.discard(lock_id)
        done = now + latency
        self._grant_next(machine, lock, done)
        return done

    def _grant_next(self, machine: "Machine", lock: LockState,
                    now: float) -> None:
        while lock.queue and lock.holder is None:
            pid = lock.queue.popleft()
            waiter = machine.cores[pid]
            if waiter.blocked != "lock" or waiter.block_site != lock.lock_id:
                continue  # stale queue entry (e.g. after a rollback)
            # The waiter's test&set reads the releaser's store: this is
            # the RAW dependence that puts lock-passing in the ICHK.
            latency = self._rmw(machine, waiter, lock.line, now)
            lock.holder = pid
            waiter.held_locks.add(lock.lock_id)
            waiter.stats.sync_wait += max(0.0, now - waiter.block_start)
            waiter.blocked = None
            waiter.block_site = None
            waiter.time = now + latency
            waiter.ip += 1  # past the LOCK record it blocked on
            self.lock_acquisitions += 1
            machine.push_core(waiter)

    def _rmw(self, machine: "Machine", core: "Core", line: int,
             now: float) -> float:
        """Test&set: load + store on the synchronization line."""
        latency = machine.engine.load(core.pid, line, now)
        latency += machine.engine.store(core.pid, line,
                                        core.next_store_value(),
                                        now + latency)
        core.instr_count += 2
        core.instr_since_ckpt += 2
        core.stats.busy += latency
        return latency

    # ------------------------------------------------------------------
    # barrier operations
    # ------------------------------------------------------------------
    def barrier_arrive(self, machine: "Machine", core: "Core",
                       barrier_id: int, now: float) -> Optional[float]:
        """Arrive at a barrier; returns crossing time or None (blocked)."""
        barrier = self.barriers[barrier_id]
        crossed = core.barrier_crossings.get(barrier_id, 0)
        if crossed < barrier.gen:
            # A rolled-back straggler re-arriving at a generation that
            # already released: the flag is set in memory, so it simply
            # observes it (re-recording the dependence on the writer)
            # and passes through — no second release is needed.
            latency = machine.engine.load(core.pid, barrier.flag_line, now)
            core.instr_count += 1
            core.instr_since_ckpt += 1
            core.stats.busy += latency
            core.barrier_crossings[barrier_id] = crossed + 1
            return now + latency
        # Update critical section: serialized RMW on the count line.
        # Consecutive arrivals chain WAW dependences through this line.
        latency = self._rmw(machine, core, barrier.count_line, now)
        t_arrived = now + latency
        barrier.arrived.append(core.pid)
        barrier.arrival_times[core.pid] = t_arrived
        is_last = len(barrier.arrived) == barrier.n
        machine.scheme.on_barrier_update(core, barrier, t_arrived, is_last)
        if not is_last:
            core.blocked = "barrier"
            core.block_site = barrier_id
            core.block_start = t_arrived
            core.time = t_arrived
            return None
        return self._release(machine, core, barrier, t_arrived)

    def _release(self, machine: "Machine", last: "Core",
                 barrier: BarrierState, now: float) -> float:
        """Last arrival: (optionally checkpoint), set flag, wake spinners."""
        self.barrier_episodes += 1
        # The BarCK checkpoint completes before the flag may be written
        # (Section 4.2.1); the gate returns when the flag write may start.
        flag_time = machine.scheme.barrier_release_gate(barrier, now)
        latency = machine.engine.store(last.pid, barrier.flag_line,
                                       last.next_store_value(), flag_time)
        last.instr_count += 1
        last.instr_since_ckpt += 1
        release = flag_time + latency
        for pid in barrier.arrived:
            if pid == last.pid:
                continue
            waiter = machine.cores[pid]
            if waiter.blocked != "barrier" or \
                    waiter.block_site != barrier.barrier_id:
                continue
            # Final spin iteration: the read of the flag that observes the
            # release (dependence: flag writer -> every spinner).
            spin_latency = machine.engine.load(pid, barrier.flag_line,
                                               release)
            waiter.instr_count += 1
            waiter.instr_since_ckpt += 1
            waiter.stats.sync_wait += max(0.0, release - waiter.block_start)
            waiter.blocked = None
            waiter.block_site = None
            waiter.time = release + spin_latency
            waiter.ip += 1  # past the BARRIER record it blocked on
            waiter.barrier_crossings[barrier.barrier_id] = \
                waiter.barrier_crossings.get(barrier.barrier_id, 0) + 1
            machine.push_core(waiter)
        last.barrier_crossings[barrier.barrier_id] = \
            last.barrier_crossings.get(barrier.barrier_id, 0) + 1
        last.stats.sync_wait += max(0.0, release - now)
        barrier.arrived.clear()
        barrier.arrival_times.clear()
        barrier.gen += 1
        barrier.barck_pending = False
        barrier.barck_initiator = None
        barrier.barck_members.clear()
        return release

    # ------------------------------------------------------------------
    # rollback repair
    # ------------------------------------------------------------------
    def rollback_cleanup(self, machine: "Machine", members: set[int],
                         snapshots: dict[int, "CoreSnapshot"],
                         now: float) -> None:
        """Re-derive lock/barrier state after ``members`` rolled back.

        Lock ownership is restored from each member's checkpoint snapshot
        (the snapshot records which locks were held — i.e. the restored
        memory image shows the lock word taken).  Barrier generations
        regress to the minimum crossing count among participants; the
        Appendix A consistency argument guarantees participants roll back
        past a barrier release together.
        """
        for lock in self.locks.values():
            lock.queue = deque(p for p in lock.queue if p not in members)
            if lock.holder in members:
                held = lock.lock_id in snapshots[lock.holder].held_locks
                if not held:
                    lock.holder = None
            for pid in members:
                if lock.lock_id in snapshots[pid].held_locks:
                    assert lock.holder in (None, pid), \
                        "inconsistent recovery line: lock double-held"
                    lock.holder = pid
            if lock.holder is None:
                self._grant_next(machine, lock, now)
        for barrier in self.barriers.values():
            barrier.arrived = [p for p in barrier.arrived
                               if p not in members]
            for pid in members:
                barrier.arrival_times.pop(pid, None)
            crossings = []
            for pid in barrier.participants:
                core = machine.cores[pid]
                crossings.append(
                    core.barrier_crossings.get(barrier.barrier_id, 0))
            # A generation regresses only if *everyone* rolled back past
            # its release; lone stragglers catch up through the
            # pass-through path in barrier_arrive instead.
            barrier.gen = max(crossings) if crossings else 0
            barrier.barck_pending = False
            barrier.barck_initiator = None
            barrier.barck_members.clear()
