"""Vectorized multi-replica campaign executor.

A fault campaign fans one compiled workload out into N seeded replicas
that differ *only* in their fault plans — and a replica is bit-identical
to every other until its first fault is detected.  The executor
exploits exactly that: one fault-free **leader** machine walks the
shared ``CompiledTrace`` ops/args columns once per batch, pausing at
each replica's first fault-detection time (sorted ascending with
numpy); at each pause the replica is **spilled** into a scalar
:class:`~repro.sim.machine.Machine` via :meth:`Machine.fork`, armed
with its fault plan, and driven to completion by the ordinary scalar
kernel.  Per-replica batch state (divergence clocks, fault counts,
shared-prefix savings) lives in ``(N,)``-shaped numpy arrays; anything
divergence-heavy — rollbacks, cluster barriers, I/O injection after the
spill — runs in the spilled scalar machine, so every replica's
``SimStats`` (including the exact cycle-bucket partition) is unchanged
by construction.

Soundness rests on three properties of the scalar kernel:

* **Pause sentinels are unobservable.**  ``Machine.advance(pause_at=t)``
  plants a heap sentinel at ``t`` whose presence gives the fused
  executor the same fusion horizon a pending fault at ``t`` would (the
  fusion condition only reads ``heap[0][0]``); record fusing is
  parity-guaranteed for *any* break pattern (``fuse_quantum=1`` is the
  repo's golden reference), and the sentinel never advances the clock.
* **Forks are faithful.**  All built-in scheduled callbacks are
  :class:`~repro.sim.events.DurableCall` descriptors that re-bind to
  the firing machine, so a fork's pending drains complete inside the
  fork.  A pending legacy closure makes the machine unforkable and the
  batch falls back to scalar runs (``UnforkableMachineError``).
* **Fault ordering is reproduced.**  A scalar run schedules faults
  first (lowest seqs), so at equal timestamps a fault beats any trace
  record; ``Machine.install_faults`` injects the fork's fault events
  with seqs below every live entry, preserving that order.

The leader runs the same memory-system fast path as every scalar
machine (``Machine.fastpath`` / ``REPRO_FASTPATH``): its batched
per-core hit counters are flushed into the engine aggregates on every
exit from the advance loop — in particular before each pause — so a
fork's deep copy always clones a fully-folded engine and replica stats
stay bit-identical in all four on/off x scalar/vector combinations.

The speedup is the shared prefix: for first-detections at
``t_1 <= ... <= t_N`` over a run of length ``T``, the batch simulates
``T + sum(T - t_i)`` cycles instead of ``N * T``.  Dense fault
campaigns (MTTF ~ one interval) divergence early and gain modestly;
sparse campaigns (and fault-free replicas, which are served directly
from the leader's finalized stats) approach ``N``-fold savings.  No
cycle of post-divergence work is ever approximated away — this is an
exact-prefix-sharing optimization, not a sampling one.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.params import MachineConfig
from repro.sim.machine import Machine, UnforkableMachineError
from repro.sim.stats import SimStats
from repro.workloads.base import WorkloadSpec

try:  # numpy is an optional extra (``repro[vector]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

__all__ = ["have_numpy", "run_replica_batch", "BatchResult", "BatchReport",
           "UnforkableMachineError"]

#: A replica's faults: the plain ``(time, pid)`` list a RunKey carries.
FaultList = Sequence[tuple[float, int]]


def have_numpy() -> bool:
    """True when the vectorized executor can run at all."""
    return _np is not None


#: Forking the leader costs a deep copy of the whole machine state
#: (~10-15% of a full run's wall clock), so a replica only rides the
#: leader when its shared prefix is worth more than the fork: replicas
#: whose first divergence lands before this fraction of the estimated
#: run length are run standalone through the ordinary scalar kernel
#: instead — bit-identical either way, the threshold only moves cost.
SPILL_THRESHOLD_FRACTION = 0.2


@dataclass
class BatchReport:
    """Per-batch accounting (progress/bench reporting, not results)."""

    width: int = 0                     #: replicas in the batch
    spilled: int = 0                   #: replicas run by the scalar kernel
    leader_served: int = 0             #: fault-free replicas served
    forced_spills: int = 0             #: test-injected early spills
    #: Spilled replicas that diverged too early to be worth a fork and
    #: ran standalone (subset of ``spilled``).
    direct_runs: int = 0
    #: Per-replica divergence times (inf = never diverged), batch order.
    divergence: list[float] = field(default_factory=list)
    #: Simulated cycles the batch shared in the leader instead of
    #: re-executing per replica: sum of divergence prefixes minus the
    #: one leader walk that actually happened.
    shared_prefix_cycles: float = 0.0
    #: Trace records of the shared workload, walked once per batch
    #: (vs. once per replica scalar): op -> count over all threads.
    record_histogram: dict[int, int] = field(default_factory=dict)


@dataclass
class BatchResult:
    """Stats per replica (input order) plus the batch accounting."""

    stats: list[SimStats]
    report: BatchReport


def _first_detect(faults: FaultList, detection_latency: float) -> float:
    """Detection time of a replica's earliest fault (inf if none)."""
    if not faults:
        return float("inf")
    return min(time for time, _pid in faults) + detection_latency


def _record_histogram(workload: WorkloadSpec) -> dict[int, int]:
    """Op histogram over every thread's columns — one numpy pass per
    batch over the shared trace IR (``np.frombuffer`` views)."""
    total = _np.zeros(8, dtype=_np.int64)
    for trace in workload.traces:
        ops, _args = trace.numpy_columns()
        total += _np.bincount(ops, minlength=8)[:8]
    return {op: int(count) for op, count in enumerate(total) if count}


def run_replica_batch(config: MachineConfig, workload: WorkloadSpec,
                      fault_lists: Sequence[FaultList],
                      forced_spills: Optional[Sequence[Optional[float]]]
                      = None,
                      max_cycles: Optional[float] = None,
                      replica_configs:
                      Optional[Sequence[MachineConfig]] = None,
                      ) -> BatchResult:
    """Run N replicas of one workload, sharing their common prefix.

    ``fault_lists[i]`` is replica *i*'s fault campaign (empty = fault
    free).  ``forced_spills[i]`` (tests only) forces replica *i* out of
    the leader at that time even though no fault is due yet — the fork
    machinery is exercised at arbitrary divergence points while the
    results stay bit-identical.  Returns per-replica ``SimStats`` in
    input order, each equal to ``Machine(config, workload,
    faults=fault_lists[i]).run(max_cycles)``.

    ``replica_configs[i]`` (default: ``config`` for everyone) lets the
    replicas differ in config fields the scheme declared **fault-free
    invariant** (``FAULT_FREE_INVARIANT_OVERRIDES``, e.g.
    ``detection_latency`` under Global/NONE): the shared fault-free
    prefix is bit-identical under every member's config by that
    declaration, each replica's divergence clock uses its *own*
    detection latency, and each fork is re-pointed at its own config
    (:meth:`Machine.rebind_config`) before its faults are installed —
    replica *i*'s stats then equal ``Machine(replica_configs[i],
    workload, faults=fault_lists[i]).run(max_cycles)``.  The caller
    (``ExperimentEngine._batch_key``) is responsible for only grouping
    configs whose differences are declared invariant.

    Raises :class:`UnforkableMachineError` if the machine cannot be
    forked (pending closure callbacks) and ``ImportError`` without
    numpy; callers fall back to scalar runs in both cases.
    """
    if _np is None:
        raise ImportError("numpy is required for the vectorized "
                          "campaign executor (pip install repro[vector])")
    n = len(fault_lists)
    if n == 0:
        return BatchResult([], BatchReport())
    if forced_spills is not None and len(forced_spills) != n:
        raise ValueError(f"forced_spills has {len(forced_spills)} "
                         f"entries for {n} replicas")
    if replica_configs is not None and len(replica_configs) != n:
        raise ValueError(f"replica_configs has {len(replica_configs)} "
                         f"entries for {n} replicas")

    def config_of(index: int) -> MachineConfig:
        return config if replica_configs is None \
            else replica_configs[index]

    # -- batch schedule: (N,)-shaped replica state ----------------------
    first_detect = _np.array([
        _first_detect(faults, config_of(i).detection_latency)
        for i, faults in enumerate(fault_lists)])
    forced = _np.full(n, _np.inf)
    if forced_spills is not None:
        for i, at in enumerate(forced_spills):
            if at is not None:
                forced[i] = at
    # A forced spill past the replica's first fault would fork a
    # machine whose fault already fired in the leader — clamp to the
    # fault: spilling *at* the detection time is the normal path.
    divergence = _np.minimum(first_detect, forced)

    # Cost model: a fork only pays when the shared prefix beats the
    # deep-copy.  Instruction counts lower-bound the run length (1-IPC
    # cores only ever stall longer), so the threshold is conservative.
    # Forced spills always fork — they exist to exercise the fork
    # machinery at arbitrary points.
    run_estimate = max((trace.instruction_count()
                        for trace in workload.traces), default=1)
    threshold = SPILL_THRESHOLD_FRACTION * run_estimate
    finite = _np.isfinite(divergence)
    direct = finite & (divergence < threshold) & _np.isinf(forced)

    report = BatchReport(width=n,
                         divergence=[float(t) for t in divergence],
                         record_histogram=_record_histogram(workload))
    results: list[Optional[SimStats]] = [None] * n

    for index in _np.nonzero(direct)[0]:
        results[index] = Machine(config_of(index), workload,
                                 faults=list(fault_lists[index])
                                 ).run(max_cycles)
        report.spilled += 1
        report.direct_runs += 1

    fork_order = [int(i) for i in _np.argsort(divergence, kind="stable")
                  if finite[i] and not direct[i]]
    served = [i for i in range(n)
              if divergence[i] == float("inf")]
    leader = None
    if fork_order or served:
        leader = Machine(config, workload)
        leader.start(max_cycles)
    for position, index in enumerate(fork_order):
        at = float(divergence[index])
        if not leader.finished:
            leader.advance(pause_at=at)
        # The last forked replica of a batch with nobody left to serve
        # takes over the leader in place: forking would deep-copy a
        # machine only to abandon the original.
        last = position == len(fork_order) - 1 and not served
        replica = leader if last else leader.fork()
        rc = config_of(index)
        if rc is not config:
            replica.rebind_config(rc)
        replica.install_faults(list(fault_lists[index]))
        replica.advance()
        results[index] = replica.finalize()
        report.spilled += 1
        if forced[index] < first_detect[index]:
            report.forced_spills += 1

    if served:
        # Fault-free replicas: the leader *is* their run.  Serve the
        # first directly and deep-copy for the rest so no two RunKeys
        # alias one mutable SimStats.  A served replica with its own
        # (invariant-field) config gets it stamped into the stats — the
        # run itself is identical, but ``SimStats.config`` equality with
        # the scalar twin is part of the bit-identity contract.
        if not leader.finished:
            leader.advance()
        base = leader.finalize()
        results[served[0]] = base
        for i in served[1:]:
            results[i] = copy.deepcopy(base)
        for i in served:
            rc = config_of(i)
            if rc is not config:
                results[i].config = rc
        report.leader_served = len(served)

    # Shared-prefix accounting: each *forked* replica saved its
    # divergence prefix t_i, each leader-served replica its whole run;
    # direct runs shared nothing and the one leader walk that actually
    # happened is subtracted.
    forked_prefix = float(sum(divergence[i] for i in fork_order))
    if served:
        walked = results[served[0]].runtime
        shared = forked_prefix + len(served) * walked - walked
    else:
        walked = float(max((divergence[i] for i in fork_order),
                           default=0.0))
        shared = forked_prefix - walked
    report.shared_prefix_cycles = max(0.0, shared)
    return BatchResult(list(results), report)
