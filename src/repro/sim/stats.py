"""Statistics collection for simulation runs.

Every stall cycle is attributed to one of the four categories of the
Figure 6.5 breakdown (WBDelay, WBImbalanceDelay, SyncDelay, IPCDelay),
and every checkpoint/rollback becomes an event record so the harness can
compute interaction-set sizes (Figures 6.1/6.2), recovery latencies
(Figure 6.6c) and effective checkpoint intervals (Figure 6.7).

Fault campaigns aggregate many seeded runs: :func:`summarize_campaign`
folds a list of :class:`SimStats` into a :class:`CampaignSummary` with
work-lost cycles, rollback-count / IREC-size / recovery-latency
distributions and availability (useful core-cycles over total).

Useful-work accounting: every core-cycle of a run lands in exactly one
of four buckets (:meth:`SimStats.cycle_buckets`):

* ``useful`` — committed execution, application synchronization and
  end-of-run idle time; the work checkpointing exists to preserve,
* ``checkpoint_overhead`` — signature/Dep-set maintenance, checkpoint
  coordination syncs, log writebacks (own and other members'), demand
  misses queued behind checkpoint traffic, and protocol back-off waits,
* ``rollback_waste`` — discarded execution (net of the checkpoint
  overhead inside the discarded span, which stays in its own bucket),
* ``recovery`` — the rollback machinery itself (invalidate + restore).

``useful + checkpoint_overhead + rollback_waste + recovery ==
runtime * n_cores`` holds *exactly* on every run (the machine asserts
it at finalize when ``check_coherence`` is set), and
:meth:`SimStats.effective_availability` = useful / total is the
campaign metric that, unlike :meth:`SimStats.availability`, also
charges the checkpointing work itself against the scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.params import MachineConfig, Scheme


@dataclass(slots=True)
class CheckpointEvent:
    """One checkpoint of a set of processors."""

    time: float
    initiator: int
    kind: str                 # "interval" | "global" | "barrier" | "io"
    size: int                 # |ICHK| including the initiator
    genuine_size: int         # |ICHK| had the WSIG been exact
    dirty_lines: int          # lines written back
    duration: float           # sync start -> writebacks complete


@dataclass(slots=True)
class RollbackEvent:
    """One recovery: a set of processors rolled back together."""

    detect_time: float
    initiator: int
    size: int                 # |IREC|
    latency: float            # detection -> execution resumes
    log_entries: int          # entries undone
    max_depth: int            # checkpoint intervals unwound (domino bound)
    wasted_cycles: float      # work discarded across the set


@dataclass(slots=True)
class CoreStats:
    """Per-core cycle accounting."""

    busy: float = 0.0             # executing instructions / memory ops
    sync_wait: float = 0.0        # application locks and barriers
    wb_delay: float = 0.0         # stalled on own checkpoint writebacks
    wb_imbalance: float = 0.0     # waiting for other checkpointers' WBs
    ckpt_sync: float = 0.0        # checkpoint coordination cost
    ipc_delay: float = 0.0        # demand misses queued behind ckpt traffic
    depset_stall: float = 0.0     # out of Dep register sets (Section 4.2)
    ckpt_backoff: float = 0.0     # protocol retry / back-off waits
    stall_overhang: float = 0.0   # stall cycles charged past end-of-run
                                  # or a rollback cut (netted out of the
                                  # overhead bucket, kept in the gross
                                  # per-category counters above)
    recovery: float = 0.0         # rollback machinery (invalidate+restore)
    rollback_waste: float = 0.0   # discarded execution net of ckpt stalls
    instructions: int = 0
    n_checkpoints: int = 0
    end_time: float = 0.0
    last_ckpt_time: float = 0.0
    ckpt_gap_sum: float = 0.0     # for the Fig 6.7 effective interval
    ckpt_gap_count: int = 0

    @property
    def ckpt_overhead_cycles(self) -> float:
        """Net checkpoint-overhead cycles of this core: the gross stall
        categories minus the windows that displaced no execution (the
        overhang past end-of-run / a rollback cut)."""
        return (self.wb_delay + self.wb_imbalance + self.ckpt_sync +
                self.ipc_delay + self.depset_stall + self.ckpt_backoff -
                self.stall_overhang)

    @property
    def mean_ckpt_gap(self) -> float:
        if self.ckpt_gap_count == 0:
            return 0.0
        return self.ckpt_gap_sum / self.ckpt_gap_count


@dataclass
class SimStats:
    """Everything a run produces; built by :class:`repro.sim.Machine`."""

    config: MachineConfig
    scheme: Scheme
    workload: str
    runtime: float = 0.0
    total_instructions: int = 0
    cores: list[CoreStats] = field(default_factory=list)
    checkpoints: list[CheckpointEvent] = field(default_factory=list)
    rollbacks: list[RollbackEvent] = field(default_factory=list)
    # Traffic / storage / structure counters.
    base_messages: int = 0
    dep_messages: int = 0
    protocol_messages: int = 0
    log_bytes: int = 0
    max_interval_log_bytes: int = 0
    wsig_false_positives: int = 0
    wsig_tests: int = 0
    busy_retries: int = 0
    declines: int = 0
    nacks: int = 0
    # Fault accounting: every injected fault is either delivered to the
    # scheme (producing a rollback) or recorded as undelivered (its
    # detection time fell after the application finished).
    injected_faults: int = 0
    undelivered_faults: int = 0
    energy_events: dict[str, int] = field(default_factory=dict)
    energy_joules: float = 0.0
    baseline_energy_joules: float = 0.0
    # Memory-system counters (all invariant under REPRO_FASTPATH: the
    # fast path batches the same bumps the slow path makes inline, and
    # eligibility is counted identically in both modes).
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    fastpath_loads: int = 0
    fastpath_stores: int = 0
    fastpath_epoch_bumps: int = 0
    invalidations: int = 0
    mem_accesses: int = 0

    # -- derived quantities --------------------------------------------------
    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def fastpath_hit_rate(self) -> float:
        """Fraction of memory accesses serviceable on the fast path."""
        if self.mem_accesses == 0:
            return 0.0
        return (self.fastpath_loads + self.fastpath_stores) / self.mem_accesses

    def overhead_vs(self, baseline: "SimStats") -> float:
        """Checkpointing overhead as a fraction of error-free runtime."""
        if baseline.runtime <= 0:
            return 0.0
        return (self.runtime - baseline.runtime) / baseline.runtime

    def breakdown(self) -> dict[str, float]:
        """Total stall cycles per Figure 6.5 category, summed over cores."""
        out = {"WBDelay": 0.0, "WBImbalanceDelay": 0.0,
               "SyncDelay": 0.0, "IPCDelay": 0.0}
        for core in self.cores:
            out["WBDelay"] += core.wb_delay
            out["WBImbalanceDelay"] += core.wb_imbalance
            out["SyncDelay"] += core.ckpt_sync + core.depset_stall
            out["IPCDelay"] += core.ipc_delay
        return out

    def mean_ichk_fraction(self, kinds: tuple[str, ...] = ("interval", "io")
                           ) -> float:
        """Average |ICHK| / n_cores over checkpoint events (Fig 6.1/6.2)."""
        sizes = [e.size for e in self.checkpoints if e.kind in kinds]
        if not sizes:
            return 0.0
        return sum(sizes) / (len(sizes) * self.n_cores)

    def mean_genuine_ichk_fraction(
            self, kinds: tuple[str, ...] = ("interval", "io")) -> float:
        sizes = [e.genuine_size for e in self.checkpoints
                 if e.kind in kinds]
        if not sizes:
            return 0.0
        return sum(sizes) / (len(sizes) * self.n_cores)

    def ichk_fp_increase_percent(self) -> float:
        """% ICHK growth caused by WSIG false positives (Table 6.1)."""
        genuine = self.mean_genuine_ichk_fraction()
        actual = self.mean_ichk_fraction()
        if genuine <= 0:
            return 0.0
        return 100.0 * (actual - genuine) / genuine

    def dep_message_percent(self) -> float:
        """Extra coherence messages over the base protocol (Table 6.1)."""
        if self.base_messages == 0:
            return 0.0
        return 100.0 * self.dep_messages / self.base_messages

    def mean_recovery_latency(self) -> float:
        if not self.rollbacks:
            if self.undelivered_faults:
                raise RuntimeError(
                    f"{self.workload}/{self.scheme.value}: "
                    f"{self.undelivered_faults} injected fault(s) were "
                    f"never delivered (the application finished before "
                    f"their detection time); refusing to report a "
                    f"0-cycle recovery latency")
            return 0.0
        return sum(r.latency for r in self.rollbacks) / len(self.rollbacks)

    def work_lost_cycles(self) -> float:
        """Cycles of discarded execution across all rollbacks."""
        return sum(r.wasted_cycles for r in self.rollbacks)

    def availability(self) -> float:
        """Fault-centric availability: 1 - (lost cycles / total cycles).

        Lost cycles are the work discarded by rollbacks plus the cycles
        the recovery machinery itself kept cores away from execution.
        Checkpoint overhead is *not* charged here — see
        :meth:`effective_availability` for the metric that does.
        """
        total = self.total_cycles
        if total <= 0:
            return 1.0
        lost = self.work_lost_cycles() + sum(c.recovery for c in self.cores)
        return max(0.0, 1.0 - lost / total)

    # -- useful-work accounting ---------------------------------------------
    @property
    def total_cycles(self) -> float:
        """Machine core-cycles of the run: runtime x processor count."""
        return self.runtime * self.n_cores

    def _quantize(self, value: float) -> float:
        """Snap a bucket total onto ``total_cycles``'s ulp grid.

        On that grid every bucket, every partial sum and the residual
        are exactly representable doubles (magnitude / quantum < 2^53),
        so ``useful + checkpoint_overhead + rollback_waste + recovery
        == total_cycles`` holds *exactly* in plain float arithmetic —
        no correctly-rounded-sum tie can put the partition one ulp off.
        The snap moves a bucket by at most half an ulp of the total
        (~1e-10 cycles at campaign scale): measurement dust.
        """
        quantum = math.ulp(self.total_cycles)
        if quantum <= 0.0 or not math.isfinite(value / quantum):
            return value
        return round(value / quantum) * quantum

    def checkpoint_overhead_cycles(self) -> float:
        """Cycles spent running the checkpointing machinery itself:
        coordination syncs, log writebacks (own and other members'),
        Dep-set/signature stalls, demand misses queued behind checkpoint
        traffic, and protocol back-off waits."""
        return self._quantize(
            math.fsum(c.ckpt_overhead_cycles for c in self.cores))

    def rollback_waste_cycles(self) -> float:
        """Discarded-execution cycles, net of the checkpoint-overhead
        cycles inside the discarded spans (those stay in the overhead
        bucket so no cycle is charged twice).  The gross span total is
        :meth:`work_lost_cycles`."""
        return self._quantize(
            math.fsum(c.rollback_waste for c in self.cores))

    def recovery_cycles(self) -> float:
        """Cycles the rollback machinery kept cores from executing."""
        return self._quantize(
            math.fsum(c.recovery for c in self.cores))

    def useful_cycles(self) -> float:
        """Core-cycles of useful progress: committed execution,
        application synchronization and end-of-run idle — everything the
        checkpointing/rollback machinery did not consume.  The residual
        of the other three buckets; on the shared ulp grid the
        subtraction is exact, so the four buckets partition
        ``total_cycles`` identically, not approximately."""
        return (self.total_cycles - self.checkpoint_overhead_cycles() -
                self.rollback_waste_cycles() - self.recovery_cycles())

    def cycle_buckets(self) -> dict[str, float]:
        """The four-way cycle partition of the run (see module docs).

        ``useful + checkpoint_overhead + rollback_waste + recovery``
        equals ``total_cycles`` exactly; every bucket is non-negative.
        """
        return {
            "useful": self.useful_cycles(),
            "checkpoint_overhead": self.checkpoint_overhead_cycles(),
            "rollback_waste": self.rollback_waste_cycles(),
            "recovery": self.recovery_cycles(),
        }

    def effective_availability(self) -> float:
        """Useful core-cycles over total core-cycles.

        Stricter than :meth:`availability`: the checkpointing work
        Rebound exists to minimize (signature maintenance, barrier and
        writeback stalls, log writes, checkpoint commits, back-offs) is
        charged as overhead rather than counted as progress, so
        ``effective_availability() <= availability()`` on every run.
        """
        total = self.total_cycles
        if total <= 0:
            return 1.0
        return self.useful_cycles() / total

    def verify_cycle_accounting(self) -> None:
        """Raise if the cycle buckets violate the accounting invariants
        (exact partition, non-negative buckets, availability ordering).
        Cheap; the machine runs it at finalize under
        ``check_coherence`` so every golden-checked run is audited.
        """
        buckets = self.cycle_buckets()
        for name, value in buckets.items():
            if not value >= 0.0:
                raise AssertionError(
                    f"{self.workload}/{self.scheme.value}: cycle bucket "
                    f"{name} is negative ({value!r}); some cycles were "
                    f"charged twice across buckets")
        total = math.fsum(buckets.values())
        if total != self.total_cycles:
            raise AssertionError(
                f"{self.workload}/{self.scheme.value}: cycle buckets sum "
                f"to {total!r}, not total_cycles={self.total_cycles!r}")
        effective = self.effective_availability()
        raw = self.availability()
        # The two metrics are derived through different float paths, so
        # an overhead-free run can land one ulp apart; anything beyond
        # rounding noise is a real double-charge.
        ordered = (0.0 <= effective <= 1.0 and raw <= 1.0 and
                   (effective <= raw or
                    math.isclose(effective, raw, rel_tol=1e-12)))
        if not ordered:
            raise AssertionError(
                f"{self.workload}/{self.scheme.value}: availability "
                f"ordering violated (effective={effective!r}, "
                f"raw={raw!r})")

    def mean_effective_ckpt_interval(self) -> float:
        """Average time between a core's consecutive checkpoints (Fig 6.7)."""
        gaps = [c.mean_ckpt_gap for c in self.cores if c.ckpt_gap_count > 0]
        if not gaps:
            return 0.0
        return sum(gaps) / len(gaps)

    def max_rollback_depth(self) -> int:
        return max((r.max_depth for r in self.rollbacks), default=0)

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"workload={self.workload} scheme={self.scheme.value} "
            f"cores={self.n_cores}",
            f"runtime={self.runtime:,.0f} cycles  "
            f"instructions={self.total_instructions:,}",
            f"checkpoints={len(self.checkpoints)} "
            f"mean ICHK={100 * self.mean_ichk_fraction():.1f}% "
            f"rollbacks={len(self.rollbacks)}",
            f"messages base={self.base_messages} dep={self.dep_messages} "
            f"(+{self.dep_message_percent():.1f}%)",
            f"log={self.log_bytes / 1e6:.2f} MB total",
        ]
        if self.injected_faults:
            lines.append(
                f"faults={self.injected_faults} "
                f"(undelivered={self.undelivered_faults}) "
                f"availability={100 * self.availability():.2f}% "
                f"effective={100 * self.effective_availability():.2f}%")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# fault-campaign aggregation
# ---------------------------------------------------------------------------

def _percentile_sorted(ordered: list[float], q: float) -> float:
    """:func:`percentile` on an already *sorted* list (no copy, no
    re-sort) — the indexing half shared by the one-shot function and the
    sort-once cache in :class:`CampaignSummary`."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not ordered:
        return math.nan
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (q in [0, 100]).

    An empty input has no percentiles: the result is ``math.nan``, so a
    fault-free campaign cell can never masquerade as a 0-cycle recovery
    (callers display it explicitly, e.g. as ``-``).  A ``q`` outside
    [0, 100] is a caller bug and raises.
    """
    return _percentile_sorted(sorted(values), q)


@dataclass
class CampaignSummary:
    """Distributions over the seeded runs of one fault campaign."""

    n_runs: int = 0
    injected_faults: int = 0
    delivered_faults: int = 0
    undelivered_faults: int = 0
    rollback_counts: list[int] = field(default_factory=list)   # per run
    irec_sizes: list[int] = field(default_factory=list)        # per rollback
    recovery_latencies: list[float] = field(default_factory=list)
    work_lost: list[float] = field(default_factory=list)       # per run
    availabilities: list[float] = field(default_factory=list)  # per run
    effective_availabilities: list[float] = field(default_factory=list)
    checkpoint_overheads: list[float] = field(default_factory=list)

    def add(self, stats: "SimStats") -> None:
        """Fold one run into the distributions (incremental form of
        :func:`summarize_campaign` — the campaign service folds results
        in as they stream off the engine, so a cancelled or still-
        running job summarizes exactly the runs that have landed)."""
        self.n_runs += 1
        self.injected_faults += stats.injected_faults
        self.undelivered_faults += stats.undelivered_faults
        self.delivered_faults += (stats.injected_faults -
                                  stats.undelivered_faults)
        self.rollback_counts.append(len(stats.rollbacks))
        self.irec_sizes.extend(r.size for r in stats.rollbacks)
        self.recovery_latencies.extend(r.latency for r in stats.rollbacks)
        self.work_lost.append(stats.work_lost_cycles())
        self.availabilities.append(stats.availability())
        self.effective_availabilities.append(
            stats.effective_availability())
        self.checkpoint_overheads.append(
            stats.checkpoint_overhead_cycles())

    # -- derived -------------------------------------------------------------
    @property
    def n_rollbacks(self) -> int:
        return sum(self.rollback_counts)

    @property
    def mean_rollbacks_per_run(self) -> float:
        return self.n_rollbacks / self.n_runs if self.n_runs else 0.0

    @property
    def mean_irec_size(self) -> float:
        if not self.irec_sizes:
            return 0.0
        return sum(self.irec_sizes) / len(self.irec_sizes)

    @property
    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def recovery_latency_percentile(self, q: float) -> float:
        """``math.nan`` when no recovery happened in the campaign.

        The campaign tables query several percentiles (p50/p95/p99 ...)
        of the same distribution; the latencies are sorted *once* and
        each query only indexes — the cache invalidates itself if more
        runs are folded in after the first query (the list only ever
        grows, so its length is the version).
        """
        cached = self.__dict__.get("_recovery_sorted")
        if cached is None or cached[0] != len(self.recovery_latencies):
            cached = (len(self.recovery_latencies),
                      sorted(self.recovery_latencies))
            self.__dict__["_recovery_sorted"] = cached
        return _percentile_sorted(cached[1], q)

    @property
    def mean_work_lost(self) -> float:
        return sum(self.work_lost) / self.n_runs if self.n_runs else 0.0

    @property
    def mean_availability(self) -> float:
        if not self.availabilities:
            return 1.0
        return sum(self.availabilities) / len(self.availabilities)

    @property
    def mean_effective_availability(self) -> float:
        """Useful-work availability (checkpoint overhead charged too);
        <= :attr:`mean_availability` by construction."""
        if not self.effective_availabilities:
            return 1.0
        return (sum(self.effective_availabilities) /
                len(self.effective_availabilities))

    @property
    def mean_checkpoint_overhead(self) -> float:
        """Mean checkpoint-overhead core-cycles per run."""
        if not self.checkpoint_overheads:
            return 0.0
        return sum(self.checkpoint_overheads) / len(self.checkpoint_overheads)


def summarize_campaign(runs: Iterable[SimStats]) -> CampaignSummary:
    """Fold per-seed :class:`SimStats` into campaign distributions."""
    summary = CampaignSummary()
    for stats in runs:
        summary.add(stats)
    return summary
