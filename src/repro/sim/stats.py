"""Statistics collection for simulation runs.

Every stall cycle is attributed to one of the four categories of the
Figure 6.5 breakdown (WBDelay, WBImbalanceDelay, SyncDelay, IPCDelay),
and every checkpoint/rollback becomes an event record so the harness can
compute interaction-set sizes (Figures 6.1/6.2), recovery latencies
(Figure 6.6c) and effective checkpoint intervals (Figure 6.7).

Fault campaigns aggregate many seeded runs: :func:`summarize_campaign`
folds a list of :class:`SimStats` into a :class:`CampaignSummary` with
work-lost cycles, rollback-count / IREC-size / recovery-latency
distributions and availability (useful core-cycles over total).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.params import MachineConfig, Scheme


@dataclass(slots=True)
class CheckpointEvent:
    """One checkpoint of a set of processors."""

    time: float
    initiator: int
    kind: str                 # "interval" | "global" | "barrier" | "io"
    size: int                 # |ICHK| including the initiator
    genuine_size: int         # |ICHK| had the WSIG been exact
    dirty_lines: int          # lines written back
    duration: float           # sync start -> writebacks complete


@dataclass(slots=True)
class RollbackEvent:
    """One recovery: a set of processors rolled back together."""

    detect_time: float
    initiator: int
    size: int                 # |IREC|
    latency: float            # detection -> execution resumes
    log_entries: int          # entries undone
    max_depth: int            # checkpoint intervals unwound (domino bound)
    wasted_cycles: float      # work discarded across the set


@dataclass(slots=True)
class CoreStats:
    """Per-core cycle accounting."""

    busy: float = 0.0             # executing instructions / memory ops
    sync_wait: float = 0.0        # application locks and barriers
    wb_delay: float = 0.0         # stalled on own checkpoint writebacks
    wb_imbalance: float = 0.0     # waiting for other checkpointers' WBs
    ckpt_sync: float = 0.0        # checkpoint coordination cost
    ipc_delay: float = 0.0        # demand misses queued behind ckpt traffic
    depset_stall: float = 0.0     # out of Dep register sets (Section 4.2)
    recovery: float = 0.0         # rollback machinery (invalidate+restore)
    instructions: int = 0
    n_checkpoints: int = 0
    end_time: float = 0.0
    last_ckpt_time: float = 0.0
    ckpt_gap_sum: float = 0.0     # for the Fig 6.7 effective interval
    ckpt_gap_count: int = 0

    @property
    def ckpt_overhead_cycles(self) -> float:
        return (self.wb_delay + self.wb_imbalance + self.ckpt_sync +
                self.ipc_delay + self.depset_stall)

    @property
    def mean_ckpt_gap(self) -> float:
        if self.ckpt_gap_count == 0:
            return 0.0
        return self.ckpt_gap_sum / self.ckpt_gap_count


@dataclass
class SimStats:
    """Everything a run produces; built by :class:`repro.sim.Machine`."""

    config: MachineConfig
    scheme: Scheme
    workload: str
    runtime: float = 0.0
    total_instructions: int = 0
    cores: list[CoreStats] = field(default_factory=list)
    checkpoints: list[CheckpointEvent] = field(default_factory=list)
    rollbacks: list[RollbackEvent] = field(default_factory=list)
    # Traffic / storage / structure counters.
    base_messages: int = 0
    dep_messages: int = 0
    protocol_messages: int = 0
    log_bytes: int = 0
    max_interval_log_bytes: int = 0
    wsig_false_positives: int = 0
    wsig_tests: int = 0
    busy_retries: int = 0
    declines: int = 0
    nacks: int = 0
    # Fault accounting: every injected fault is either delivered to the
    # scheme (producing a rollback) or recorded as undelivered (its
    # detection time fell after the application finished).
    injected_faults: int = 0
    undelivered_faults: int = 0
    energy_events: dict[str, int] = field(default_factory=dict)
    energy_joules: float = 0.0
    baseline_energy_joules: float = 0.0

    # -- derived quantities --------------------------------------------------
    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def overhead_vs(self, baseline: "SimStats") -> float:
        """Checkpointing overhead as a fraction of error-free runtime."""
        if baseline.runtime <= 0:
            return 0.0
        return (self.runtime - baseline.runtime) / baseline.runtime

    def breakdown(self) -> dict[str, float]:
        """Total stall cycles per Figure 6.5 category, summed over cores."""
        out = {"WBDelay": 0.0, "WBImbalanceDelay": 0.0,
               "SyncDelay": 0.0, "IPCDelay": 0.0}
        for core in self.cores:
            out["WBDelay"] += core.wb_delay
            out["WBImbalanceDelay"] += core.wb_imbalance
            out["SyncDelay"] += core.ckpt_sync + core.depset_stall
            out["IPCDelay"] += core.ipc_delay
        return out

    def mean_ichk_fraction(self, kinds: tuple[str, ...] = ("interval", "io")
                           ) -> float:
        """Average |ICHK| / n_cores over checkpoint events (Fig 6.1/6.2)."""
        sizes = [e.size for e in self.checkpoints if e.kind in kinds]
        if not sizes:
            return 0.0
        return sum(sizes) / (len(sizes) * self.n_cores)

    def mean_genuine_ichk_fraction(
            self, kinds: tuple[str, ...] = ("interval", "io")) -> float:
        sizes = [e.genuine_size for e in self.checkpoints
                 if e.kind in kinds]
        if not sizes:
            return 0.0
        return sum(sizes) / (len(sizes) * self.n_cores)

    def ichk_fp_increase_percent(self) -> float:
        """% ICHK growth caused by WSIG false positives (Table 6.1)."""
        genuine = self.mean_genuine_ichk_fraction()
        actual = self.mean_ichk_fraction()
        if genuine <= 0:
            return 0.0
        return 100.0 * (actual - genuine) / genuine

    def dep_message_percent(self) -> float:
        """Extra coherence messages over the base protocol (Table 6.1)."""
        if self.base_messages == 0:
            return 0.0
        return 100.0 * self.dep_messages / self.base_messages

    def mean_recovery_latency(self) -> float:
        if not self.rollbacks:
            if self.undelivered_faults:
                raise RuntimeError(
                    f"{self.workload}/{self.scheme.value}: "
                    f"{self.undelivered_faults} injected fault(s) were "
                    f"never delivered (the application finished before "
                    f"their detection time); refusing to report a "
                    f"0-cycle recovery latency")
            return 0.0
        return sum(r.latency for r in self.rollbacks) / len(self.rollbacks)

    def work_lost_cycles(self) -> float:
        """Cycles of discarded execution across all rollbacks."""
        return sum(r.wasted_cycles for r in self.rollbacks)

    def availability(self) -> float:
        """Useful core-cycles over total core-cycles (campaign metric).

        Lost cycles are the work discarded by rollbacks plus the cycles
        the recovery machinery itself kept cores away from execution.
        """
        total = self.runtime * self.n_cores
        if total <= 0:
            return 1.0
        lost = self.work_lost_cycles() + sum(c.recovery for c in self.cores)
        return max(0.0, 1.0 - lost / total)

    def mean_effective_ckpt_interval(self) -> float:
        """Average time between a core's consecutive checkpoints (Fig 6.7)."""
        gaps = [c.mean_ckpt_gap for c in self.cores if c.ckpt_gap_count > 0]
        if not gaps:
            return 0.0
        return sum(gaps) / len(gaps)

    def max_rollback_depth(self) -> int:
        return max((r.max_depth for r in self.rollbacks), default=0)

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"workload={self.workload} scheme={self.scheme.value} "
            f"cores={self.n_cores}",
            f"runtime={self.runtime:,.0f} cycles  "
            f"instructions={self.total_instructions:,}",
            f"checkpoints={len(self.checkpoints)} "
            f"mean ICHK={100 * self.mean_ichk_fraction():.1f}% "
            f"rollbacks={len(self.rollbacks)}",
            f"messages base={self.base_messages} dep={self.dep_messages} "
            f"(+{self.dep_message_percent():.1f}%)",
            f"log={self.log_bytes / 1e6:.2f} MB total",
        ]
        if self.injected_faults:
            lines.append(
                f"faults={self.injected_faults} "
                f"(undelivered={self.undelivered_faults}) "
                f"availability={100 * self.availability():.2f}%")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# fault-campaign aggregation
# ---------------------------------------------------------------------------

def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (q in [0, 100]).

    An empty input has no percentiles: the result is ``math.nan``, so a
    fault-free campaign cell can never masquerade as a 0-cycle recovery
    (callers display it explicitly, e.g. as ``-``).  A ``q`` outside
    [0, 100] is a caller bug and raises.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


@dataclass
class CampaignSummary:
    """Distributions over the seeded runs of one fault campaign."""

    n_runs: int = 0
    injected_faults: int = 0
    delivered_faults: int = 0
    undelivered_faults: int = 0
    rollback_counts: list[int] = field(default_factory=list)   # per run
    irec_sizes: list[int] = field(default_factory=list)        # per rollback
    recovery_latencies: list[float] = field(default_factory=list)
    work_lost: list[float] = field(default_factory=list)       # per run
    availabilities: list[float] = field(default_factory=list)  # per run

    # -- derived -------------------------------------------------------------
    @property
    def n_rollbacks(self) -> int:
        return sum(self.rollback_counts)

    @property
    def mean_rollbacks_per_run(self) -> float:
        return self.n_rollbacks / self.n_runs if self.n_runs else 0.0

    @property
    def mean_irec_size(self) -> float:
        if not self.irec_sizes:
            return 0.0
        return sum(self.irec_sizes) / len(self.irec_sizes)

    @property
    def mean_recovery_latency(self) -> float:
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)

    def recovery_latency_percentile(self, q: float) -> float:
        """``math.nan`` when no recovery happened in the campaign."""
        return percentile(self.recovery_latencies, q)

    @property
    def mean_work_lost(self) -> float:
        return sum(self.work_lost) / self.n_runs if self.n_runs else 0.0

    @property
    def mean_availability(self) -> float:
        if not self.availabilities:
            return 1.0
        return sum(self.availabilities) / len(self.availabilities)


def summarize_campaign(runs: Iterable[SimStats]) -> CampaignSummary:
    """Fold per-seed :class:`SimStats` into campaign distributions."""
    summary = CampaignSummary()
    for stats in runs:
        summary.n_runs += 1
        summary.injected_faults += stats.injected_faults
        summary.undelivered_faults += stats.undelivered_faults
        summary.delivered_faults += (stats.injected_faults -
                                     stats.undelivered_faults)
        summary.rollback_counts.append(len(stats.rollbacks))
        summary.irec_sizes.extend(r.size for r in stats.rollbacks)
        summary.recovery_latencies.extend(r.latency for r in stats.rollbacks)
        summary.work_lost.append(stats.work_lost_cycles())
        summary.availabilities.append(stats.availability())
    return summary
