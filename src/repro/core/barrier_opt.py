"""The barrier checkpoint optimization (Section 4.2.1).

Global barriers chain every participant into one interaction set
(Figure 4.2b), so a checkpoint right after a barrier is effectively
global.  The optimization takes that checkpoint *proactively at* the
barrier and hides its writebacks behind the barrier's imbalance time:

1. The first processor that completes the barrier's Update section and
   is interested in checkpointing (it has run a reasonable fraction of
   its interval) sends BarCK to all participants.
2. Every participant — including ones already spinning on the flag —
   snapshots its register state, rotates its Dep registers and starts
   writing its dirty lines back in the background while it spins or
   keeps executing toward the barrier.
3. The last arriver may only write the flag after every participant has
   both arrived and finished its writebacks, so processors leave the
   barrier with a tiny ICHK: themselves plus the flag writer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.interconnect import MessageClass
from repro.sim.events import DurableCall
from repro.sim.stats import CheckpointEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rebound_scheme import ReboundScheme
    from repro.sim.cores import Core
    from repro.sim.sync import BarrierState


class BarrierCheckpointCoordinator:
    """Implements the BarCK protocol for a :class:`ReboundScheme`."""

    def __init__(self, scheme: "ReboundScheme"):
        self.scheme = scheme
        self.barck_episodes = 0

    # ------------------------------------------------------------------
    def on_update(self, core: "Core", barrier: "BarrierState",
                  now: float) -> None:
        """A participant finished the barrier's Update section."""
        scheme = self.scheme
        config = scheme.config
        if not barrier.barck_pending:
            threshold = (config.barrier_interest_fraction *
                         config.checkpoint_interval)
            if core.instr_since_ckpt < threshold:
                return  # not interested; a later arriver may still be
            barrier.barck_pending = True
            barrier.barck_initiator = core.pid
            barrier.barck_time = now
            self.barck_episodes += 1
            scheme.machine.network.send(MessageClass.PROTOCOL,
                                        2 * barrier.n)
            # Processors already spinning are forced to participate.
            for pid in list(barrier.arrived):
                if pid != core.pid:
                    self._member_checkpoint(scheme.machine.cores[pid],
                                            barrier, now)
        self._member_checkpoint(core, barrier, now)

    def _member_checkpoint(self, core: "Core", barrier: "BarrierState",
                           now: float) -> None:
        """One participant joins the barrier checkpoint (at its arrival)."""
        scheme = self.scheme
        machine = scheme.machine
        if core.pid in barrier.barck_members:
            return
        # A still-draining previous checkpoint must complete before the
        # core can accept a new checkpoint request (Section 4.1).
        if core.pending_delayed > 0 and core.delayed_ckpt_id is not None:
            scheme._complete_drain(
                core.pid, core.delayed_ckpt_id,
                scheme.delayed_interval_of(core.pid), now)
        dep_file = scheme.files[core.pid]
        interval = dep_file.active.interval_id
        snap = core.take_snapshot(
            now, overhead_mark=scheme._net_overhead_charged(core))
        machine.log.mark_begin(now, core.pid, snap.ckpt_id)
        n_lines = machine.engine.mark_delayed(core.pid)
        core.pending_delayed = n_lines
        core.delayed_ckpt_id = snap.ckpt_id
        if n_lines > 0:
            machine.channels.bg_start()
        dep_file.force_open(now)
        core.instr_since_ckpt = 0
        barrier.barck_members[core.pid] = (snap.ckpt_id, interval,
                                           n_lines, now)

    # ------------------------------------------------------------------
    def release_gate(self, barrier: "BarrierState", now: float) -> float:
        """All arrived: finish the drains, then allow the flag write.

        Per-participant writeback completion is ``max(arrival, BarCK time
        + drain)`` — the drain overlaps either the spin or the remaining
        pre-barrier execution (Figure 4.2c).
        """
        scheme = self.scheme
        machine = scheme.machine
        if not barrier.barck_pending or not barrier.barck_members:
            return now
        config = scheme.config
        t_barck = barrier.barck_time
        release = now
        dirty_total = 0
        gate = not scheme.use_dwb
        for pid, (ckpt_id, interval, n_lines,
                  start) in list(barrier.barck_members.items()):
            core = machine.cores[pid]
            drain = machine.channels.bg_drain_time(n_lines,
                                                   config.dwb_drain_period)
            completion = max(start, t_barck + drain)
            machine.channels.bg_account(start, n_lines,
                                        max(1.0, completion - start))
            core.ckpt_busy_until = max(core.ckpt_busy_until, completion)
            dirty_total += n_lines
            if gate:
                # Without delayed-writeback hardware the flag write must
                # wait for every participant's writebacks — they hide
                # behind the spin / remaining execution (Figure 4.2c).
                scheme._complete_drain(pid, ckpt_id, interval, completion)
                release = max(release, completion)
            else:
                # With DWB support the drain keeps running past the
                # barrier, exactly like an interval checkpoint's
                # (durable, so forked replicas complete their own).
                machine.schedule_call(
                    completion,
                    DurableCall("scheme", "_complete_drain",
                                (pid, ckpt_id, interval)))
        release += config.sync_cycles
        initiator = barrier.barck_initiator
        machine.stats.checkpoints.append(CheckpointEvent(
            time=t_barck,
            initiator=initiator if initiator is not None else -1,
            kind="barrier", size=len(barrier.barck_members),
            genuine_size=len(barrier.barck_members),
            dirty_lines=dirty_total, duration=release - t_barck))
        # The visible critical-path extension lands on the last arriver.
        machine.cores[barrier.arrived[-1]].charge_stall(
            "wb_imbalance", now, release)
        return release
