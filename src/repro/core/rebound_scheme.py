"""Rebound: coordinated local checkpointing (Sections 3 and 4).

The scheme plugs into the coherence engine as its
:class:`~repro.coherence.protocol.DependenceTracker`: every transaction
that crosses processors updates MyProducers / MyConsumers / WSIG.  When
a processor's interval expires (or it is about to perform output I/O) it
builds its Interaction Set for Checkpointing and checkpoints it; on a
fault it builds the Interaction Set for Recovery and rolls it back.
Variants: with/without delayed writebacks, with/without the barrier
optimization (Figure 4.3a).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.barrier_opt import BarrierCheckpointCoordinator
from repro.core.checkpoint_protocol import build_ichk
from repro.core.cluster import ClusterMap
from repro.core.dep_registers import DepRegisterFile
from repro.core.rollback_protocol import build_irec
from repro.core.scheme_base import BaseScheme
from repro.interconnect import MessageClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cores import Core
    from repro.sim.machine import Machine


class ReboundScheme(BaseScheme):
    """Coordinated local checkpointing on directory coherence."""

    enabled = True

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        self.files: list[DepRegisterFile] = []
        self.barrier_coordinator = BarrierCheckpointCoordinator(self)
        self._last_query: Optional[tuple] = None
        self.depset_defers = 0

    def attach(self, machine: "Machine") -> None:
        config = self.config
        self.files = [
            DepRegisterFile(pid, config.n_dep_sets, config.wsig_bits,
                            config.wsig_hashes)
            for pid in range(config.n_cores)
        ]
        # Cluster-granular tracking (Chapter 8): dependences implicate
        # whole clusters of processors; size 1 is the paper's default.
        self.clusters = ClusterMap(config.n_cores, config.dep_cluster_size)

    # ------------------------------------------------------------------
    # DependenceTracker interface (driven by the coherence engine)
    # ------------------------------------------------------------------
    def on_write(self, pid: int, addr: int) -> None:
        self.files[pid].on_write(addr)

    def record_producer(self, consumer: int, producer: int) -> None:
        if self.clusters.trivial:
            self.files[consumer].record_producer(producer)
            return
        # Cluster mode: the bit identifies the producer's whole cluster,
        # and every member of the consumer's cluster records it.
        producer_mask = self.clusters.expand_pid(producer)
        for member in self.clusters.members_of(
                self.clusters.cluster_of(consumer)):
            self.files[member].active.producers |= producer_mask

    def query_writer(self, pid: int, addr: int) -> tuple[bool, bool]:
        claims, genuine, dep = self.files[pid].query_writer(addr)
        self._last_query = (pid, addr, dep)
        return claims, genuine

    def record_consumer(self, producer: int, consumer: int, addr: int,
                        genuine: bool) -> None:
        assert self._last_query is not None
        qpid, qaddr, dep = self._last_query
        assert qpid == producer and qaddr == addr, "query/record mismatch"
        if self.clusters.trivial:
            self.files[producer].record_consumer(dep, consumer, genuine)
        else:
            consumer_mask = self.clusters.expand_pid(consumer)
            dep.consumers |= consumer_mask
            if genuine:
                dep.consumers_genuine |= consumer_mask
        if genuine:
            self.files[consumer].record_producer_genuine(producer)

    def on_line_left_cache(self, pid: int, addr: int, now: float) -> None:
        core = self.machine.cores[pid]
        if core.pending_delayed > 0:
            core.pending_delayed -= 1

    def interval_of(self, pid: int) -> int:
        return self.files[pid].active.interval_id

    def delayed_interval_of(self, pid: int) -> int:
        core = self.machine.cores[pid]
        if core.delayed_ckpt_id is not None:
            return core.delayed_ckpt_id
        return self.interval_of(pid)

    # ------------------------------------------------------------------
    # interval bookkeeping hooks for the shared executor
    # ------------------------------------------------------------------
    def _rotate(self, pid: int, now: float) -> None:
        super()._rotate(pid, now)
        self.files[pid].open_interval(now)

    def _mark_interval_complete(self, pid: int, interval: int,
                                now: float) -> None:
        dep = self.files[pid].set_for_interval(interval)
        if dep is not None:
            dep.ckpt_complete_time = now

    def _drop_dep_state(self, pid: int, ckpt_id: int, now: float) -> None:
        self.files[pid].drop_rolled_back(ckpt_id, now)

    # ------------------------------------------------------------------
    # checkpoint policy
    # ------------------------------------------------------------------
    def post_op(self, core: "Core", now: float) -> None:
        if core.instr_since_ckpt < self.config.checkpoint_interval:
            return
        if now < core.ckpt_busy_until:
            return
        self.initiate_checkpoint(core, now, kind="interval")

    def on_output(self, core: "Core", now: float) -> Optional[float]:
        if now < core.ckpt_busy_until:
            self.nacks += 1
            self.accelerate_drain(core, now)
            self._charge_backoff(core, now, core.ckpt_busy_until)
            core.not_before = max(core.not_before, core.ckpt_busy_until)
            return None
        return self.initiate_checkpoint(core, now, kind="io")

    def initiate_checkpoint(self, core: "Core", now: float,
                            kind: str) -> Optional[float]:
        """Run the distributed checkpoint protocol from ``core``.

        Returns the initiator's resume time, or None when the attempt hit
        a Busy member or a Dep-set shortage and must be retried after a
        back-off (Section 3.3.4's deadlock-avoidance rule).
        """
        result = build_ichk(self, core.pid, now)
        self.declines += result.declines
        if not result.ok:
            # Busy: release everything, back off a random number of
            # cycles, retry later.  A busy member still draining delayed
            # writebacks gets a Nack, which hurries its drain.
            self.busy_retries += 1
            busy_core = self.machine.cores[result.busy_member]
            self.nacks += busy_core.pending_delayed > 0
            self.accelerate_drain(busy_core, now)
            backoff = self.rng.randint(1, self.config.backoff_max)
            self._charge_backoff(core, now, now + backoff)
            core.not_before = max(core.not_before, now + backoff)
            return None
        # Every member rotates to a fresh Dep register set; a member out
        # of sets forces the initiator to wait (the member would stall).
        latency = self.config.detection_latency
        waits = []
        for pid in result.members:
            if not self.files[pid].can_open_interval(now, latency):
                waits.append(self.files[pid].stall_until(latency))
        if waits:
            self.depset_defers += 1
            known = [w for w in waits if w is not None]
            wake = max(known) if known and None not in waits else \
                now + self.rng.randint(1, self.config.backoff_max)
            core.charge_stall("depset_stall", now, wake)
            core.not_before = max(core.not_before, wake)
            return None
        # CK?/Ack/Accept traffic: one round trip per closure wave.
        self.machine.network.send(MessageClass.PROTOCOL,
                                  3 * len(result.members))
        start = now + result.depth * self.config.msg_cycles
        members = [self.machine.cores[pid] for pid in result.members]
        return self._execute_checkpoint(
            members, start, kind=kind, initiator=core.pid,
            genuine_size=len(result.genuine_members))

    # ------------------------------------------------------------------
    # barrier optimization (Section 4.2.1)
    # ------------------------------------------------------------------
    def on_barrier_update(self, core: "Core", barrier, now: float,
                          is_last: bool) -> None:
        if self.config.scheme.barrier_optimization:
            self.barrier_coordinator.on_update(core, barrier, now)

    def barrier_release_gate(self, barrier, now: float) -> float:
        if not self.config.scheme.barrier_optimization:
            return now
        return self.barrier_coordinator.release_gate(barrier, now)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def handle_fault(self, pid: int, detect_time: float) -> None:
        """Roll back the faulting core's Interaction Set for Recovery."""
        result = build_irec(self, pid, detect_time)
        self._execute_rollback(result.targets, detect_time, initiator=pid,
                               protocol_hops=result.depth + 2)

    def finalize(self, stats) -> None:
        super().finalize(stats)
        stats.wsig_tests = sum(
            f.retired_wsig_tests + sum(d.wsig.tests for d in f.sets)
            for f in self.files)
        stats.wsig_false_positives = sum(
            f.retired_wsig_fps + sum(d.wsig.false_positives for d in f.sets)
            for f in self.files)
