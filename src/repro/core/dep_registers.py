"""Dep registers: MyProducers, MyConsumers and the WSIG, with multiple sets.

Each processor owns up to ``n_dep_sets`` (default 4, Figure 4.3a) sets of
Dep registers so it can operate with multiple outstanding checkpoints
(Section 4.2): one active set records the current interval; older sets
stay live until the checkpoint that follows their interval has been
complete for at least the fault-detection latency L, at which point they
are recycled.  A processor that runs out of sets stalls.

MyProducers / MyConsumers are processor bitmasks (bit j = processor j).
Alongside the architectural masks we keep *genuine* masks that exclude
edges created by WSIG false positives; they drive the Table 6.1
statistic and are invisible to the protocol.

Register-state snapshots (trace position, held locks, ...) live with the
core (:class:`repro.sim.cores.CoreSnapshot`); this module only holds the
dependence-tracking hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.signature import WriteSignature


def mask_to_pids(mask: int) -> list[int]:
    """Expand a processor bitmask into a list of PIDs."""
    out, i = [], 0
    while mask:
        if mask & 1:
            out.append(i)
        mask >>= 1
        i += 1
    return out


@dataclass
class DepRegisterSet:
    """One interval's dependence state (a row of Figure 4.1c/d)."""

    interval_id: int
    start_time: float
    wsig: WriteSignature
    producers: int = 0            # bit j: j produced data I consumed
    consumers: int = 0            # bit j: j consumed data I produced
    producers_genuine: int = 0    # excludes Bloom-FP edges (stats only)
    consumers_genuine: int = 0
    # Set when the checkpoint closing this interval fully completed
    # (including delayed writebacks); None while open or draining.
    ckpt_complete_time: Optional[float] = None
    ckpt_started: bool = False

    def clear_interaction(self) -> None:
        self.producers = 0
        self.consumers = 0
        self.producers_genuine = 0
        self.consumers_genuine = 0


class DepRegisterFile:
    """Per-processor Dep register sets."""

    def __init__(self, pid: int, n_sets: int, wsig_bits: int,
                 wsig_hashes: int):
        self.pid = pid
        self.n_sets = n_sets
        self.wsig_bits = wsig_bits
        self.wsig_hashes = wsig_hashes
        self._next_interval = 1
        self.sets: list[DepRegisterSet] = []
        self.stall_events = 0
        self.retired_wsig_tests = 0
        self.retired_wsig_fps = 0
        self.sets.append(self._new_set(0.0))

    # -- set lifecycle ------------------------------------------------------
    def _new_set(self, now: float) -> DepRegisterSet:
        dep = DepRegisterSet(
            self._next_interval, now,
            WriteSignature(self.wsig_bits, self.wsig_hashes))
        self._next_interval += 1
        return dep

    @property
    def active(self) -> DepRegisterSet:
        return self.sets[-1]

    def recycle(self, now: float, detection_latency: float) -> None:
        """Free sets whose closing checkpoint completed >= L cycles ago."""
        while len(self.sets) > 1:
            oldest = self.sets[0]
            done = oldest.ckpt_complete_time
            if done is None or now - done < detection_latency:
                break
            self.retired_wsig_tests += oldest.wsig.tests
            self.retired_wsig_fps += oldest.wsig.false_positives
            self.sets.pop(0)

    def can_open_interval(self, now: float, detection_latency: float) -> bool:
        """True when a fresh Dep set can be allocated right now."""
        self.recycle(now, detection_latency)
        return len(self.sets) < self.n_sets

    def stall_until(self, detection_latency: float) -> Optional[float]:
        """Earliest time a set frees up, or None while the oldest
        checkpoint's writebacks are still in flight (Section 4.2)."""
        oldest = self.sets[0]
        if oldest.ckpt_complete_time is None:
            return None
        return oldest.ckpt_complete_time + detection_latency

    def open_interval(self, now: float) -> DepRegisterSet:
        """Rotate to a fresh Dep set (the instant a checkpoint begins)."""
        assert len(self.sets) < self.n_sets, "out of Dep register sets"
        self.active.ckpt_started = True
        dep = self._new_set(now)
        self.sets.append(dep)
        return dep

    def force_open(self, now: float) -> DepRegisterSet:
        """Open a new interval even when all sets are in use.

        Real hardware stalls; at a barrier checkpoint stalling is not an
        option, so the two oldest sets are merged instead.  The merge is
        conservative (union of producers/consumers/WSIG): it can only
        enlarge future interaction sets, never miss a dependence.
        """
        if len(self.sets) >= self.n_sets:
            oldest = self.sets.pop(0)
            survivor = self.sets[0]
            survivor.producers |= oldest.producers
            survivor.consumers |= oldest.consumers
            survivor.producers_genuine |= oldest.producers_genuine
            survivor.consumers_genuine |= oldest.consumers_genuine
            survivor.wsig.merge(oldest.wsig)
            self.retired_wsig_tests += oldest.wsig.tests
            self.retired_wsig_fps += oldest.wsig.false_positives
            self.stall_events += 1
        return self.open_interval(now)

    def set_for_interval(self, interval_id: int) -> Optional[DepRegisterSet]:
        for dep in self.sets:
            if dep.interval_id == interval_id:
                return dep
        return None

    # -- dependence recording --------------------------------------------------
    def record_producer(self, producer: int) -> None:
        self.active.producers |= 1 << producer

    def record_producer_genuine(self, producer: int) -> None:
        self.active.producers_genuine |= 1 << producer

    def on_write(self, addr: int) -> None:
        self.active.wsig.add(addr)

    def query_writer(self, addr: int
                     ) -> tuple[bool, bool, Optional[DepRegisterSet]]:
        """'Are you the last writer?' across all live WSIGs (Section 4.2).

        Tests newest-first and returns ``(claims, genuine, matching_set)``;
        the caller sets MyConsumers in the matching — conservatively the
        later — interval.
        """
        for dep in reversed(self.sets):
            claims, genuine = dep.wsig.test(addr)
            if claims:
                return True, genuine, dep
        return False, False, None

    def record_consumer(self, dep: DepRegisterSet, consumer: int,
                        genuine: bool) -> None:
        dep.consumers |= 1 << consumer
        if genuine:
            dep.consumers_genuine |= 1 << consumer

    # -- rollback support ---------------------------------------------------------
    def consumers_after(self, interval_id: int) -> tuple[int, int]:
        """OR of MyConsumers over every interval newer than ``interval_id``.

        Returns ``(mask, genuine_mask)`` — the processors that must roll
        back alongside this one (Section 4.2, second event).
        """
        mask = genuine = 0
        for dep in self.sets:
            if dep.interval_id > interval_id:
                mask |= dep.consumers
                genuine |= dep.consumers_genuine
        return mask, genuine

    def drop_rolled_back(self, interval_id: int, now: float) -> None:
        """Discard rolled-back intervals' state and open a fresh one.

        Rolling back clears MyProducers, MyConsumers and the WSIG of the
        undone intervals (Section 3.3.5).  Interval numbering rewinds so
        re-executed intervals keep the invariant ``checkpoint i closes
        interval i`` that the scheme relies on.
        """
        self.sets = [d for d in self.sets if d.interval_id <= interval_id]
        self._next_interval = interval_id + 1
        self.sets.append(self._new_set(now))
