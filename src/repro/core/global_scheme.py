"""Global checkpointing baseline (ReVive-style) and Global_DWB.

All processors checkpoint together at every checkpoint interval: an
interrupt stops everyone, they synchronize, write back every dirty line
(logging old values), synchronize again and resume (Chapter 5).  On a
fault, *all* processors roll back to the last global checkpoint — the
work-wasted and burst-writeback costs that motivate Rebound.

``Global_DWB`` adds the delayed-writebacks optimization: processors
resume right after the first sync and the dirty lines drain in the
background.  The paper shows this alone is not enough (Section 6.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.scheme_base import BaseScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cores import Core
    from repro.sim.machine import Machine


class GlobalScheme(BaseScheme):
    """System-wide checkpoints; no dependence tracking hardware."""

    enabled = False

    #: Fault-free Global execution never consults L: the detection
    #: latency is only read during recovery (``handle_fault`` →
    #: ``latest_safe_snapshot``), lazily through ``self.config``, so a
    #: detection-latency sweep shares one fault-free leader prefix.
    FAULT_FREE_INVARIANT_OVERRIDES = frozenset({"detection_latency"})

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        # Per-core interval counter ("epoch"): checkpoint k closes epoch k.
        self.epochs: list[int] = []
        self.global_busy_until = 0.0

    def attach(self, machine: "Machine") -> None:
        self.epochs = [1] * self.config.n_cores

    # -- interval bookkeeping -------------------------------------------------
    def interval_of(self, pid: int) -> int:
        return self.epochs[pid]

    def delayed_interval_of(self, pid: int) -> int:
        core = self.machine.cores[pid]
        if core.delayed_ckpt_id is not None:
            return core.delayed_ckpt_id
        return self.epochs[pid]

    def _rotate(self, pid: int, now: float) -> None:
        super()._rotate(pid, now)
        self.epochs[pid] += 1

    def _drop_dep_state(self, pid: int, ckpt_id: int, now: float) -> None:
        # Epoch numbering rewinds with the checkpoint ids so re-executed
        # intervals tag their log entries consistently.
        self.epochs[pid] = ckpt_id + 1

    # -- policy ------------------------------------------------------------------
    def post_op(self, core: "Core", now: float) -> None:
        if core.instr_since_ckpt < self.config.checkpoint_interval:
            return
        if now < self.global_busy_until:
            return
        self._global_checkpoint(core, now, kind="global")

    def on_output(self, core: "Core", now: float) -> Optional[float]:
        if now < self.global_busy_until:
            # Previous delayed drain still in flight: hurry it, retry.
            self.nacks += 1
            for other in self.machine.cores:
                self.accelerate_drain(other, now)
            wake = min(self.global_busy_until,
                       now + self.config.backoff_max)
            self._charge_backoff(core, now, wake)
            core.not_before = max(core.not_before, wake)
            return None
        return self._global_checkpoint(core, now, kind="io")

    def _global_checkpoint(self, initiator: "Core", now: float,
                           kind: str) -> float:
        members = list(self.machine.cores)
        resume = self._execute_checkpoint(members, now, kind=kind,
                                          initiator=initiator.pid)
        self.global_busy_until = max(
            c.ckpt_busy_until for c in self.machine.cores)
        return resume

    # -- recovery ------------------------------------------------------------------
    def handle_fault(self, pid: int, detect_time: float) -> None:
        """Roll back every processor to the last safe global checkpoint."""
        targets = {}
        for core in self.machine.cores:
            targets[core.pid] = core.latest_safe_snapshot(
                detect_time, self.config.detection_latency)
        self._execute_rollback(targets, detect_time, initiator=pid,
                               protocol_hops=2)
        self.global_busy_until = 0.0
