"""Cluster-granular dependence tracking (Chapter 8, future work).

As machines grow, per-processor MyProducers/MyConsumers bit vectors and
full-map LW-ID fields get expensive.  The paper's discussion chapter
proposes assigning the Dep registers to *clusters* of processors: each
bit names a cluster, and inside a cluster checkpointing is global.

This module provides the pid<->cluster mask arithmetic; the
:class:`~repro.core.rebound_scheme.ReboundScheme` applies it whenever
``config.dep_cluster_size > 1``.  The coarsening is strictly
conservative: every true dependence is preserved (the whole cluster is
implicated), so correctness arguments are unchanged — the cost is larger
interaction sets, which the ablation benchmark quantifies.
"""

from __future__ import annotations


class ClusterMap:
    """Maps processors to fixed, consecutive clusters of size k."""

    def __init__(self, n_cores: int, cluster_size: int):
        if cluster_size < 1:
            raise ValueError("cluster size must be >= 1")
        self.n_cores = n_cores
        self.cluster_size = cluster_size
        self.n_clusters = -(-n_cores // cluster_size)  # ceil

    def cluster_of(self, pid: int) -> int:
        return pid // self.cluster_size

    def members_of(self, cluster: int) -> list[int]:
        start = cluster * self.cluster_size
        return list(range(start, min(start + self.cluster_size,
                                     self.n_cores)))

    def expand_pid(self, pid: int) -> int:
        """Processor -> bitmask of its whole cluster."""
        mask = 0
        for member in self.members_of(self.cluster_of(pid)):
            mask |= 1 << member
        return mask

    def expand_mask(self, mask: int) -> int:
        """Close a processor bitmask over cluster membership."""
        out = 0
        cluster = 0
        while cluster < self.n_clusters:
            lo = cluster * self.cluster_size
            width = min(self.cluster_size, self.n_cores - lo)
            cluster_mask = ((1 << width) - 1) << lo
            if mask & cluster_mask:
                out |= cluster_mask
            cluster += 1
        return out

    @property
    def trivial(self) -> bool:
        return self.cluster_size == 1
