"""The Write Signature (WSIG): a Bloom filter over written line addresses.

A 512–1024 bit register in each L2 controller encoding every line the
processor wrote (or read exclusively) in the current checkpoint interval
(Section 3.3.2).  Membership tests can return false positives — which
only ever cause extra (conservative) dependences — but never false
negatives.

An exact shadow set is maintained *for statistics only*: the harness uses
it to report the ICHK inflation caused by false positives (Table 6.1,
row 1).  The hardware behaviour is driven exclusively by the Bloom bits.
"""

from __future__ import annotations


def _mix(value: int, salt: int) -> int:
    """Cheap deterministic 64-bit hash (xorshift-multiply)."""
    x = (value ^ (salt * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


#: addr -> OR-mask of its hash positions, shared by every signature with
#: the same geometry (addresses are cache-line numbers, so the working
#: set is small and revisited constantly by all cores).  Bounded so a
#: long-lived process running many workloads doesn't accumulate every
#: app's address space forever; on overflow the dict is cleared and
#: simply recomputes (it is a pure cache).
_MASK_CACHES: dict[tuple[int, int], dict[int, int]] = {}
_MASK_CACHE_LIMIT = 1 << 17


class WriteSignature:
    """Bloom-filter write signature with an exact shadow for statistics."""

    __slots__ = ("n_bits", "n_hashes", "bits", "exact", "tests",
                 "false_positives", "_masks")

    def __init__(self, n_bits: int = 1024, n_hashes: int = 4):
        if n_bits <= 0 or n_bits & (n_bits - 1):
            raise ValueError("wsig_bits must be a positive power of two")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self.bits = 0
        self.exact: set[int] = set()
        self.tests = 0
        self.false_positives = 0
        self._masks = _MASK_CACHES.setdefault((n_bits, n_hashes), {})

    def _positions(self, addr: int):
        mask = self.n_bits - 1
        for salt in range(self.n_hashes):
            yield _mix(addr, salt + 1) & mask

    def _mask(self, addr: int) -> int:
        """The address's n_hashes set bits, folded into one integer."""
        mask = self._masks.get(addr)
        if mask is None:
            mask = 0
            for pos in self._positions(addr):
                mask |= 1 << pos
            if len(self._masks) >= _MASK_CACHE_LIMIT:
                self._masks.clear()
            self._masks[addr] = mask
        return mask

    def add(self, addr: int) -> None:
        self.bits |= self._mask(addr)
        self.exact.add(addr)

    def test(self, addr: int) -> tuple[bool, bool]:
        """Membership test: ``(claims, genuine)``.

        ``claims`` is the hardware answer (Bloom); ``genuine`` is the
        exact-shadow truth.  ``claims and not genuine`` is a false
        positive; ``not claims`` is always genuine-negative (no false
        negatives, asserted by the property tests).
        """
        self.tests += 1
        mask = self._mask(addr)
        claims = self.bits & mask == mask
        genuine = addr in self.exact
        if claims and not genuine:
            self.false_positives += 1
        assert claims or not genuine, "Bloom filter false negative"
        return claims, genuine

    def clear(self) -> None:
        """Cleared at the beginning of every checkpoint interval."""
        self.bits = 0
        self.exact.clear()

    def merge(self, other: "WriteSignature") -> None:
        """Fold another signature in (Dep-set merge; conservative)."""
        self.bits |= other.bits
        self.exact |= other.exact

    @property
    def occupancy(self) -> float:
        """Fraction of bits set (drives the false-positive rate)."""
        return self.bits.bit_count() / self.n_bits

    def __contains__(self, addr: int) -> bool:
        mask = self._mask(addr)
        return self.bits & mask == mask

    def __len__(self) -> int:
        return len(self.exact)
