"""Scheme construction: a string-keyed, pluggable scheme registry.

The registry replaces the old hard-coded if-chain: every checkpointing
scheme — the built-ins behind the :class:`~repro.params.Scheme` enum and
any out-of-tree or experimental scheme — is a named entry mapping the
scheme's identity (``config.scheme.value``) to a builder callable.

Built-ins register themselves at import time by iterating the ``Scheme``
enum members.  Out-of-tree schemes plug in with::

    from repro.core import register_scheme

    tag = register_scheme("my_scheme", MySchemeClass, is_local=True)
    stats = execute_run(RunKey("ocean", 8, tag, 3.0, 1, 40))

``register_scheme`` returns a :class:`~repro.params.SchemeTag` carrying
the policy properties the simulator reads off ``config.scheme``; put the
tag in a ``MachineConfig``/``RunKey`` wherever an enum member would go.
CLI scheme tokens resolve through :func:`resolve_scheme`, so registered
names work in ``--schemes``/``campaign`` arguments too.

Note on process pools: the engine's workers import ``repro`` afresh, so
a scheme registered dynamically in the parent process is unknown to
them.  Register out-of-tree schemes at import time (e.g. from a module
both sides import) or run with ``jobs=1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Union

from repro.core.global_scheme import GlobalScheme
from repro.core.rebound_scheme import ReboundScheme
from repro.core.scheme_base import BaseScheme, NoCheckpointScheme
from repro.params import Scheme, SchemeTag

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine

SchemeBuilder = Callable[["Machine"], BaseScheme]
SchemeLike = Union[Scheme, SchemeTag]

#: name -> builder callable (``Machine -> BaseScheme``).
_BUILDERS: dict[str, SchemeBuilder] = {}

#: name -> the Scheme enum member or SchemeTag carrying that name.
_TAGS: dict[str, SchemeLike] = {}


def register_scheme(name: str, builder: SchemeBuilder, *,
                    is_local: bool = False,
                    delayed_writebacks: bool = False,
                    barrier_optimization: bool = False,
                    replace: bool = False) -> SchemeTag:
    """Register an out-of-tree scheme under ``name``.

    Returns the :class:`SchemeTag` to use as ``MachineConfig.scheme`` /
    ``RunKey.scheme``.  Duplicate names are rejected unless
    ``replace=True`` (built-in enum names can never be replaced).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"scheme name must be a non-empty string, "
                         f"got {name!r}")
    if name in _BUILDERS and isinstance(_TAGS[name], Scheme):
        raise ValueError(
            f"scheme {name!r} is a built-in Scheme enum member and "
            f"cannot be replaced")
    if name in _BUILDERS and not replace:
        raise ValueError(
            f"scheme {name!r} is already registered; pass replace=True "
            f"to override it")
    tag = SchemeTag(name, is_local=is_local,
                    delayed_writebacks=delayed_writebacks,
                    barrier_optimization=barrier_optimization)
    _BUILDERS[name] = builder
    _TAGS[name] = tag
    return tag


def unregister_scheme(name: str) -> None:
    """Remove a previously registered out-of-tree scheme (test hygiene)."""
    if name not in _BUILDERS:
        raise KeyError(f"scheme {name!r} is not registered")
    if isinstance(_TAGS[name], Scheme):
        raise ValueError(f"cannot unregister built-in scheme {name!r}")
    del _BUILDERS[name]
    del _TAGS[name]


def registered_schemes() -> tuple[str, ...]:
    """Every registered scheme name, sorted (built-ins included)."""
    return tuple(sorted(_BUILDERS))


def resolve_scheme(token: str) -> SchemeLike:
    """The :class:`Scheme` member or :class:`SchemeTag` named ``token``
    (how CLI scheme arguments address the registry)."""
    try:
        return _TAGS[token]
    except KeyError:
        raise ValueError(
            f"unknown scheme {token!r}; known: "
            f"{sorted(_BUILDERS)}") from None


def fault_free_invariant_overrides(scheme: SchemeLike) -> frozenset:
    """Config fields ``scheme``'s fault-free execution provably never
    reads (``FAULT_FREE_INVARIANT_OVERRIDES`` declared on its builder
    class) — the engine widens replica batches across overrides of
    exactly these fields.  Unknown schemes and bare builder callables
    without the declaration answer the conservative empty set: never
    widening is always sound."""
    name = getattr(scheme, "value", scheme)
    builder = _BUILDERS.get(name)
    invariant = getattr(builder, "FAULT_FREE_INVARIANT_OVERRIDES",
                        frozenset())
    return invariant if isinstance(invariant, frozenset) else frozenset()


def build_scheme(machine: "Machine") -> BaseScheme:
    """Instantiate the checkpointing scheme the config asks for."""
    scheme = machine.config.scheme
    name = getattr(scheme, "value", scheme)
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; known: "
            f"{sorted(_BUILDERS)}") from None
    return builder(machine)


def _register_builtin(member: Scheme, builder: SchemeBuilder) -> None:
    _BUILDERS[member.value] = builder
    _TAGS[member.value] = member


def _register_builtins() -> None:
    """The :class:`Scheme` enum members register the built-in classes
    (their policy properties pick the implementation)."""
    for member in Scheme:
        if member is Scheme.NONE:
            _register_builtin(member, NoCheckpointScheme)
        elif member.is_local:
            _register_builtin(member, ReboundScheme)
        else:
            _register_builtin(member, GlobalScheme)


_register_builtins()
