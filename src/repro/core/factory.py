"""Scheme construction by configuration."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.global_scheme import GlobalScheme
from repro.core.rebound_scheme import ReboundScheme
from repro.core.scheme_base import BaseScheme, NoCheckpointScheme
from repro.params import Scheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.machine import Machine


def build_scheme(machine: "Machine") -> BaseScheme:
    """Instantiate the checkpointing scheme the config asks for."""
    scheme = machine.config.scheme
    if scheme is Scheme.NONE:
        return NoCheckpointScheme(machine)
    if scheme in (Scheme.GLOBAL, Scheme.GLOBAL_DWB):
        return GlobalScheme(machine)
    if scheme.is_local:
        return ReboundScheme(machine)
    raise ValueError(f"unknown scheme {scheme!r}")  # pragma: no cover
