"""The distributed rollback protocol of Section 3.3.5.

Dual of the checkpointing protocol: the initiator sends Roll? to the
processors in its MyConsumers, transitively collecting the Interaction
Set for Recovery (IREC).  Each member rolls back to its own latest
checkpoint that fully completed — including delayed writebacks — at
least L cycles before the fault was detected (Section 4.2, third event);
Appendix A proves these targets always form a consistent recovery line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.dep_registers import mask_to_pids

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rebound_scheme import ReboundScheme
    from repro.sim.cores import CoreSnapshot


@dataclass
class IrecResult:
    """Outcome of building an Interaction Set for Recovery."""

    targets: dict[int, "CoreSnapshot"] = field(default_factory=dict)
    depth: int = 0

    @property
    def members(self) -> set[int]:
        return set(self.targets)


def build_irec(scheme: "ReboundScheme", initiator: int,
               detect_time: float) -> IrecResult:
    """Collect the IREC and each member's rollback target.

    For every member: pick its latest safe checkpoint, then propagate
    Roll? to the union of MyConsumers over all the intervals being
    unwound (the logical OR of Section 4.2, second event).
    """
    machine = scheme.machine
    clusters = scheme.clusters
    latency = scheme.config.detection_latency
    result = IrecResult()
    frontier = [initiator]
    if not clusters.trivial:
        frontier.extend(
            clusters.members_of(clusters.cluster_of(initiator)))
    while frontier:
        next_frontier = []
        for pid in frontier:
            if pid in result.targets:
                continue
            core = machine.cores[pid]
            snap = core.latest_safe_snapshot(detect_time, latency)
            result.targets[pid] = snap
            consumers, _ = scheme.files[pid].consumers_after(snap.ckpt_id)
            if not clusters.trivial:
                consumers = clusters.expand_mask(consumers)
            for consumer in mask_to_pids(consumers):
                if consumer not in result.targets:
                    next_frontier.append(consumer)
        frontier = next_frontier
        if next_frontier:
            result.depth += 1
    return result
