"""The distributed checkpointing protocol of Section 3.3.4.

An initiator sends CK? to the processors in its MyProducers; each
recipient validates the request against its own MyConsumers (Decline on
stale information or after a recent checkpoint), answers Busy while
participating in another checkpoint or still draining delayed
writebacks (the Nack of Section 4.1), and otherwise Accepts and forwards
CK? to *its* producers.  The transitive closure — the initiator plus
everything reached through Accepts — is the Interaction Set for
Checkpointing (ICHK).

The shared-memory realization (cross-processor interrupts plus
memory-flag handshakes) is costed as interconnect round trips per
closure wave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.dep_registers import mask_to_pids

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.rebound_scheme import ReboundScheme


@dataclass
class IchkResult:
    """Outcome of building an Interaction Set for Checkpointing."""

    members: set[int] = field(default_factory=set)
    genuine_members: set[int] = field(default_factory=set)
    depth: int = 0                      # closure waves (protocol latency)
    declines: int = 0
    busy_member: Optional[int] = None   # set => the attempt must back off

    @property
    def ok(self) -> bool:
        return self.busy_member is None


def build_ichk(scheme: "ReboundScheme", initiator: int,
               now: float) -> IchkResult:
    """Collect the ICHK for ``initiator`` (Figure 3.3).

    Stops propagating when a processor's MyProducers is empty, a
    processor is already a member (cyclic dependences), or a processor
    Declines because the requester is not in its MyConsumers — the stale
    MyProducers / recent-checkpoint cases of Section 3.3.2.  A Busy from
    any member aborts the attempt (the initiator releases everyone and
    retries after a random back-off).
    """
    machine = scheme.machine
    files = scheme.files
    clusters = scheme.clusters
    result = IchkResult(members={initiator}, genuine_members={initiator})
    frontier = [initiator]
    if not clusters.trivial:
        # Cluster mode (Chapter 8): checkpointing is global inside a
        # cluster, so the initiator's whole cluster participates.
        for peer in clusters.members_of(clusters.cluster_of(initiator)):
            if peer not in result.members:
                result.members.add(peer)
                frontier.append(peer)
    while frontier:
        next_frontier = []
        for consumer in frontier:
            for producer in mask_to_pids(files[consumer].active.producers):
                if producer in result.members:
                    continue
                core = machine.cores[producer]
                if core.ckpt_busy_until > now:
                    result.busy_member = producer
                    return result
                # CK? validation on the producer side: has this consumer
                # really consumed data from my latest interval?  (In
                # cluster mode any cluster peer's record suffices.)
                claimed = (files[producer].active.consumers >> consumer) & 1
                if not claimed and not clusters.trivial:
                    cluster_files = (files[p] for p in clusters.members_of(
                        clusters.cluster_of(producer)))
                    claimed = any((f.active.consumers >> consumer) & 1
                                  for f in cluster_files)
                if not claimed:
                    result.declines += 1
                    continue
                joiners = [producer]
                if not clusters.trivial:
                    joiners = clusters.members_of(
                        clusters.cluster_of(producer))
                for joiner in joiners:
                    if joiner not in result.members:
                        result.members.add(joiner)
                        next_frontier.append(joiner)
        frontier = next_frontier
        result.depth += 1
    result.genuine_members = _genuine_closure(scheme, initiator)
    return result


def _genuine_closure(scheme: "ReboundScheme", initiator: int) -> set[int]:
    """The ICHK an exact (non-Bloom) write signature would have built.

    Used only for the Table 6.1 false-positive statistic; the protocol
    never sees these masks.
    """
    files = scheme.files
    members = {initiator}
    frontier = [initiator]
    while frontier:
        next_frontier = []
        for consumer in frontier:
            mask = files[consumer].active.producers_genuine
            for producer in mask_to_pids(mask):
                if producer in members:
                    continue
                if not (files[producer].active.consumers_genuine
                        >> consumer) & 1:
                    continue
                members.add(producer)
                next_frontier.append(producer)
        frontier = next_frontier
    return members
