"""Scheme framework: shared checkpoint/rollback execution machinery.

A *scheme* implements a checkpointing policy (who checkpoints with whom,
and when) on top of shared mechanics: stopping a set of processors,
writing their dirty lines back (stalling burst or background delayed
writebacks, Section 4.1), logging, snapshotting register state, and the
dual rollback machinery (invalidate, undo the log, rewind, re-execute).

Concrete policies: :class:`repro.core.global_scheme.GlobalScheme`
(ReVive-like) and :class:`repro.core.rebound_scheme.ReboundScheme`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.coherence.protocol import DependenceTracker
from repro.interconnect import MessageClass
from repro.sim.events import DurableCall
from repro.sim.stats import CheckpointEvent, RollbackEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cores import Core, CoreSnapshot
    from repro.sim.machine import Machine


class BaseScheme(DependenceTracker):
    """Common skeleton; concrete schemes override the policy hooks."""

    enabled = False  # LW-ID / Dep register tracking off by default

    #: Config fields this scheme's **fault-free** execution provably
    #: never reads: two runs whose configs differ only here are
    #: bit-identical until their first fault is detected, so the
    #: engine's replica-batch planner may group them under one leader
    #: (``ExperimentEngine._batch_key``) — e.g. a whole
    #: ``fig_l_sensitivity`` detection-latency sweep rides one trace
    #: pass.  A declared field must only be consumed lazily through
    #: ``machine.config``/``scheme.config`` (see
    #: ``Machine.rebind_config``).  The conservative default is empty;
    #: Rebound cannot declare ``detection_latency`` because dep-register
    #: recycling (``DepRegisterFile.can_open_interval``) reads L during
    #: fault-free checkpointing.
    FAULT_FREE_INVARIANT_OVERRIDES: frozenset = frozenset()

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.config = machine.config
        self.rng = random.Random(machine.config.seed)
        self.use_dwb = machine.config.scheme.delayed_writebacks
        self.busy_retries = 0
        self.declines = 0
        self.nacks = 0

    def attach(self, machine: "Machine") -> None:
        """Called once the machine is fully constructed."""

    # -- policy hooks (overridden by concrete schemes) -----------------------
    def post_op_gate(self) -> float:
        """Minimum ``core.instr_since_ckpt`` at which ``post_op`` can
        act; the machine's hot loop skips the call below it.  The
        default matches both built-in schemes' first-line guard.  A
        scheme whose ``post_op`` must act earlier (adaptive intervals,
        pressure-triggered checkpoints, ...) overrides this — return 0
        to be called after every record."""
        return self.config.checkpoint_interval

    def post_op(self, core: "Core", now: float) -> None:
        """Called after a trace record; decides checkpoint initiation.

        Only invoked once ``core.instr_since_ckpt`` reaches
        :meth:`post_op_gate`; override that alongside this when acting
        below a full checkpoint interval."""

    def on_output(self, core: "Core", now: float) -> Optional[float]:
        """Checkpoint before output I/O; returns commit time or None to
        retry later (the core's ``not_before`` must then be set)."""
        return now

    def on_barrier_update(self, core: "Core", barrier, now: float,
                          is_last: bool) -> None:
        """A processor completed a barrier's Update section (Sec 4.2.1)."""

    def barrier_release_gate(self, barrier, now: float) -> float:
        """Last chance to delay the barrier flag write (BarCK)."""
        return now

    def on_core_done(self, core: "Core", now: float) -> None:
        """A core finished its trace."""

    def handle_fault(self, pid: int, detect_time: float) -> None:
        raise RuntimeError(
            f"fault detected on core {pid} but scheme "
            f"{self.config.scheme.value} has no recovery support")

    def finalize(self, stats) -> None:
        stats.busy_retries = self.busy_retries
        stats.declines = self.declines
        stats.nacks = self.nacks

    # -- interval bookkeeping hooks -------------------------------------------
    def _closed_interval_of(self, pid: int) -> int:
        """Interval a checkpoint of ``pid`` would close (== snapshot id)."""
        return self.interval_of(pid)

    def _rotate(self, pid: int, now: float) -> None:
        """Open a new interval on ``pid`` (Dep set / epoch rotation).

        Overrides must call ``super()._rotate(pid, now)``: the interval
        advance (WSIG epoch) is one of the events the fast-path
        invalidation discipline funnels through
        :meth:`CoherenceEngine.fastpath_epoch`, which in turn fires the
        scheme's ``on_fastpath_epoch`` hook — schemes that cache
        residency assumptions react there instead of poking cache
        internals (reprolint RL006 rejects direct pokes).
        """
        self.machine.engine.fastpath_epoch(pid)

    def _mark_interval_complete(self, pid: int, interval: int,
                                now: float) -> None:
        """Interval ``interval``'s checkpoint writebacks completed."""

    # ------------------------------------------------------------------
    # checkpoint execution (shared by Global and Rebound)
    # ------------------------------------------------------------------
    def _execute_checkpoint(self, members: list["Core"], now: float,
                            kind: str, initiator: int,
                            genuine_size: Optional[int] = None) -> float:
        """Checkpoint ``members`` together; returns their resume time.

        With delayed writebacks the members resume right after the
        coordination sync and the dirty lines drain in the background
        (Figure 4.1b); otherwise they stall until every member's burst
        writeback completes (Figure 4.1a).
        """
        machine = self.machine
        config = self.config
        # Cross-processor interrupts to stop everyone, then a sync.
        stops = {}
        for core in members:
            stop = now + config.msg_cycles
            if core.blocked is None:
                stop = max(stop, core.time)
            stops[core.pid] = stop
        machine.network.send(MessageClass.PROTOCOL, 2 * len(members))
        t_sync = max(stops.values()) + config.sync_cycles
        for core in members:
            core.charge_stall("ckpt_sync", stops[core.pid], t_sync)
        dirty_total = 0
        if not self.use_dwb:
            completions = {}
            intervals = {}
            for core in sorted(members, key=lambda c: c.pid):
                intervals[core.pid] = self._closed_interval_of(core.pid)
                snap = core.take_snapshot(
                    t_sync, overhead_mark=self._net_overhead_charged(core))
                machine.log.mark_begin(t_sync, core.pid, snap.ckpt_id)
                done, n_lines = machine.engine.checkpoint_writeback(
                    core.pid, t_sync)
                dirty_total += n_lines
                completions[core.pid] = done
            t_end = max(completions.values()) + config.sync_cycles
            machine.network.send(MessageClass.PROTOCOL, 2 * len(members))
            for core in members:
                interval = intervals[core.pid]
                snap = core.snapshots[-1]
                machine.log.mark_end(t_end, core.pid, snap.ckpt_id)
                machine.memory.end_interval(core.pid, interval)
                self._rotate(core.pid, t_end)
                self._mark_interval_complete(core.pid, interval, t_end)
                core.instr_since_ckpt = 0
                core.charge_stall("wb_delay", t_sync, completions[core.pid])
                core.charge_stall("wb_imbalance", completions[core.pid],
                                  t_end)
                snap.complete_time = t_end
                self._release_member(core, t_end)
            resume = t_end
            duration = t_end - now
        else:
            max_completion = t_sync
            for core in sorted(members, key=lambda c: c.pid):
                interval = self._closed_interval_of(core.pid)
                snap = core.take_snapshot(
                    t_sync, overhead_mark=self._net_overhead_charged(core))
                machine.log.mark_begin(t_sync, core.pid, snap.ckpt_id)
                n_lines = machine.engine.mark_delayed(core.pid)
                dirty_total += n_lines
                completion = self._start_drain(core, snap, interval,
                                               n_lines, t_sync)
                max_completion = max(max_completion, completion)
                self._release_member(core, t_sync)
            resume = t_sync
            duration = max_completion - now
        machine.stats.checkpoints.append(CheckpointEvent(
            time=now, initiator=initiator, kind=kind, size=len(members),
            genuine_size=(genuine_size if genuine_size is not None
                          else len(members)),
            dirty_lines=dirty_total, duration=duration))
        return resume

    def _release_member(self, core: "Core", resume: float) -> None:
        core.not_before = max(core.not_before, resume)
        core.ckpt_busy_until = max(core.ckpt_busy_until, resume)

    def _net_overhead_charged(self, core: "Core") -> float:
        """Cumulative net checkpoint-overhead cycles charged to
        ``core`` so far — the single source for snapshot reclaim marks
        and the rollback reclaim.  ``ipc_delay`` is only folded into
        ``CoreStats`` at finalize, so the live engine counter stands in
        for it here."""
        return (core.stats.ckpt_overhead_cycles - core.stats.ipc_delay +
                self.machine.engine.ckpt_wait[core.pid])

    def _charge_backoff(self, core: "Core", now: float,
                        until: float) -> None:
        """Attribute a checkpoint-protocol retry/back-off wait ending at
        ``until`` to the overhead bucket.  Called *before* the caller
        raises ``core.not_before``: only the part of the wait that
        actually extends the core's existing stall floor is new overhead
        (re-charging an already-counted window would double-book it)."""
        core.charge_stall("ckpt_backoff", max(now, core.not_before), until)

    def _start_drain(self, core: "Core", snap, interval: int,
                     n_lines: int, t_sync: float) -> float:
        """Kick off a background drain; returns its completion time."""
        machine = self.machine
        config = self.config
        drain = machine.channels.bg_drain_time(n_lines,
                                               config.dwb_drain_period)
        completion = t_sync + drain
        core.pending_delayed = n_lines
        core.delayed_ckpt_id = snap.ckpt_id
        core.ckpt_busy_until = max(core.ckpt_busy_until, completion)
        if n_lines > 0:
            machine.channels.bg_start()
            machine.channels.bg_account(t_sync, n_lines, drain)
        self._rotate(core.pid, t_sync)
        core.instr_since_ckpt = 0
        # Durable (fork-safe) completion: the callback re-binds to
        # whatever machine fires it, so a forked replica's pending
        # drains complete inside the fork, not the parent.
        machine.schedule_call(
            completion, DurableCall("scheme", "_complete_drain",
                                    (core.pid, snap.ckpt_id, interval)))
        return completion

    def _complete_drain(self, pid: int, ckpt_id: int, interval: int,
                        t: float) -> None:
        """Finalize a delayed-writeback checkpoint (possibly early)."""
        machine = self.machine
        core = machine.cores[pid]
        if core.delayed_ckpt_id != ckpt_id:
            return  # rolled back, or already completed by acceleration
        machine.engine.complete_delayed(pid, t, interval)
        machine.log.mark_end(t, pid, ckpt_id)
        machine.memory.end_interval(pid, interval)
        try:
            snap = core.snapshot_for(ckpt_id)
            snap.complete_time = t
        except KeyError:
            pass
        self._mark_interval_complete(pid, interval, t)
        if core.pending_delayed > 0:
            machine.channels.bg_stop()
        core.pending_delayed = 0
        core.delayed_ckpt_id = None
        core.ckpt_busy_until = min(core.ckpt_busy_until, t)

    def accelerate_drain(self, core: "Core", now: float) -> None:
        """Hurry a pending drain after a Nack (Section 4.1)."""
        if core.delayed_ckpt_id is None or core.pending_delayed == 0:
            return
        fast = now + core.pending_delayed * self.config.dwb_fast_period
        if fast < core.ckpt_busy_until:
            core.ckpt_busy_until = fast
            self.machine.schedule_call(
                fast, DurableCall("scheme", "_complete_drain",
                                  (core.pid, core.delayed_ckpt_id,
                                   self._drain_interval_for(core))))

    def _drain_interval_for(self, core: "Core") -> int:
        return self.delayed_interval_of(core.pid)

    # ------------------------------------------------------------------
    # rollback execution (shared by Global and Rebound)
    # ------------------------------------------------------------------
    def _execute_rollback(self, targets: dict[int, "CoreSnapshot"],
                          detect_time: float, initiator: int,
                          protocol_hops: int) -> RollbackEvent:
        """Roll ``targets`` (pid -> snapshot) back together.

        Invalidates the members' caches, undoes their log entries newest
        first, rewinds the cores and repairs lock/barrier state; the
        members then re-execute the lost work (Section 3.3.5).
        """
        machine = self.machine
        config = self.config
        members = set(targets)
        machine.network.send(MessageClass.PROTOCOL,
                             2 * max(1, len(members)))
        t0 = detect_time + config.msg_cycles * max(1, protocol_hops)
        max_depth = 0
        wasted = 0.0
        for pid, snap in targets.items():
            core = machine.cores[pid]
            depth = sum(1 for s in core.snapshots
                        if s.ckpt_id > snap.ckpt_id) + 1
            max_depth = max(max_depth, depth)
            if core.pending_delayed > 0:
                machine.channels.bg_stop()
                core.pending_delayed = 0
            machine.engine.invalidate_core(pid)
        restore_targets = {pid: snap.ckpt_id
                           for pid, snap in targets.items()}
        entries = machine.memory.restore(restore_targets)
        if config.check_coherence:
            for entry in entries:
                machine.engine.golden[entry.addr] = entry.old_value
        restore_done = machine.channels.restore(t0, len(entries))
        resume = restore_done + config.sync_cycles
        for pid, snap in targets.items():
            core = machine.cores[pid]
            if core.done:
                core.stats.end_time = 0.0
                machine._n_done -= 1
            span = core.rollback_to(snap, resume, detect_time)
            wasted += span
            # A member's in-flight stall window ends at the fault: the
            # recovery bucket owns the core from detection on, so the
            # pre-charged tail past detect_time is refunded (and must
            # not feed the reclaim below either).
            core.truncate_stalls(detect_time)
            # Useful-work buckets: the discarded span contains checkpoint
            # stalls that are already charged to the overhead bucket, so
            # the waste bucket only takes the remainder.  Only overhead
            # accrued after the span's *start* — the later of the target
            # snapshot (its overhead_mark) and the previous rollback's
            # reclaim mark — is reclassified out (clamped to the span),
            # so pre-snapshot overhead can never zero out genuinely
            # discarded work, and no cycle lands in two buckets.
            # RollbackEvent.wasted_cycles stays the gross span (the
            # paper-facing work-lost metric is unchanged).
            overhead_now = self._net_overhead_charged(core)
            baseline = max(core.overhead_reclaim_mark,
                           snap.overhead_mark)
            reclaim = min(span, max(0.0, overhead_now - baseline))
            core.overhead_reclaim_mark = overhead_now
            core.stats.rollback_waste += span - reclaim
            # Recovery windows of back-to-back faults overlap; count
            # each wall-clock cycle of recovery at most once per core.
            core.stats.recovery += max(0.0, resume -
                                       max(detect_time,
                                           core.recovery_until))
            core.recovery_until = max(core.recovery_until, resume)
            self._drop_dep_state(pid, snap.ckpt_id, resume)
        machine.sync.rollback_cleanup(machine, members, targets, resume)
        for pid in targets:
            machine.push_core(machine.cores[pid])
        event = RollbackEvent(
            detect_time=detect_time, initiator=initiator,
            size=len(members), latency=resume - detect_time,
            log_entries=len(entries), max_depth=max_depth,
            wasted_cycles=wasted)
        machine.stats.rollbacks.append(event)
        return event

    def _drop_dep_state(self, pid: int, ckpt_id: int, now: float) -> None:
        """Clear dependence state of rolled-back intervals (hook)."""


class NoCheckpointScheme(BaseScheme):
    """Baseline with checkpointing disabled (overhead reference runs)."""

    #: No checkpoints, no recovery: the detection latency is never read.
    FAULT_FREE_INVARIANT_OVERRIDES = frozenset({"detection_latency"})

    def __init__(self, machine: "Machine"):
        super().__init__(machine)
        self.use_dwb = False
