"""Rebound core: dependence tracking, protocols, checkpointing schemes."""

from repro.core.barrier_opt import BarrierCheckpointCoordinator
from repro.core.checkpoint_protocol import IchkResult, build_ichk
from repro.core.cluster import ClusterMap
from repro.core.dep_registers import (
    DepRegisterFile,
    DepRegisterSet,
    mask_to_pids,
)
from repro.core.factory import (
    build_scheme,
    fault_free_invariant_overrides,
    register_scheme,
    registered_schemes,
    resolve_scheme,
    unregister_scheme,
)
from repro.core.global_scheme import GlobalScheme
from repro.core.rebound_scheme import ReboundScheme
from repro.core.rollback_protocol import IrecResult, build_irec
from repro.core.scheme_base import BaseScheme, NoCheckpointScheme
from repro.core.signature import WriteSignature

__all__ = [
    "WriteSignature",
    "ClusterMap",
    "DepRegisterFile",
    "DepRegisterSet",
    "mask_to_pids",
    "build_ichk",
    "IchkResult",
    "build_irec",
    "IrecResult",
    "BaseScheme",
    "NoCheckpointScheme",
    "GlobalScheme",
    "ReboundScheme",
    "BarrierCheckpointCoordinator",
    "build_scheme",
    "fault_free_invariant_overrides",
    "register_scheme",
    "registered_schemes",
    "resolve_scheme",
    "unregister_scheme",
]
