"""Interconnect latency/message model."""

from repro.interconnect.network import Interconnect, MessageClass

__all__ = ["Interconnect", "MessageClass"]
