"""Multistage-interconnect model: latencies and message accounting.

The paper's timing model (Figure 4.3a) uses average round-trip latencies
rather than a routed topology, so the network here provides the same
abstraction: fixed latencies plus exact message *counts*, split into the
classes needed by Table 6.1 (base coherence traffic vs. the extra
messages that maintain LW-ID and the Dep registers) and the software
checkpoint/rollback protocol messages.
"""

from __future__ import annotations

from repro.params import MachineConfig


class MessageClass:
    """Message accounting buckets."""

    BASE = "base"            # ordinary coherence protocol messages
    DEP = "dep"              # extra messages for LW-ID / Dep registers
    PROTOCOL = "protocol"    # software checkpoint/rollback protocol


class Interconnect:
    """Latency constants plus per-class message counters."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.counts = {MessageClass.BASE: 0,
                       MessageClass.DEP: 0,
                       MessageClass.PROTOCOL: 0}

    # -- accounting -----------------------------------------------------------
    def send(self, msg_class: str, n: int = 1) -> None:
        self.counts[msg_class] += n

    @property
    def base_messages(self) -> int:
        return self.counts[MessageClass.BASE]

    @property
    def dep_messages(self) -> int:
        return self.counts[MessageClass.DEP]

    @property
    def protocol_messages(self) -> int:
        return self.counts[MessageClass.PROTOCOL]

    @property
    def total_messages(self) -> int:
        return sum(self.counts.values())

    def dep_overhead_percent(self) -> float:
        """Extra coherence messages over the base protocol (Table 6.1)."""
        if self.base_messages == 0:
            return 0.0
        return 100.0 * self.dep_messages / self.base_messages

    # -- latencies --------------------------------------------------------------
    @property
    def remote_round_trip(self) -> int:
        return self.config.remote_l2_cycles

    @property
    def memory_round_trip(self) -> int:
        return self.config.memory_cycles

    def protocol_round_trip(self, hops: int = 1) -> int:
        """Cost of a software-protocol exchange (interrupt + reply)."""
        return self.config.msg_cycles * max(1, hops)
