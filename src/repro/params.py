"""Machine and checkpointing configuration for the Rebound reproduction.

The defaults mirror Figure 4.3(a) of the paper: single-issue 1 GHz cores,
private write-through L1 and write-back L2 caches, a full-map directory,
two DDR2-667 memory channels, 4M-instruction checkpoint intervals and up
to four sets of Dep registers.

Because a pure-Python simulator cannot execute 64 x 4M instructions per
data point, :meth:`MachineConfig.scaled` shrinks the checkpoint interval
and the cache capacities *together* (default factor 40), which preserves
the ratio of checkpoint writeback volume to interval length -- the
quantity that determines every overhead percentage in Chapter 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

#: Cache line size used throughout the paper (bytes).
LINE_BYTES = 32

#: Bytes of a log entry: PID + physical address + old line data (Sec 3.3.3).
LOG_ENTRY_BYTES = 8 + LINE_BYTES


class Scheme(enum.Enum):
    """Checkpointing schemes evaluated in the paper (Figure 4.3a)."""

    NONE = "none"                     # no checkpointing (overhead baseline)
    GLOBAL = "global"                 # ReVive-style global checkpointing
    GLOBAL_DWB = "global_dwb"         # Global + delayed writebacks
    REBOUND = "rebound"               # proposed scheme (with delayed WBs)
    REBOUND_NODWB = "rebound_nodwb"   # Rebound without delayed writebacks
    REBOUND_BARR = "rebound_barr"     # Rebound + barrier optimization
    REBOUND_NODWB_BARR = "rebound_nodwb_barr"

    @property
    def is_local(self) -> bool:
        """True for coordinated-local (Rebound) schemes."""
        return self.value.startswith("rebound")

    @property
    def delayed_writebacks(self) -> bool:
        """True when dirty lines drain in the background at checkpoints."""
        return self in (Scheme.GLOBAL_DWB, Scheme.REBOUND, Scheme.REBOUND_BARR)

    @property
    def barrier_optimization(self) -> bool:
        """True when the proactive BarCK checkpoint of Sec 4.2.1 is used."""
        return self in (Scheme.REBOUND_BARR, Scheme.REBOUND_NODWB_BARR)

    @property
    def tracks_dependences(self) -> bool:
        """True when LW-ID / Dep registers are maintained (local schemes)."""
        return self.is_local


@dataclass(frozen=True)
class SchemeTag:
    """Scheme identity for out-of-tree checkpointing schemes.

    The built-in schemes are :class:`Scheme` enum members; experimental
    schemes registered through :func:`repro.core.factory.register_scheme`
    get a ``SchemeTag`` instead — a frozen, picklable value exposing the
    same policy properties the simulator reads off ``config.scheme``
    (``value``, ``is_local``, ``delayed_writebacks``,
    ``barrier_optimization``, ``tracks_dependences``), so it can sit in
    a :class:`MachineConfig` or a ``RunKey`` like any enum member.
    """

    value: str
    is_local: bool = False
    delayed_writebacks: bool = False
    barrier_optimization: bool = False

    @property
    def tracks_dependences(self) -> bool:
        return self.is_local


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int = LINE_BYTES
    hit_cycles: int = 2

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return max(1, self.size_bytes // (self.assoc * self.line_bytes))


@dataclass(frozen=True)
class MachineConfig:
    """Full manycore configuration (Figure 4.3a plus Rebound parameters)."""

    n_cores: int = 64

    # --- memory hierarchy -------------------------------------------------
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024, 4, hit_cycles=2))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, hit_cycles=8))
    remote_l2_cycles: int = 60        # round trip to another tile's L2 (avg)
    memory_cycles: int = 200          # round trip to main memory
    n_mem_channels: int = 2

    # Channel occupancies (cycles a 32B transfer keeps a channel busy).
    # DDR2-667 x2 channels ~ 10.6 GB/s aggregate at 1 GHz -> ~3 cycles per
    # 32B line per channel-pair; a *logged* writeback additionally reads the
    # old value and appends a log entry (ReVive, Sec 3.3.3).
    dram_occupancy: int = 3
    logged_wb_occupancy: int = 6
    restore_occupancy: int = 6        # per log entry undone during rollback

    # --- checkpointing ----------------------------------------------------
    scheme: Scheme = Scheme.REBOUND
    checkpoint_interval: int = 4_000_000   # instructions (Fig 4.3a)
    detection_latency: int = 500_000       # L, cycles (upper bound; Sec 3.2)
    n_dep_sets: int = 4                    # maximum Dep register sets
    wsig_bits: int = 1024                  # Write Signature size (Fig 4.3a)
    wsig_hashes: int = 4

    # Software-protocol costs (cross-processor interrupts + memory flags are
    # costed as interconnect round trips, Sec 3.3.4).
    msg_cycles: int = 60
    sync_cycles: int = 120                 # one coordination sync
    backoff_max: int = 2_000               # random back-off after Busy
    io_cycles: int = 500                   # device-visible output operation

    # Delayed-writeback drain: cycles between successive background line
    # writebacks from one L2 controller (Sec 4.1), and the accelerated
    # period used after a Nack forces the drain to hurry up.
    dwb_drain_period: int = 12
    dwb_fast_period: int = 4
    # Extra queueing suffered by a demand memory access per active
    # background-writeback stream sharing its channel (IPCDelay source).
    dwb_demand_penalty: int = 2

    # A processor is "interested" in a barrier checkpoint when it has run
    # at least this fraction of its checkpoint interval (Sec 4.2.1) — i.e.
    # it would soon checkpoint anyway, so it proactively does it at the
    # barrier where the writebacks hide behind the imbalance time.
    barrier_interest_fraction: float = 0.85

    # Cluster-granular dependence tracking (Chapter 8, future work):
    # with a value k > 1 each MyProducers/MyConsumers bit names a cluster
    # of k consecutive processors rather than one processor, shrinking
    # the Dep registers; inside a cluster checkpointing is effectively
    # global.  1 = the paper's per-processor tracking.
    dep_cluster_size: int = 1

    # --- misc ---------------------------------------------------------------
    seed: int = 1                      # protocol back-off randomness
    track_values: bool = True          # architectural value tracking
    check_coherence: bool = False      # golden-model assertion on every load

    # ------------------------------------------------------------------
    @staticmethod
    def paper(n_cores: int = 64, scheme: Scheme = Scheme.REBOUND) -> "MachineConfig":
        """The configuration of Figure 4.3(a), unscaled."""
        return MachineConfig(n_cores=n_cores, scheme=scheme)

    @staticmethod
    def scaled(n_cores: int = 64, scheme: Scheme = Scheme.REBOUND,
               scale: int = 40, **overrides) -> "MachineConfig":
        """Paper configuration shrunk by ``scale`` for tractable simulation.

        The checkpoint interval, cache capacities, detection latency and
        back-off window all shrink together so overhead *percentages* are
        preserved (see DESIGN.md section 3).
        """
        base = MachineConfig(
            n_cores=n_cores,
            scheme=scheme,
            l1=CacheConfig(max(512, 16 * 1024 // scale), 4, hit_cycles=2),
            l2=CacheConfig(max(2048, 256 * 1024 // scale), 8, hit_cycles=8),
            checkpoint_interval=max(5_000, 4_000_000 // scale),
            detection_latency=max(2_000, 500_000 // scale),
            backoff_max=max(200, 2_000),
            wsig_bits=256,
        )
        return replace(base, **overrides) if overrides else base

    def with_scheme(self, scheme: Scheme) -> "MachineConfig":
        """A copy of this configuration running a different scheme."""
        return replace(self, scheme=scheme)

    def replace(self, **overrides) -> "MachineConfig":
        """A copy of this configuration with ``overrides`` applied."""
        return replace(self, **overrides)
