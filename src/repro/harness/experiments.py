"""Experiment drivers: one per figure/table of the evaluation chapter.

Each driver runs the simulations it needs (through the caching
:class:`~repro.harness.runner.Runner`), returns a structured result and
can render itself as the rows/series the paper's figure plots, plus the
paper-vs-measured line EXPERIMENTS.md records.

Every driver also has a *planner* (``ALL_PLANS``) that enumerates the
exact :class:`~repro.harness.engine.RunKey` set the driver will request,
without running anything.  Drivers prefetch their own plan on entry (so
a single figure parallelizes by itself), and ``python -m repro.harness``
unions the plans of every requested experiment up front, deduplicating
shared runs across figures before handing them to the engine's process
pool in one batch.

Paper reference points (what the *shape* checks compare against):

* Fig 6.1 — mean ICHK ≈ 40% of 24 processors for PARSEC+Apache;
  Blackscholes/Apache ≈ 20%.
* Fig 6.2 — mean ICHK ≈ 60% for SPLASH-2; Ocean/Raytrace ≈ 100%;
  32 -> 64 processors grows ICHK only slightly.
* Fig 6.3 — average error-free overhead at 64p: Global ≈ 15%,
  Global_DWB ≈ 8%, Rebound_NoDWB ≈ 7%, Rebound ≈ 2%; PARSEC/Apache at
  24p: Global ≈ 5%, Rebound ≈ 0.5%.
* Fig 6.4 — Barrier opt and delayed WBs have similar individual impact;
  combining them is not additive.
* Fig 6.5 — Global/Rebound_NoDWB dominated by WBDelay+WBImbalance;
  Rebound dominated by IPCDelay; SyncDelay minor.
* Fig 6.6 — Global's overhead/energy/recovery grow steeply with cores;
  Rebound's stay nearly flat; Rebound recovers slower than
  Rebound_NoDWB (one extra interval) but far faster than Global.
* Fig 6.7 — with one I/O-checkpointing processor every half interval:
  Global's effective interval collapses to 1/2; Rebound stays > 4/5.
* Fig 6.8 — Rebound_NoDWB/Rebound consume ~2%/~4% more power than
  Global (1.3% of it structures) but win ~27% ED^2.
* Table 6.1 — ICHK inflation from WSIG false positives ≈ 2% average;
  extra coherence messages ≈ 4% average; log ≈ MBs per interval.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from statistics import mean
from typing import NamedTuple, Optional

from repro.core.factory import resolve_scheme
from repro.harness.engine import RunKey
from repro.harness.report import format_bars, format_table
from repro.harness.runner import Runner
from repro.harness.scenario import SweepSpec
from repro.params import LOG_ENTRY_BYTES, MachineConfig, Scheme
from repro.power import ed2, energy_of_stats
from repro.sim.faults import FaultPlan
from repro.sim.stats import summarize_campaign
from repro.workloads import (
    ALL_APPS,
    BARRIER_INTENSIVE,
    LOW_ICHK,
    PARSEC_APACHE,
    SPLASH2,
    workload_name,
)

#: Schemes of the Figure 6.3 comparison, in bar order.
OVERHEAD_SCHEMES = (Scheme.GLOBAL, Scheme.GLOBAL_DWB,
                    Scheme.REBOUND_NODWB, Scheme.REBOUND)

#: Schemes of the Figure 6.4 comparison, in bar order.
BARRIER_SCHEMES = (Scheme.GLOBAL, Scheme.REBOUND_NODWB,
                   Scheme.REBOUND_NODWB_BARR, Scheme.REBOUND,
                   Scheme.REBOUND_BARR)


@dataclass
class ExperimentResult:
    """Common shape: an id, column headers, data rows, and notes."""

    experiment: str
    headers: list[str]
    rows: list[list]
    notes: str = ""

    def render(self) -> str:
        text = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            text += f"\n{self.notes}"
        return text


# ---------------------------------------------------------------------------
# Figures 6.1 / 6.2 — Interaction Set for Checkpointing sizes
# ---------------------------------------------------------------------------

def fig6_1_ichk_parsec(runner: Runner, n_cores: int = 24,
                       apps: list[str] | None = None) -> ExperimentResult:
    """Average ICHK size, PARSEC + Apache (Figure 6.1)."""
    apps = apps if apps is not None else PARSEC_APACHE
    runner.prefetch(plan_fig6_1(runner, n_cores, apps))
    rows = []
    fractions = []
    for app in apps:
        stats = runner.run(app, n_cores, Scheme.REBOUND)
        frac = stats.mean_ichk_fraction()
        fractions.append(frac)
        rows.append([app, "100.0%", f"{100 * frac:.1f}%"])
    rows.append(["average", "100.0%",
                 f"{100 * mean(fractions):.1f}%" if fractions else "-"])
    return ExperimentResult(
        "Figure 6.1: mean ICHK size (% of processors), "
        f"{n_cores}-processor PARSEC/Apache",
        ["app", "Global", "Rebound"], rows,
        notes="paper: Rebound average ~40%; Blackscholes/Apache ~20%")


def fig6_2_ichk_splash(runner: Runner, sizes: tuple[int, ...] = (32, 64),
                       apps: list[str] | None = None) -> ExperimentResult:
    """Average ICHK size, SPLASH-2 at 32 and 64 processors (Figure 6.2)."""
    apps = apps if apps is not None else SPLASH2
    runner.prefetch(plan_fig6_2(runner, sizes, apps))
    rows = []
    averages = {n: [] for n in sizes}
    for app in apps:
        row = [app]
        for n_cores in sizes:
            stats = runner.run(app, n_cores, Scheme.REBOUND)
            frac = stats.mean_ichk_fraction()
            averages[n_cores].append(frac)
            row.append(f"{100 * frac:.1f}%")
        rows.append(row)
    rows.append(["average"] + [
        f"{100 * mean(averages[n]):.1f}%" if averages[n] else "-"
        for n in sizes])
    return ExperimentResult(
        "Figure 6.2: mean ICHK size (% of processors), SPLASH-2",
        ["app"] + [f"{n}p Rebound" for n in sizes], rows,
        notes="paper: ~60% average; Ocean/Raytrace ~100%; "
              "32->64p grows only slightly")


# ---------------------------------------------------------------------------
# Figure 6.3 — error-free checkpointing overhead
# ---------------------------------------------------------------------------

def fig6_3_overhead(runner: Runner, apps: list[str] | None = None,
                    n_cores: int = 64,
                    suite: str = "SPLASH-2") -> ExperimentResult:
    """Checkpointing overhead during error-free execution (Figure 6.3)."""
    apps = apps if apps is not None else SPLASH2
    runner.prefetch(plan_fig6_3(runner, apps, n_cores))
    rows = []
    sums = {scheme: [] for scheme in OVERHEAD_SCHEMES}
    for app in apps:
        row = [app]
        for scheme in OVERHEAD_SCHEMES:
            overhead = runner.overhead(app, n_cores, scheme)
            sums[scheme].append(overhead)
            row.append(f"{100 * overhead:.2f}%")
        rows.append(row)
    rows.append(["average"] + [
        f"{100 * mean(sums[s]):.2f}%" if sums[s] else "-"
        for s in OVERHEAD_SCHEMES])
    return ExperimentResult(
        f"Figure 6.3: error-free checkpoint overhead, {suite} "
        f"at {n_cores} processors",
        ["app"] + [s.value for s in OVERHEAD_SCHEMES], rows,
        notes="paper (SPLASH-2@64): Global ~15%, Global_DWB ~8%, "
              "Rebound_NoDWB ~7%, Rebound ~2%")


# ---------------------------------------------------------------------------
# Figure 6.4 — the barrier optimization
# ---------------------------------------------------------------------------

def fig6_4_barrier(runner: Runner, apps: list[str] | None = None,
                   n_cores: int = 64) -> ExperimentResult:
    """Impact of the Barrier optimization (Figure 6.4)."""
    apps = apps if apps is not None else BARRIER_INTENSIVE
    runner.prefetch(plan_fig6_4(runner, apps, n_cores))
    rows = []
    sums = {scheme: [] for scheme in BARRIER_SCHEMES}
    for app in apps:
        row = [app]
        for scheme in BARRIER_SCHEMES:
            overhead = runner.overhead(app, n_cores, scheme)
            sums[scheme].append(overhead)
            row.append(f"{100 * overhead:.2f}%")
        rows.append(row)
    rows.append(["average"] + [
        f"{100 * mean(sums[s]):.2f}%" if sums[s] else "-"
        for s in BARRIER_SCHEMES])
    return ExperimentResult(
        f"Figure 6.4: barrier optimization, barrier-intensive apps "
        f"at {n_cores} processors",
        ["app"] + [s.value for s in BARRIER_SCHEMES], rows,
        notes="paper: Barrier opt and delayed WBs have similar impact; "
              "combining them is not additive")


# ---------------------------------------------------------------------------
# Figure 6.5 — overhead breakdown
# ---------------------------------------------------------------------------

BREAKDOWN_SCHEMES = (Scheme.GLOBAL, Scheme.REBOUND_NODWB, Scheme.REBOUND)
BREAKDOWN_CATEGORIES = ("WBDelay", "WBImbalanceDelay", "SyncDelay",
                        "IPCDelay")


def fig6_5_breakdown(runner: Runner, apps: list[str] | None = None,
                     splash_cores: int = 64,
                     parsec_cores: int = 24) -> ExperimentResult:
    """Checkpoint-overhead breakdown, normalized to Global (Figure 6.5)."""
    apps = apps if apps is not None else ALL_APPS
    runner.prefetch(plan_fig6_5(runner, apps, splash_cores, parsec_cores))
    rows = []
    for app in apps:
        n_cores = splash_cores if app in SPLASH2 else parsec_cores
        global_total = None
        for scheme in BREAKDOWN_SCHEMES:
            stats = runner.run(app, n_cores, scheme)
            breakdown = stats.breakdown()
            total = sum(breakdown.values())
            if scheme is Scheme.GLOBAL:
                global_total = total or 1.0
            row = [app, scheme.value]
            for category in BREAKDOWN_CATEGORIES:
                row.append(f"{100 * breakdown[category] / global_total:.1f}%")
            row.append(f"{100 * total / global_total:.1f}%")
            rows.append(row)
    return ExperimentResult(
        "Figure 6.5: overhead breakdown (normalized to Global = 100%)",
        ["app", "scheme"] + list(BREAKDOWN_CATEGORIES) + ["total"], rows,
        notes="paper: Global/Rebound_NoDWB dominated by WBDelay+"
              "WBImbalance; Rebound by IPCDelay; SyncDelay minor")


# ---------------------------------------------------------------------------
# Figure 6.6 — scalability (overhead, energy, recovery latency)
# ---------------------------------------------------------------------------

SCALABILITY_SCHEMES = (Scheme.GLOBAL, Scheme.REBOUND_NODWB, Scheme.REBOUND)


def fig6_6_scalability(runner: Runner, apps: list[str] | None = None,
                       sizes: tuple[int, ...] = (16, 32, 64)
                       ) -> ExperimentResult:
    """Overhead / energy increase / recovery latency vs. cores (Fig 6.6)."""
    apps = apps if apps is not None else SPLASH2
    runner.prefetch(plan_fig6_6(runner, apps, sizes))
    # Recovery latency averages a representative subset of the apps
    # (noted in EXPERIMENTS.md) to bound the fault-run count.
    recovery_apps = apps[:5]
    rows = []
    for n_cores in sizes:
        for scheme in SCALABILITY_SCHEMES:
            overheads, energy_increases, recoveries = [], [], []
            for app in apps:
                overheads.append(runner.overhead(app, n_cores, scheme))
                stats = runner.run(app, n_cores, scheme)
                base = runner.baseline(app, n_cores)
                e_scheme = energy_of_stats(stats).total_j
                e_base = energy_of_stats(base).total_j
                energy_increases.append((e_scheme - e_base) /
                                        e_base if e_base else 0.0)
                if app in recovery_apps:
                    latency = _recovery_latency(
                        runner, app, n_cores, scheme)
                    if latency is not None:
                        recoveries.append(latency)
            rows.append([
                n_cores, scheme.value,
                f"{100 * mean(overheads):.2f}%",
                f"{100 * mean(energy_increases):.2f}%",
                f"{mean(recoveries):,.0f}" if recoveries else "-",
            ])
    return ExperimentResult(
        "Figure 6.6: scalability with processor count (SPLASH-2 average)",
        ["cores", "scheme", "ckpt overhead", "energy increase",
         "recovery latency (cycles)"], rows,
        notes="paper: Global grows steeply with cores on all three "
              "metrics; Rebound stays nearly flat; Rebound recovery > "
              "Rebound_NoDWB (one extra interval) but << Global")


def _recovery_latency(runner: Runner, app: str, n_cores: int,
                      scheme: Scheme) -> Optional[float]:
    """Mean recovery latency with a fault injected late in the run.

    The paper measures a transient fault right before a checkpoint; we
    inject on core 0 late in the run (cycles ~ instructions for these
    1-IPC cores) so at least one checkpoint is safe.  A fault the run
    finished before detecting yields no recovery at all: warn and
    return None (skipped from the average) instead of letting a fake
    0-cycle recovery deflate Figure 6.6.
    """
    fault_at = _recovery_fault_at(runner, n_cores)
    stats = runner.run(app, n_cores, scheme, fault_at=fault_at)
    if not stats.rollbacks:
        warnings.warn(
            f"fig6_6: fault at cycle {fault_at:,.0f} in {app} x{n_cores} "
            f"{scheme.value} was never delivered "
            f"({stats.undelivered_faults} undelivered); skipping its "
            f"recovery-latency sample", stacklevel=2)
        return None
    return stats.mean_recovery_latency()


# ---------------------------------------------------------------------------
# Figure 6.7 — output I/O
# ---------------------------------------------------------------------------

def fig6_7_io(runner: Runner, apps: list[str] | None = None,
              n_cores: int = 64) -> ExperimentResult:
    """Effect of output I/O on the checkpoint interval (Figure 6.7).

    One processor initiates a checkpoint every half interval (as if
    performing output I/O); the figure reports the resulting machine-wide
    effective checkpoint interval, relative to the configured one.
    """
    apps = apps if apps is not None else LOW_ICHK
    runner.prefetch(plan_fig6_7(runner, apps, n_cores))
    io_every = _io_every(runner, n_cores)
    rows = []
    ratios = {Scheme.GLOBAL: [], Scheme.REBOUND: []}
    for app in apps:
        row = [app]
        for scheme in (Scheme.GLOBAL, Scheme.REBOUND):
            stats = runner.run(app, n_cores, scheme, io_every=io_every)
            baseline = runner.run(app, n_cores, scheme)
            effective = stats.mean_effective_ckpt_interval()
            reference = baseline.mean_effective_ckpt_interval()
            ratio = effective / reference if reference else 0.0
            ratios[scheme].append(ratio)
            row.append(f"{100 * ratio:.0f}%")
        rows.append(row)
    rows.append(["average"] + [
        f"{100 * mean(ratios[s]):.0f}%" if ratios[s] else "-"
        for s in (Scheme.GLOBAL, Scheme.REBOUND)])
    return ExperimentResult(
        f"Figure 6.7: effective checkpoint interval under output I/O "
        f"(% of configured interval), {n_cores} processors",
        ["app", "Global-I/O", "Rebound-I/O"], rows,
        notes="paper: Global-I/O collapses to ~50% (2.5M of 5M cycles); "
              "Rebound-I/O stays above ~80% (4M of 5M)")


# ---------------------------------------------------------------------------
# Figure 6.8 — power
# ---------------------------------------------------------------------------

POWER_SCHEMES = (Scheme.GLOBAL, Scheme.REBOUND_NODWB, Scheme.REBOUND)


def fig6_8_power(runner: Runner, apps: list[str] | None = None,
                 n_cores: int = 64) -> ExperimentResult:
    """Estimated on-chip power, SPLASH-2 average (Figure 6.8)."""
    apps = apps if apps is not None else SPLASH2
    runner.prefetch(plan_fig6_8(runner, apps, n_cores))
    rows = []
    powers = {}
    ed2s = {}
    for scheme in POWER_SCHEMES:
        per_app_power, per_app_ed2 = [], []
        for app in apps:
            stats = runner.run(app, n_cores, scheme)
            report = energy_of_stats(stats)
            per_app_power.append(report.power_w)
            per_app_ed2.append(ed2(report))
        powers[scheme] = mean(per_app_power)
        ed2s[scheme] = mean(per_app_ed2)
    base_power = powers[Scheme.GLOBAL] or 1.0
    base_ed2 = ed2s[Scheme.GLOBAL] or 1.0
    for scheme in POWER_SCHEMES:
        rows.append([
            scheme.value, f"{powers[scheme]:.2f} W",
            f"{100 * (powers[scheme] / base_power - 1):+.1f}%",
            f"{100 * (ed2s[scheme] / base_ed2 - 1):+.1f}%",
        ])
    return ExperimentResult(
        f"Figure 6.8: estimated power, SPLASH-2 average at {n_cores} "
        "processors",
        ["scheme", "power", "vs Global", "ED^2 vs Global"], rows,
        notes="paper: Rebound_NoDWB +2% and Rebound +4% power vs Global "
              "(1.3% structures); Rebound ED^2 -27%")


# ---------------------------------------------------------------------------
# Figure 6.9 (extension) — Monte Carlo fault campaigns
# ---------------------------------------------------------------------------

class CampaignVariant(NamedTuple):
    """One bar of the campaign comparison: a scheme at a cluster size."""

    label: str
    scheme: Scheme
    cluster: int


#: Default campaign comparison: Rebound vs Global vs cluster-granular
#: Rebound (Chapter 8's trade-off) under the same fault process.
CAMPAIGN_VARIANTS = (
    CampaignVariant("global", Scheme.GLOBAL, 1),
    CampaignVariant("rebound", Scheme.REBOUND, 1),
    CampaignVariant("rebound@4", Scheme.REBOUND, 4),
)

#: Apps of the default campaign sweep (one low-ICHK, one high-ICHK).
CAMPAIGN_APPS = ["blackscholes", "ocean"]


def parse_variant(token: str) -> CampaignVariant:
    """``"rebound"`` or ``"rebound@4"`` (scheme at cluster size 4).

    Scheme names resolve through the scheme registry, so out-of-tree
    schemes registered via :func:`repro.core.register_scheme` work in
    CLI scheme arguments too.
    """
    name, _, cluster = token.partition("@")
    scheme = resolve_scheme(name)
    try:
        size = int(cluster) if cluster else 1
    except ValueError:
        raise ValueError(
            f"cluster size in {token!r} must be an integer "
            f"(e.g. rebound@4)") from None
    if size < 1:
        raise ValueError(f"cluster size must be >= 1, got {size}")
    return CampaignVariant(token, scheme, size)


@lru_cache(maxsize=None)
def _seeded_plans(n_cores: int, n_seeds: int, base_seed: int,
                  mttf: float, horizon: float) -> tuple[FaultPlan, ...]:
    """Seed-deterministic plan set, built once per distinct cell.

    fig6_9, fig_l sensitivity points and the invariant benchmarks all
    draw the *same* plans (same seeds, same fault process); sharing the
    frozen :class:`FaultPlan` instances also makes the RunKeys they key
    compare by identity first.  The cache key is scalars only — runner
    state is resolved by the caller — so it is exact, and the plans are
    immutable so sharing them is safe.
    """
    return tuple(FaultPlan.from_mttf(seed=base_seed + i, mttf=mttf,
                                     horizon=horizon, n_cores=n_cores)
                 for i in range(n_seeds))


def _campaign_plans(runner: Runner, n_cores: int, n_seeds: int,
                    base_seed: int, mttf_intervals: float
                    ) -> list[FaultPlan]:
    """The seeded fault plans of one campaign cell.

    The MTTF is expressed in checkpoint intervals (machine-wide), so
    the fault pressure is scale-invariant; the horizon covers the whole
    run (instructions ~ cycles for these 1-IPC cores, and runs only
    ever take *longer* than their instruction count — a fault drawn
    past the actual end is recorded as undelivered, which the summary
    reports rather than hides).
    """
    interval = _configured_interval(runner, n_cores)
    return list(_seeded_plans(n_cores, n_seeds, base_seed,
                              mttf_intervals * interval,
                              runner.intervals * interval))


def fig6_9_campaign(runner: Runner, apps: list[str] | None = None,
                    sizes: tuple[int, ...] = (8, 16),
                    variants: tuple[CampaignVariant, ...] = CAMPAIGN_VARIANTS,
                    n_seeds: int = 3, base_seed: int = 100,
                    mttf_intervals: float = 1.0) -> ExperimentResult:
    """Monte Carlo fault campaign: recovery cost under an MTTF model.

    For every (processor count, variant) cell, ``n_seeds`` seeded
    multi-fault runs per app are simulated (faults drawn from an
    exponential model, any core, including mid-checkpoint and
    back-to-back) and aggregated into availability, work-lost and
    IREC/recovery-latency distributions.  Plans are seed-deterministic,
    so every run is cacheable and parallelizable through the engine.
    """
    apps = apps if apps is not None else CAMPAIGN_APPS
    runner.prefetch(plan_fig6_9(runner, apps, sizes, variants, n_seeds,
                                base_seed, mttf_intervals))
    rows = []
    for n_cores in sizes:
        plans = _campaign_plans(runner, n_cores, n_seeds, base_seed,
                                mttf_intervals)
        for variant in variants:
            runs = [runner.run(app, n_cores, variant.scheme,
                               fault_plan=plan, cluster=variant.cluster)
                    for app in apps for plan in plans]
            summary = summarize_campaign(runs)
            rows.append([
                n_cores, variant.label,
                f"{100 * summary.mean_availability:.2f}%",
                f"{100 * summary.mean_effective_availability:.2f}%",
                f"{summary.mean_work_lost:,.0f}",
                f"{summary.mean_rollbacks_per_run:.1f}",
                f"{summary.mean_irec_size:.1f}",
                (f"{summary.recovery_latency_percentile(95):,.0f}"
                 if summary.recovery_latencies else "-"),
                f"{summary.delivered_faults}/{summary.injected_faults}",
            ])
    return ExperimentResult(
        f"Figure 6.9 (ext): fault campaign, MTTF = {mttf_intervals:g} "
        f"interval(s), {n_seeds} seed(s)/app, "
        f"apps={'+'.join(workload_name(app) for app in apps)}",
        ["cores", "variant", "availability", "eff avail",
         "work lost (cyc)", "rollbacks/run", "mean |IREC|",
         "p95 recovery (cyc)", "delivered"], rows,
        notes="extension: Rebound rolls back only the IREC, so its "
              "availability stays above Global's and its work-lost "
              "stays flat as the machine grows; cluster mode trades "
              "toward Global.  'eff avail' additionally charges the "
              "checkpointing work itself (useful cycles / total), so "
              "the Rebound-vs-Global gap it shows is the full one.")


# ---------------------------------------------------------------------------
# L sensitivity (extension) — detection latency vs recovery cost
# ---------------------------------------------------------------------------

#: Schemes of the detection-latency sensitivity comparison.
L_SENSITIVITY_SCHEMES = (Scheme.GLOBAL, Scheme.REBOUND)

#: Detection latencies swept, as fractions of a checkpoint interval.
#: The paper's upper bound (Section 3.2) is 500K cycles against a
#: 4M-instruction interval, i.e. 0.125; the sweep brackets it.
L_FRACTIONS = (0.02, 0.125, 0.5)


def _l_values(runner: Runner, n_cores: int,
              fractions: tuple[float, ...]) -> list[int]:
    """The swept detection latencies, in cycles at the runner's scale."""
    interval = _configured_interval(runner, n_cores)
    return [max(1, int(frac * interval)) for frac in fractions]


def fig_l_sensitivity(runner: Runner, apps: list[str] | None = None,
                      n_cores: int = 8, n_seeds: int = 2,
                      base_seed: int = 100, mttf_intervals: float = 1.0,
                      l_fractions: tuple[float, ...] = L_FRACTIONS
                      ) -> ExperimentResult:
    """Recovery latency / availability vs detection latency L (Sec 3.2).

    The fault process is held fixed (same seeded plans) while the
    machine's detection latency sweeps across ``l_fractions`` of a
    checkpoint interval, via a ``RunKey`` config override — the knob
    reaches the engine without any engine code knowing about it.  A
    larger L delays detection, so more speculative work piles up past
    the fault and more log entries must be undone: mean recovery
    latency is non-decreasing in L and availability erodes.
    """
    apps = apps if apps is not None else CAMPAIGN_APPS
    runner.prefetch(plan_fig_l_sensitivity(
        runner, apps, n_cores, n_seeds, base_seed, mttf_intervals,
        l_fractions))
    plans = _campaign_plans(runner, n_cores, n_seeds, base_seed,
                            mttf_intervals)
    interval = _configured_interval(runner, n_cores)
    rows = []
    for latency in _l_values(runner, n_cores, l_fractions):
        for scheme in L_SENSITIVITY_SCHEMES:
            runs = [runner.run(app, n_cores, scheme, fault_plan=plan,
                               overrides={"detection_latency": latency})
                    for app in apps for plan in plans]
            summary = summarize_campaign(runs)
            rows.append([
                f"{latency:,}", f"{latency / interval:.3g}", scheme.value,
                (f"{summary.mean_recovery_latency:,.0f}"
                 if summary.recovery_latencies else "-"),
                (f"{summary.recovery_latency_percentile(95):,.0f}"
                 if summary.recovery_latencies else "-"),
                f"{100 * summary.mean_availability:.2f}%",
                f"{100 * summary.mean_effective_availability:.2f}%",
                f"{summary.mean_work_lost:,.0f}",
                f"{summary.delivered_faults}/{summary.injected_faults}",
            ])
    return ExperimentResult(
        f"L sensitivity (ext): detection latency sweep, {n_cores} "
        f"processors, MTTF = {mttf_intervals:g} interval(s), "
        f"apps={'+'.join(workload_name(app) for app in apps)}",
        ["L (cyc)", "L/interval", "scheme", "mean recovery (cyc)",
         "p95 recovery (cyc)", "availability", "eff avail",
         "work lost (cyc)", "delivered"], rows,
        notes="paper Sec 3.2: L only bounds how fresh a restorable "
              "checkpoint can be; recovery latency grows with L while "
              "Rebound's localized rollback keeps availability above "
              "Global's at every L")


# ---------------------------------------------------------------------------
# Table 6.1 — characterization
# ---------------------------------------------------------------------------

def table6_1_characterization(runner: Runner,
                              apps: list[str] | None = None,
                              splash_cores: int = 64,
                              parsec_cores: int = 24) -> ExperimentResult:
    """WSIG false positives, log size, extra messages (Table 6.1)."""
    apps = apps if apps is not None else ALL_APPS
    runner.prefetch(plan_table6_1(runner, apps, splash_cores, parsec_cores))
    rows = []
    fp_incs, log_mbs, msg_incs = [], [], []
    for app in apps:
        n_cores = splash_cores if app in SPLASH2 else parsec_cores
        stats = runner.run(app, n_cores, Scheme.REBOUND)
        fp_inc = stats.ichk_fp_increase_percent()
        log_mb = stats.max_interval_log_bytes / 1e6
        # Rescale the log volume to the paper's 4M-instruction interval.
        scale = 4_000_000 / stats.config.checkpoint_interval
        log_mb_paper = log_mb * scale
        msg_inc = stats.dep_message_percent()
        fp_incs.append(fp_inc)
        log_mbs.append(log_mb_paper)
        msg_incs.append(msg_inc)
        rows.append([app, f"{fp_inc:.1f}%", f"{log_mb:.3f}",
                     f"{log_mb_paper:.1f}", f"{msg_inc:.1f}%"])
    rows.append(["average", f"{mean(fp_incs):.1f}%",
                 f"{mean(log_mbs) / (4_000_000 / 100_000):.3f}",
                 f"{mean(log_mbs):.1f}", f"{mean(msg_incs):.1f}%"])
    return ExperimentResult(
        "Table 6.1: Rebound characterization",
        ["app", "ICHK FP increase", "log MB/interval (scaled)",
         "log MB/interval (paper-rescaled)", "extra coherence msgs"],
        rows,
        notes="paper: FP increase 2.0% avg; log 7.2 MB avg; extra "
              "messages 4.2% avg")


# ---------------------------------------------------------------------------
# planners: the RunKey set each driver will request, computed up front
#
# Each planner is a declarative :class:`SweepSpec` — an ordered axis
# list whose cartesian product is exactly the key set the driver
# requests (grids union with ``+`` where a parameter depends on another
# axis, e.g. a fault time that depends on the core count).  The specs
# produce the same RunKeys (and therefore the same cache paths) as the
# hand-written loop bodies they replaced; tests/test_scenario.py pins
# that equivalence.
# ---------------------------------------------------------------------------

def _configured_interval(runner: Runner, n_cores: int) -> int:
    """The checkpoint interval a run at this scale will be configured
    with — derivable without simulating (it depends only on the scale),
    so planners can enumerate I/O- and fault-parameterized keys."""
    return MachineConfig.scaled(n_cores=n_cores, scheme=Scheme.NONE,
                                scale=runner.scale).checkpoint_interval


def _recovery_fault_at(runner: Runner, n_cores: int) -> float:
    """Fault-injection time of the Fig 6.6 recovery runs: late in the
    run but comfortably before it ends, whatever ``--intervals`` says
    (shared by the driver and its planner, so the planned keys are
    exactly the keys the driver requests).  At the default 3-interval
    length this is the historical 2.6 intervals; shorter runs (e.g.
    ``--quick``'s 2 intervals) pull the fault in so its detection still
    lands inside the run instead of being silently dropped."""
    fraction = min(2.6, max(0.6, runner.intervals - 0.4))
    return fraction * _configured_interval(runner, n_cores)


def _io_every(runner: Runner, n_cores: int) -> int:
    """Fig 6.7's output-I/O period: half the configured interval
    (shared by the driver and its planner)."""
    return _configured_interval(runner, n_cores) // 2


def _per_app_cores_spec(apps: list[str], splash_cores: int,
                        parsec_cores: int, schemes) -> SweepSpec:
    """One grid per app (SPLASH-2 and PARSEC run at different sizes)."""
    return sum((SweepSpec.grid(
        app=app,
        n_cores=splash_cores if app in SPLASH2 else parsec_cores,
        scheme=schemes) for app in apps), SweepSpec())


def spec_fig6_1(runner: Runner, n_cores: int = 24,
                apps: list[str] | None = None) -> SweepSpec:
    apps = apps if apps is not None else PARSEC_APACHE
    return SweepSpec.grid(app=apps, n_cores=n_cores, scheme=Scheme.REBOUND)


def spec_fig6_2(runner: Runner, sizes: tuple[int, ...] = (32, 64),
                apps: list[str] | None = None) -> SweepSpec:
    apps = apps if apps is not None else SPLASH2
    return SweepSpec.grid(app=apps, n_cores=list(sizes),
                          scheme=Scheme.REBOUND)


def spec_fig6_3(runner: Runner, apps: list[str] | None = None,
                n_cores: int = 64, suite: str = "SPLASH-2") -> SweepSpec:
    apps = apps if apps is not None else SPLASH2
    return SweepSpec.grid(app=apps, scheme=(*OVERHEAD_SCHEMES, Scheme.NONE),
                          n_cores=n_cores)


def spec_fig6_4(runner: Runner, apps: list[str] | None = None,
                n_cores: int = 64) -> SweepSpec:
    apps = apps if apps is not None else BARRIER_INTENSIVE
    return SweepSpec.grid(app=apps, scheme=(*BARRIER_SCHEMES, Scheme.NONE),
                          n_cores=n_cores)


def spec_fig6_5(runner: Runner, apps: list[str] | None = None,
                splash_cores: int = 64,
                parsec_cores: int = 24) -> SweepSpec:
    apps = apps if apps is not None else ALL_APPS
    return _per_app_cores_spec(apps, splash_cores, parsec_cores,
                               BREAKDOWN_SCHEMES)


def spec_fig6_6(runner: Runner, apps: list[str] | None = None,
                sizes: tuple[int, ...] = (16, 32, 64)) -> SweepSpec:
    apps = apps if apps is not None else SPLASH2
    recovery_apps = apps[:5]
    spec = SweepSpec()
    for n_cores in sizes:
        spec += SweepSpec.grid(
            n_cores=n_cores, scheme=(*SCALABILITY_SCHEMES, Scheme.NONE),
            app=apps)
        spec += SweepSpec.grid(
            n_cores=n_cores, scheme=SCALABILITY_SCHEMES, app=recovery_apps,
            fault_at=_recovery_fault_at(runner, n_cores))
    return spec


def spec_fig6_7(runner: Runner, apps: list[str] | None = None,
                n_cores: int = 64) -> SweepSpec:
    apps = apps if apps is not None else LOW_ICHK
    return SweepSpec.grid(app=apps, scheme=(Scheme.GLOBAL, Scheme.REBOUND),
                          io_every=[_io_every(runner, n_cores), None],
                          n_cores=n_cores)


def spec_fig6_8(runner: Runner, apps: list[str] | None = None,
                n_cores: int = 64) -> SweepSpec:
    apps = apps if apps is not None else SPLASH2
    return SweepSpec.grid(scheme=POWER_SCHEMES, app=apps, n_cores=n_cores)


def spec_fig6_9(runner: Runner, apps: list[str] | None = None,
                sizes: tuple[int, ...] = (8, 16),
                variants: tuple[CampaignVariant, ...] = CAMPAIGN_VARIANTS,
                n_seeds: int = 3, base_seed: int = 100,
                mttf_intervals: float = 1.0) -> SweepSpec:
    apps = apps if apps is not None else CAMPAIGN_APPS
    return sum((SweepSpec.grid(
        n_cores=n_cores, scheme=variant.scheme, cluster=variant.cluster,
        app=apps,
        fault_plan=_campaign_plans(runner, n_cores, n_seeds, base_seed,
                                   mttf_intervals))
        for n_cores in sizes for variant in variants), SweepSpec())


def spec_fig_l_sensitivity(runner: Runner, apps: list[str] | None = None,
                           n_cores: int = 8, n_seeds: int = 2,
                           base_seed: int = 100,
                           mttf_intervals: float = 1.0,
                           l_fractions: tuple[float, ...] = L_FRACTIONS
                           ) -> SweepSpec:
    apps = apps if apps is not None else CAMPAIGN_APPS
    return SweepSpec.grid(
        n_cores=n_cores,
        detection_latency=_l_values(runner, n_cores, l_fractions),
        scheme=list(L_SENSITIVITY_SCHEMES), app=apps,
        fault_plan=_campaign_plans(runner, n_cores, n_seeds, base_seed,
                                   mttf_intervals))


def spec_table6_1(runner: Runner, apps: list[str] | None = None,
                  splash_cores: int = 64,
                  parsec_cores: int = 24) -> SweepSpec:
    apps = apps if apps is not None else ALL_APPS
    return _per_app_cores_spec(apps, splash_cores, parsec_cores,
                               Scheme.REBOUND)


def _keys_of(spec_fn):
    """A ``plan_*`` function (RunKey list) from a ``spec_*`` function."""
    def planner(runner: Runner, *args, **kwargs) -> list[RunKey]:
        return spec_fn(runner, *args, **kwargs).keys(runner)
    planner.__name__ = spec_fn.__name__.replace("spec_", "plan_")
    planner.__doc__ = spec_fn.__doc__
    return planner


plan_fig6_1 = _keys_of(spec_fig6_1)
plan_fig6_2 = _keys_of(spec_fig6_2)
plan_fig6_3 = _keys_of(spec_fig6_3)
plan_fig6_4 = _keys_of(spec_fig6_4)
plan_fig6_5 = _keys_of(spec_fig6_5)
plan_fig6_6 = _keys_of(spec_fig6_6)
plan_fig6_7 = _keys_of(spec_fig6_7)
plan_fig6_8 = _keys_of(spec_fig6_8)
plan_fig6_9 = _keys_of(spec_fig6_9)
plan_fig_l_sensitivity = _keys_of(spec_fig_l_sensitivity)
plan_table6_1 = _keys_of(spec_table6_1)


ALL_PLANS = {
    "fig6_1": plan_fig6_1,
    "fig6_2": plan_fig6_2,
    "fig6_3": plan_fig6_3,
    "fig6_4": plan_fig6_4,
    "fig6_5": plan_fig6_5,
    "fig6_6": plan_fig6_6,
    "fig6_7": plan_fig6_7,
    "fig6_8": plan_fig6_8,
    "fig6_9": plan_fig6_9,
    "fig_l_sensitivity": plan_fig_l_sensitivity,
    "table6_1": plan_table6_1,
}


def plan_experiment(name: str, runner: Runner, **kwargs) -> list[RunKey]:
    """Enumerate the runs experiment ``name`` needs (without running)."""
    if name not in ALL_PLANS:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"known: {sorted(ALL_PLANS)}")
    return ALL_PLANS[name](runner, **kwargs)


# ---------------------------------------------------------------------------
# convenience: run everything
# ---------------------------------------------------------------------------

ALL_EXPERIMENTS = {
    "fig6_1": fig6_1_ichk_parsec,
    "fig6_2": fig6_2_ichk_splash,
    "fig6_3": fig6_3_overhead,
    "fig6_4": fig6_4_barrier,
    "fig6_5": fig6_5_breakdown,
    "fig6_6": fig6_6_scalability,
    "fig6_7": fig6_7_io,
    "fig6_8": fig6_8_power,
    "fig6_9": fig6_9_campaign,
    "fig_l_sensitivity": fig_l_sensitivity,
    "table6_1": table6_1_characterization,
}


def run_experiment(name: str, runner: Runner | None = None,
                   **kwargs) -> ExperimentResult:
    """Run one named experiment (see :data:`ALL_EXPERIMENTS`)."""
    if name not in ALL_EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"known: {sorted(ALL_EXPERIMENTS)}")
    runner = runner or Runner()
    return ALL_EXPERIMENTS[name](runner, **kwargs)
