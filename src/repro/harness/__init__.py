"""Experiment harness: regenerates every figure/table of Chapter 6."""

from repro.harness.engine import ExperimentEngine, RunKey, execute_run
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ALL_PLANS,
    ExperimentResult,
    fig6_1_ichk_parsec,
    fig6_2_ichk_splash,
    fig6_3_overhead,
    fig6_4_barrier,
    fig6_5_breakdown,
    fig6_6_scalability,
    fig6_7_io,
    fig6_8_power,
    plan_experiment,
    run_experiment,
    table6_1_characterization,
)
from repro.harness.report import format_bars, format_table, percent
from repro.harness.runner import Runner
from repro.harness.scenario import Overrides, SweepSpec

__all__ = [
    "Runner",
    "RunKey",
    "Overrides",
    "SweepSpec",
    "ExperimentEngine",
    "execute_run",
    "ExperimentResult",
    "run_experiment",
    "plan_experiment",
    "ALL_EXPERIMENTS",
    "ALL_PLANS",
    "fig6_1_ichk_parsec",
    "fig6_2_ichk_splash",
    "fig6_3_overhead",
    "fig6_4_barrier",
    "fig6_5_breakdown",
    "fig6_6_scalability",
    "fig6_7_io",
    "fig6_8_power",
    "table6_1_characterization",
    "format_table",
    "format_bars",
    "percent",
]
