"""Experiment harness: regenerates every figure/table of Chapter 6."""

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    fig6_1_ichk_parsec,
    fig6_2_ichk_splash,
    fig6_3_overhead,
    fig6_4_barrier,
    fig6_5_breakdown,
    fig6_6_scalability,
    fig6_7_io,
    fig6_8_power,
    run_experiment,
    table6_1_characterization,
)
from repro.harness.report import format_bars, format_table, percent
from repro.harness.runner import Runner, RunKey

__all__ = [
    "Runner",
    "RunKey",
    "ExperimentResult",
    "run_experiment",
    "ALL_EXPERIMENTS",
    "fig6_1_ichk_parsec",
    "fig6_2_ichk_splash",
    "fig6_3_overhead",
    "fig6_4_barrier",
    "fig6_5_breakdown",
    "fig6_6_scalability",
    "fig6_7_io",
    "fig6_8_power",
    "table6_1_characterization",
    "format_table",
    "format_bars",
    "percent",
]
