"""Plain-text rendering of experiment results (tables and bar rows).

The harness prints the same rows/series the paper's figures plot, plus a
short "paper says / we measured" comparison line per experiment that
EXPERIMENTS.md collects.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Fixed-width table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(
            cell.rjust(widths[i]) if _numeric(cell) else
            cell.ljust(widths[i])
            for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bars(label_values: Sequence[tuple[str, float]], unit: str = "%",
                width: int = 40, title: str = "") -> str:
    """ASCII bar chart (one row per label)."""
    lines = []
    if title:
        lines.append(title)
    peak = max((v for _, v in label_values), default=0.0)
    scale = width / peak if peak > 0 else 0.0
    label_w = max((len(l) for l, _ in label_values), default=0)
    for label, value in label_values:
        bar = "#" * max(0, int(round(value * scale)))
        lines.append(f"{label.ljust(label_w)}  {value:8.2f}{unit}  {bar}")
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    stripped = cell.replace("%", "").replace(",", "").replace("-", "") \
        .replace(".", "").replace("+", "")
    return stripped.isdigit() if stripped else False
