"""Campaign service: a persistent, sharded experiment server.

The batch :class:`~repro.harness.engine.ExperimentEngine` plans, pools
and exits; a million-run campaign is a workload to *serve*, not a
script to babysit.  This module promotes the engine into a
long-running service:

* **Streaming submissions** — clients spool jobs (priority-ordered
  sets of :class:`~repro.harness.engine.RunKey`) into a file-based job
  queue; the server drains it highest-priority-first, re-scanning
  between jobs so late submissions and cancellations take effect
  immediately.  The spool is plain files under one directory (no
  network dependencies): submit/status/cancel work from any process —
  including while the server is down — and survive restarts by
  construction.

* **Incremental results** — every landed run is appended to a JSONL
  *result journal* by a background writer thread
  (:class:`AsyncJournalWriter`), the moment the engine's
  outcome-landing hook fires.  Progress is observable per job (state
  files updated as results land) and a partial campaign still has a
  partial summary.

* **Restart replay** — the journal (fingerprint-invalidated, exactly
  like the result cache) plus the engine's disk cache are replayed on
  startup: a campaign killed mid-flight resumes with **zero
  recomputation** of landed runs.  Pool workers write their own cache
  entries, so even results that never reached the journal (killed
  between landing and append) replay from disk.

* **Cancellation** — touching a cancel marker stops a running job
  cooperatively: un-submitted chunks are dropped, in-flight chunks
  drain and land, and the job reports a partial summary over exactly
  the runs that landed.

Spool layout (``REPRO_SERVE_SPOOL`` or ``<cache_dir>/service``)::

    queue/<job>.job    pickled submission (keys, priority, label)
    state/<job>.json   live job status, atomically replaced
    cancel/<job>       cancel marker (touch to cancel)
    journal.jsonl      append-only result journal
    stop               stop marker: a running server exits its loop

Journal format: one JSON object per line —
``{"job", "key", "fingerprint", "source", "seconds", "t", "pkl"}`` —
where ``pkl`` is the base64 pickle of ``(RunKey, SimStats)`` and
``fingerprint`` is the engine's code fingerprint at landing time, so
replay after a simulator change recomputes instead of serving stale
physics.  A truncated final line (the kill arrived mid-write) is
skipped on replay, never a crash.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.harness.engine import (
    ExperimentEngine,
    RunKey,
    StreamReport,
    code_fingerprint,
    default_cache_dir,
)
from repro.sim import SimStats
from repro.sim.stats import CampaignSummary

JOURNAL_NAME = "journal.jsonl"

#: Job states a client can observe.  ``queued`` and ``running`` are
#: live; the other three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


def default_spool_dir() -> Path:
    """``REPRO_SERVE_SPOOL`` or ``<result cache dir>/service``."""
    env = os.environ.get("REPRO_SERVE_SPOOL")
    if env:
        return Path(env)
    return default_cache_dir() / "service"


class AsyncJournalWriter:
    """Append-only JSONL writer fed from a background thread.

    Landing a result must never stall on disk latency — appends go
    through an unbounded queue consumed by one daemon thread, which
    writes records in landing order and flushes to the OS whenever the
    queue drains (so a SIGKILL loses at most the records still in the
    queue, and the engine's disk cache covers even those).
    ``flush()`` blocks until everything queued so far is on disk;
    ``close()`` drains and joins the thread.
    """

    _STOP = object()

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._queue: queue.Queue = queue.Queue()
        self.written = 0
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="journal-writer")
        self._thread.start()

    def append(self, record: dict) -> None:
        self._queue.put(record)

    def flush(self) -> None:
        """Block until every record queued before this call is written
        and flushed (a flush marker rides the same ordered queue)."""
        done = threading.Event()
        self._queue.put(done)
        done.wait()

    def close(self) -> None:
        if self._thread.is_alive():
            self._queue.put(self._STOP)
            self._thread.join()
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def _loop(self) -> None:
        # Flushes are throttled: when the queue keeps draining (tiny
        # runs land faster than the fs can sync) a flush per record
        # would cost a write syscall per landing.  A 50ms window bounds
        # the kill-loss to records the engine's disk cache holds anyway.
        last_flush = float("-inf")
        while True:
            item = self._queue.get()
            if item is self._STOP:
                break
            if isinstance(item, threading.Event):
                self._fh.flush()
                last_flush = time.monotonic()
                item.set()
                continue
            payload = item.pop("_payload", None)
            if payload is not None:
                # Serialization happens here, off the landing thread:
                # landing a result costs the engine one queue put.
                item["pkl"] = base64.b64encode(pickle.dumps(
                    payload,
                    protocol=pickle.HIGHEST_PROTOCOL)).decode()
            self._fh.write(json.dumps(item, sort_keys=True) + "\n")
            self.written += 1
            if self._queue.empty() \
                    and time.monotonic() - last_flush >= 0.05:
                self._fh.flush()
                last_flush = time.monotonic()


@dataclass
class JobRecord:
    """One spooled submission, as the server sees it."""

    job_id: str
    keys: list
    priority: int = 0
    label: str = ""
    seq: int = 0                   # submission order within a priority
    submitted_at: float = 0.0

    def sort_key(self) -> tuple:
        # Highest priority first; FIFO within a priority.
        return (-self.priority, self.seq, self.job_id)


class CampaignService:
    """The persistent experiment server (and its client API).

    Client-side operations (``submit`` / ``cancel`` / ``status`` /
    ``wait`` / ``request_stop``) only touch the spool and work without
    an engine — from a different process than the server, or with no
    server running at all.  Server-side operations (``serve`` /
    ``run_job`` / ``replay``) execute jobs through the wrapped
    :class:`~repro.harness.engine.ExperimentEngine`: chunked affinity
    dispatch across the worker pool, worker-side cache writes,
    vectorized replica batches — the whole batch data plane, reused
    per job.
    """

    def __init__(self, spool_dir: Optional[os.PathLike] = None,
                 engine: Optional[ExperimentEngine] = None):
        self.spool = Path(spool_dir) if spool_dir is not None \
            else default_spool_dir()
        self.queue_dir = self.spool / "queue"
        self.state_dir = self.spool / "state"
        self.cancel_dir = self.spool / "cancel"
        self.journal_path = self.spool / JOURNAL_NAME
        for directory in (self.queue_dir, self.state_dir,
                          self.cancel_dir):
            directory.mkdir(parents=True, exist_ok=True)
        self.engine = engine
        self._writer: Optional[AsyncJournalWriter] = None
        #: Journal index: job id -> set of key reprs already landed
        #: (so a resumed job never journals a key twice).
        self._journaled: dict[str, set[str]] = {}
        self._replayed = False
        self._submit_counter = 0

    # ------------------------------------------------------------------
    # client side: the spool protocol
    # ------------------------------------------------------------------
    def submit(self, keys: Iterable[RunKey], priority: int = 0,
               label: str = "", job_id: Optional[str] = None) -> str:
        """Spool a job; returns its id.  Safe with or without a server
        running — the submission is one atomically-renamed file."""
        keys = list(dict.fromkeys(keys))
        if not keys:
            raise ValueError("a job needs at least one RunKey")
        self._submit_counter += 1
        if job_id is None:
            job_id = (f"job-{time.time_ns():x}-{os.getpid()}"
                      f"-{self._submit_counter}")
        if any(c in job_id for c in "/\\") or job_id in (".", ".."):
            raise ValueError(f"invalid job id {job_id!r}")
        path = self.queue_dir / f"{job_id}.job"
        if path.exists() or (self.state_dir / f"{job_id}.json").exists():
            raise ValueError(f"job id {job_id!r} already exists")
        payload = {
            "job_id": job_id,
            "priority": int(priority),
            "label": label,
            "seq": time.time_ns(),
            "submitted_at": time.time(),
            "keys": keys,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._write_state({"job": job_id, "state": "queued",
                           "label": label, "priority": int(priority),
                           "total": len(keys), "landed": 0,
                           "computed": 0, "replayed": 0, "failed": 0,
                           "pending": len(keys),
                           "submitted_at": payload["submitted_at"]})
        return job_id

    def cancel(self, job_id: str) -> bool:
        """Request cancellation: queued jobs never start; a running job
        stops at its next landing boundary and keeps what landed.
        Returns False for unknown jobs."""
        if self.status(job_id) is None:
            return False
        (self.cancel_dir / job_id).touch()
        status = self.status(job_id) or {}
        if status.get("state") == "queued":
            # No server race: a starting server re-checks the marker
            # before running, so marking here is purely observational.
            status["state"] = "cancelled"
            self._write_state(status)
        return True

    def cancel_requested(self, job_id: str) -> bool:
        return (self.cancel_dir / job_id).exists()

    def status(self, job_id: str) -> Optional[dict]:
        """The job's live status dict, or None if unknown."""
        path = self.state_dir / f"{job_id}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            pass
        # Submitted by an older client that wrote no state file yet:
        # derive a queued status from the job file.
        job = self._load_job(self.queue_dir / f"{job_id}.job")
        if job is None:
            return None
        return {"job": job.job_id, "state": "queued", "label": job.label,
                "priority": job.priority, "total": len(job.keys),
                "landed": 0, "computed": 0, "replayed": 0, "failed": 0,
                "pending": len(job.keys),
                "submitted_at": job.submitted_at}

    def statuses(self) -> list[dict]:
        """Every known job's status, newest submission first."""
        rows = {}
        for path in self.state_dir.glob("*.json"):
            try:
                status = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            rows[status.get("job")] = status
        for path in self.queue_dir.glob("*.job"):
            job_id = path.stem
            if job_id not in rows:
                status = self.status(job_id)
                if status is not None:
                    rows[job_id] = status
        return sorted(rows.values(),
                      key=lambda s: -s.get("submitted_at", 0.0))

    def wait(self, job_ids: Optional[list[str]] = None,
             timeout: Optional[float] = None,
             poll: float = 0.1) -> bool:
        """Client-side drain: block until the given jobs (default: all
        known jobs) reach a terminal state.  True on success, False on
        timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            statuses = ([self.status(job_id) for job_id in job_ids]
                        if job_ids is not None else self.statuses())
            live = [s for s in statuses
                    if s is not None and s.get("state")
                    not in TERMINAL_STATES]
            if not live:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(poll)

    def request_stop(self) -> None:
        """Ask a running server to exit after its current job."""
        (self.spool / "stop").touch()

    def stop_requested(self) -> bool:
        return (self.spool / "stop").exists()

    # ------------------------------------------------------------------
    # server side: replay, execution, the serve loop
    # ------------------------------------------------------------------
    def _require_engine(self) -> ExperimentEngine:
        if self.engine is None:
            raise RuntimeError("this CampaignService is client-only; "
                               "construct it with an ExperimentEngine "
                               "to serve jobs")
        return self.engine

    def replay(self) -> int:
        """Load the journal into the engine's memo (once per service).

        Entries whose code fingerprint no longer matches are skipped —
        the journal invalidates exactly like the result cache — as are
        truncated or unreadable lines (a SIGKILL can land mid-write).
        Returns the number of results replayed into the memo.
        """
        engine = self._require_engine()
        if self._replayed:
            return 0
        self._replayed = True
        loaded = 0
        current = code_fingerprint()
        for record in self._journal_records():
            self._journaled.setdefault(record["job"], set()).add(
                record["key"])
            if record.get("fingerprint") != current:
                continue
            payload = self._decode_payload(record)
            if payload is None:
                continue
            key, stats = payload
            if key not in engine.memo:
                engine.memo[key] = stats
                loaded += 1
        return loaded

    def run_job(self, job: JobRecord) -> StreamReport:
        """Execute one job through the engine, streaming every landed
        result to the journal and the job's state file."""
        engine = self._require_engine()
        self.replay()
        writer = self._journal_writer()
        already = self._journaled.setdefault(job.job_id, set())
        status = self.status(job.job_id) or {"job": job.job_id}
        status.update(state="running", label=job.label,
                      priority=job.priority, total=len(job.keys),
                      landed=0, computed=0, replayed=0, failed=0,
                      pending=len(job.keys),
                      submitted_at=job.submitted_at or
                      status.get("submitted_at", 0.0))
        self._write_state(status)
        last_write = time.monotonic()
        fingerprint = code_fingerprint()

        def on_land(key: RunKey, stats: SimStats, source: str,
                    seconds: float) -> None:
            nonlocal last_write
            text = repr(key)
            if text not in already:
                already.add(text)
                writer.append({
                    "job": job.job_id,
                    "key": text,
                    "fingerprint": fingerprint,
                    "source": source,
                    "seconds": round(seconds, 6),
                    "t": time.time(),
                    "_payload": (key, stats),
                })
            status["landed"] = status.get("landed", 0) + 1
            if source == "run":
                status["computed"] += 1
            else:
                status["replayed"] += 1
            status["pending"] = max(0, len(job.keys) - status["landed"])
            now = time.monotonic()
            if now - last_write >= 0.2:
                last_write = now
                self._write_state(status)

        # The marker check is a stat() and the engine polls between
        # landings — throttle to ~20 polls/s so a million tiny runs
        # don't pay a filesystem round-trip each (cancellation latency
        # of 50ms is invisible next to chunk drain time).
        poll_state = {"at": float("-inf"), "cancelled": False}

        def should_cancel() -> bool:
            now = time.monotonic()
            if not poll_state["cancelled"] \
                    and now - poll_state["at"] >= 0.05:
                poll_state["at"] = now
                poll_state["cancelled"] = \
                    self.cancel_requested(job.job_id)
            return poll_state["cancelled"]

        report = engine.run_stream(job.keys, on_land=on_land,
                                   should_cancel=should_cancel)
        writer.flush()
        status["failed"] = len(report.failures)
        status["pending"] = len(report.pending)
        if report.cancelled:
            status["state"] = "cancelled"
        elif report.failures:
            status["state"] = "failed"
            status["failures"] = [
                engine.describe_failure(key, exc)
                for key, exc in report.failures[:10]]
        else:
            status["state"] = "done"
        self._write_state(status)
        return report

    def pending_jobs(self) -> list[JobRecord]:
        """Spooled jobs that still need a server, best first."""
        jobs = []
        for path in sorted(self.queue_dir.glob("*.job")):
            job = self._load_job(path)
            if job is None:
                continue
            status = self.status(job.job_id) or {}
            if status.get("state") in TERMINAL_STATES:
                continue
            if self.cancel_requested(job.job_id):
                status.update(state="cancelled")
                self._write_state(status)
                continue
            jobs.append(job)
        return sorted(jobs, key=JobRecord.sort_key)

    def serve(self, poll: float = 0.5, drain: bool = False,
              max_seconds: Optional[float] = None,
              on_idle: Optional[Callable[[], None]] = None) -> int:
        """The server loop: replay, then execute spooled jobs until a
        stop is requested (or, with ``drain=True``, until the queue is
        empty).  Re-scans the spool after every job so cancellations
        and higher-priority submissions take effect at job boundaries.
        Returns the number of jobs executed.
        """
        self._require_engine()
        # A stop marker left by a previous shutdown must not kill the
        # fresh server before it serves anything.
        self._clear_stop()
        self.replay()
        processed = 0
        started = time.monotonic()
        while True:
            if self.stop_requested():
                self._clear_stop()
                break
            jobs = self.pending_jobs()
            if not jobs:
                if drain:
                    break
                if (max_seconds is not None
                        and time.monotonic() - started > max_seconds):
                    break
                if on_idle is not None:
                    on_idle()
                time.sleep(poll)
                continue
            self.run_job(jobs[0])
            processed += 1
        self.close()
        return processed

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def summarize(self, job_id: str) -> CampaignSummary:
        """Campaign distributions over the runs of ``job_id`` that have
        landed in the journal — for a finished job this is bit-identical
        to ``summarize_campaign`` over the batch engine's results; for
        a cancelled or still-running job it is the partial summary of
        exactly the landed runs."""
        summary = CampaignSummary()
        current = code_fingerprint()
        seen: dict[str, SimStats] = {}
        for record in self._journal_records():
            if record["job"] != job_id:
                continue
            if record.get("fingerprint") != current:
                continue
            payload = self._decode_payload(record)
            if payload is None:
                continue
            seen[record["key"]] = payload[1]
        for stats in seen.values():
            summary.add(stats)
        return summary

    def job_results(self, job_id: str) -> dict[RunKey, SimStats]:
        """The landed results of one job, straight from the journal."""
        results: dict[RunKey, SimStats] = {}
        current = code_fingerprint()
        for record in self._journal_records():
            if record["job"] != job_id \
                    or record.get("fingerprint") != current:
                continue
            payload = self._decode_payload(record)
            if payload is not None:
                results[payload[0]] = payload[1]
        return results

    def close(self) -> None:
        """Flush and stop the journal writer thread."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _journal_writer(self) -> AsyncJournalWriter:
        if self._writer is None:
            self._writer = AsyncJournalWriter(self.journal_path)
        return self._writer

    def _journal_records(self):
        """Parsed journal lines, oldest first; garbage lines (torn
        writes from a kill) are skipped."""
        try:
            with self.journal_path.open("r", encoding="utf-8") as fh:
                for line in fh:
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict) and "job" in record \
                            and "key" in record:
                        yield record
        except OSError:
            return

    @staticmethod
    def _decode_payload(record: dict
                        ) -> Optional[tuple[RunKey, SimStats]]:
        try:
            key, stats = pickle.loads(
                base64.b64decode(record["pkl"]))
        except Exception:  # noqa: BLE001 - corrupt entry is a miss
            return None
        if not isinstance(key, RunKey) or not isinstance(stats, SimStats):
            return None
        return key, stats

    def _load_job(self, path: Path) -> Optional[JobRecord]:
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            keys = list(payload["keys"])
            if not all(isinstance(key, RunKey) for key in keys):
                return None
            return JobRecord(job_id=payload["job_id"], keys=keys,
                             priority=payload.get("priority", 0),
                             label=payload.get("label", ""),
                             seq=payload.get("seq", 0),
                             submitted_at=payload.get("submitted_at",
                                                      0.0))
        except Exception:  # noqa: BLE001 - torn submission: skip
            return None

    def _write_state(self, status: dict) -> None:
        path = self.state_dir / f"{status['job']}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(status, sort_keys=True) + "\n")
            os.replace(tmp, path)
        except OSError:
            pass  # status is observability, never worth crashing a job

    def _clear_stop(self) -> None:
        try:
            (self.spool / "stop").unlink()
        except OSError:
            pass
