"""Content-addressed on-disk workload store.

Every simulation run starts from a generated workload, and many runs
share one: all the schemes of a figure sweep, every fault plan of a
campaign and every config-override grid point at the same
``(app, n_cores, interval, intervals, seed)`` replay the *same* traces.
Before this store, each pool worker re-ran ``SyntheticWorkload`` from
the profile for every run; now the engine prebuilds each unique
workload once and the workers deserialize the compact compiled-trace IR
(:meth:`repro.workloads.base.WorkloadSpec.to_bytes`) instead.

Content addressing: an entry's file name is a SHA-256 over

* the *generator fingerprint* — the ``repro.workloads`` package sources
  plus ``repro/trace.py``, the interpreter's (major, minor) version,
  the platform byte order and the store format version — so any change
  to the generators or the IR silently invalidates every entry, and a
  store shared across interpreter lines or architectures never serves a
  foreign byte image;
* the workload's *content fingerprint* from the registry (built-ins use
  the profile repr; registered generators opt in via
  ``register_workload(..., fingerprint=...)`` — no fingerprint means
  the store is bypassed and the workload is rebuilt per run);
* the build parameters ``n_threads``, ``checkpoint_interval``,
  ``intervals`` and ``seed``.

Stale entries are never read; delete the directory to reclaim space.
The store is best-effort like the result cache: unreadable or corrupt
entries are rebuilt, write failures are reported once and ignored —
both are *counted* (``corrupt_rebuilds``, ``write_failures``) and the
engine surfaces the counters in ``--profile`` output.

Zero-copy loads: entries are loaded by **mmap-ing** the store file and
building the spec as read-only memoryview traces over the mapping
(:meth:`WorkloadSpec.from_buffer`) — no read, no parse-time copy; the
views keep the mapping alive.  ``REPRO_MMAP=0`` falls back to the
copying ``read_bytes`` + ``from_bytes`` path.  On top of that sits a
small per-store (hence per-worker-process) **LRU of loaded specs**
keyed by digest (``REPRO_WORKER_LRU`` entries, default 16; 0 disables),
so a worker that runs hundreds of tasks of one workload maps and
parses it once — the engine's chunked dispatch packs same-digest tasks
into the same worker to maximize exactly this hit rate.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import sys
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from repro.params import MachineConfig
from repro.workloads import get_workload, workload_fingerprint
from repro.workloads.base import WORKLOAD_WIRE_FORMAT, WorkloadSpec
from repro.workloads.registry import is_builtin_workload

#: Default capacity of the per-store loaded-spec LRU.
DEFAULT_LRU_CAPACITY = 16


def _env_capacity() -> int:
    env = os.environ.get("REPRO_WORKER_LRU")
    if not env:
        return DEFAULT_LRU_CAPACITY
    try:
        return max(0, int(env))
    except ValueError:
        raise ValueError(f"REPRO_WORKER_LRU must be an integer entry "
                         f"count, got {env!r}") from None


def _env_mmap() -> bool:
    env = os.environ.get("REPRO_MMAP")
    if env is None or env == "":
        return True
    from repro.harness.engine import _env_flag
    return _env_flag("REPRO_MMAP", env)

_WORKLOADS_DIR = Path(__file__).resolve().parents[1] / "workloads"
_TRACE_MODULE = Path(__file__).resolve().parents[1] / "trace.py"

_GENERATOR_FINGERPRINT: Optional[str] = None


def generator_fingerprint() -> str:
    """SHA-256 over the workload-generator sources and the IR format.

    Deliberately narrower than the engine's whole-package
    ``code_fingerprint``: a simulator change invalidates cached
    *results* but not the stored *workloads* — traces only depend on
    the generators and the trace IR.
    """
    global _GENERATOR_FINGERPRINT
    if _GENERATOR_FINGERPRINT is None:
        digest = hashlib.sha256(
            f"wire:{WORKLOAD_WIRE_FORMAT}"
            f"|python:{sys.version_info[0]}.{sys.version_info[1]}"
            f"|byteorder:{sys.byteorder}".encode())
        paths = sorted(_WORKLOADS_DIR.rglob("*.py")) + [_TRACE_MODULE]
        for path in paths:
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _GENERATOR_FINGERPRINT = digest.hexdigest()
    return _GENERATOR_FINGERPRINT


class WorkloadStore:
    """Loads/saves serialized workloads under one directory.

    ``hits``/``misses`` count this process's load outcomes (pool
    workers keep their own instances, so the counters describe the
    in-process store only).
    """

    def __init__(self, root: os.PathLike,
                 lru_capacity: Optional[int] = None,
                 use_mmap: Optional[bool] = None):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.builds = 0        # entries actually generated (miss or ensure)
        #: Loads served from the in-process LRU (subset of ``hits``):
        #: no file I/O, no parse, the previously loaded spec object.
        self.lru_hits = 0
        #: Entries that existed on disk but failed to parse and were
        #: rebuilt — a nonzero count means something is corrupting the
        #: store (torn writes survive ``os.replace``? foreign bytes?).
        self.corrupt_rebuilds = 0
        #: Failed entry writes (the first one also disables the store).
        self.write_failures = 0
        #: Set on the first failed write: an unwritable store would
        #: otherwise pay mkdir + tmp-write + rebuild on every run while
        #: claiming to be disabled.
        self.disabled = False
        self._lru_capacity = lru_capacity if lru_capacity is not None \
            else _env_capacity()
        self._use_mmap = use_mmap if use_mmap is not None else _env_mmap()
        self._lru: OrderedDict[str, WorkloadSpec] = OrderedDict()

    def counters(self) -> dict[str, int]:
        """The load/build/failure counters as one dict — what a pool
        worker ships back so the engine can aggregate store behaviour
        across processes for ``--profile``."""
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds, "lru_hits": self.lru_hits,
                "corrupt_rebuilds": self.corrupt_rebuilds,
                "write_failures": self.write_failures}

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def digest_for(self, app, n_threads: int, config: MachineConfig,
                   intervals: float, seed: int) -> Optional[str]:
        """The entry name for this build, or None if the workload's
        generator has no content fingerprint (store bypass).

        Built-in generators consume only ``config.checkpoint_interval``,
        so their entries are shared across every other config axis
        (schemes, overrides, ...).  Registered generators receive the
        full config, so they are keyed by the whole resolved config —
        a static ``fingerprint`` string could not express a
        config-dependent output, and a too-narrow key would silently
        serve one grid point's workload to every sweep point.
        """
        content = workload_fingerprint(app)
        if content is None:
            return None
        if is_builtin_workload(app):
            config_key = f"interval:{config.checkpoint_interval}"
        else:
            config_key = f"config:{config!r}"
        ident = (f"{generator_fingerprint()}|{content}"
                 f"|threads:{n_threads}|{config_key}"
                 f"|intervals:{intervals!r}|seed:{seed}")
        return hashlib.sha256(ident.encode()).hexdigest()

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.wl"

    # ------------------------------------------------------------------
    # load/save (best-effort, like the result cache)
    # ------------------------------------------------------------------
    def load(self, digest: str) -> Optional[WorkloadSpec]:
        spec = self._lru.get(digest)
        if spec is not None:
            self._lru.move_to_end(digest)
            self.lru_hits += 1
            return spec
        path = self.path_for(digest)
        try:
            if self._use_mmap:
                with path.open("rb") as fh:
                    # The mapping outlives the handle: the spec's trace
                    # views hold it alive, the fd can close immediately.
                    mapped = mmap.mmap(fh.fileno(), 0,
                                       access=mmap.ACCESS_READ)
                spec = WorkloadSpec.from_buffer(mapped)
            else:
                spec = WorkloadSpec.from_bytes(path.read_bytes())
        except FileNotFoundError:
            return None            # a clean miss, not a corrupt entry
        except Exception:
            # Truncated or foreign entry: a miss, never a crash — but a
            # *counted* one, so --profile can surface a store that is
            # silently rebuilding on every run.
            self.corrupt_rebuilds += 1
            return None
        self._remember(digest, spec)
        return spec

    def _remember(self, digest: str, spec: WorkloadSpec) -> None:
        if self._lru_capacity <= 0:
            return
        self._lru[digest] = spec
        self._lru.move_to_end(digest)
        while len(self._lru) > self._lru_capacity:
            self._lru.popitem(last=False)

    def save(self, digest: str, spec: WorkloadSpec) -> None:
        if self.disabled:
            return
        path = self.path_for(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(spec.to_bytes())
            os.replace(tmp, path)  # atomic vs. concurrent workers
        except OSError as exc:
            self.write_failures += 1
            self.disabled = True
            print(f"  [engine] warning: workload store disabled "
                  f"({self.root}: {exc})", flush=True)

    # ------------------------------------------------------------------
    # the two entry points
    # ------------------------------------------------------------------
    def get_or_build(self, app, n_threads: int, config: MachineConfig,
                     intervals: float, seed: int) -> WorkloadSpec:
        """The workload for these parameters: a store hit when possible,
        a fresh (and then stored) build otherwise."""
        digest = self.digest_for(app, n_threads, config, intervals, seed)
        if digest is None or self.disabled:
            return get_workload(app, n_threads, config,
                                intervals=intervals, seed=seed)
        spec = self.load(digest)
        if spec is not None:
            self.hits += 1
            return spec
        self.misses += 1
        spec = get_workload(app, n_threads, config,
                            intervals=intervals, seed=seed)
        self.builds += 1
        self.save(digest, spec)
        self._remember(digest, spec)
        return spec

    def ensure(self, app, n_threads: int, config: MachineConfig,
               intervals: float, seed: int) -> Optional[str]:
        """Make sure the entry exists (the engine's prebuild pass);
        returns the digest, or None when the store is bypassed."""
        if self.disabled:
            return None
        digest = self.digest_for(app, n_threads, config, intervals, seed)
        if digest is None or self.path_for(digest).exists():
            return digest
        spec = get_workload(app, n_threads, config,
                            intervals=intervals, seed=seed)
        self.builds += 1        # only counted once the build succeeded
        self.save(digest, spec)
        return digest
