"""Experiment execution engine: planned, parallel, disk-cached runs.

Every figure of the evaluation chapter is a set of independent
simulations identified by a :class:`RunKey`.  The engine lets the
experiment drivers *plan* those key sets up front, deduplicates them
(many figures share runs, e.g. an app's no-checkpointing baseline),
executes the unique missing runs concurrently on a
``ProcessPoolExecutor``, and persists every completed :class:`SimStats`
to an on-disk cache so later sessions and CI replay results instead of
recomputing them.

Cache invalidation: each entry's file name hashes the :class:`RunKey`
together with a *code fingerprint* — a SHA-256 over every ``*.py`` file
of the ``repro`` package, the interpreter's (major, minor) version and
the pickle protocol — so any change to the simulator (or a cache dir
shared across Python versions) silently invalidates all previous
results.  Stale files are never read; delete the cache directory to
reclaim the space.

Knobs (CLI flags on ``python -m repro.harness`` map onto the same
settings)::

    REPRO_JOBS        worker processes (default: os.cpu_count())
    REPRO_CACHE_DIR   result cache location (default: benchmarks/.cache)
    REPRO_NO_CACHE    set to 1 to bypass the disk cache entirely
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.harness.scenario import EMPTY_OVERRIDES, Overrides
from repro.params import MachineConfig, Scheme
from repro.sim import SimStats
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine
from repro.workloads import get_workload, inject_output_io

#: Bump when the pickled payload layout changes incompatibly.
CACHE_FORMAT = 1

_PACKAGE_DIR = Path(__file__).resolve().parents[1]
_REPO_ROOT = Path(__file__).resolve().parents[3]


@dataclass(frozen=True, repr=False)
class RunKey:
    """Identity of one simulation (also the memoization/cache key).

    ``overrides`` makes *any* :class:`MachineConfig` axis sweepable:
    a frozen, canonically-ordered mapping of config-field overrides
    (see :mod:`repro.harness.scenario`) that ``execute_run`` applies on
    top of ``MachineConfig.scaled``.  Field names are validated here at
    construction — a malformed key fails at plan time, never inside a
    pool worker.  Keys without overrides repr (and therefore cache)
    byte-identically to the pre-scenario layout.
    """

    app: str
    n_cores: int
    scheme: Scheme
    intervals: float
    seed: int
    scale: int
    io_every: Optional[int] = None       # output-I/O injection period
    fault_at: Optional[float] = None     # compat shim: one core-0 fault
    fault_plan: Optional[FaultPlan] = None   # seeded multi-fault campaign
    cluster: int = 1                     # Dep-register cluster size (Ch. 8)
    overrides: Overrides = EMPTY_OVERRIDES   # MachineConfig field overrides

    def __post_init__(self):
        if self.fault_plan is not None and self.fault_at is not None:
            raise ValueError(
                "RunKey.fault_at and RunKey.fault_plan are mutually "
                "exclusive; encode the single fault in the plan")
        if not isinstance(self.overrides, Overrides):
            # Accept plain mappings (and None) for convenience; the
            # Overrides constructor validates the field names.
            object.__setattr__(self, "overrides",
                               Overrides(self.overrides or {}))

    def __repr__(self) -> str:
        # Matches the auto-generated dataclass repr of the pre-override
        # layout exactly, appending ``overrides`` only when present: the
        # repr is the key-layout half of the disk-cache identity (the
        # other half, the source fingerprint, already invalidates
        # entries on any code change), so the key layout itself must
        # never become a second, accidental invalidation axis —
        # tests/test_scenario.py pins both layouts as golden values so
        # future layout changes are intentional.
        text = (f"RunKey(app={self.app!r}, n_cores={self.n_cores!r}, "
                f"scheme={self.scheme!r}, intervals={self.intervals!r}, "
                f"seed={self.seed!r}, scale={self.scale!r}, "
                f"io_every={self.io_every!r}, fault_at={self.fault_at!r}, "
                f"fault_plan={self.fault_plan!r}, cluster={self.cluster!r}")
        if self.overrides:
            text += f", overrides={self.overrides!r}"
        return text + ")"

    def fault_list(self) -> Optional[list[tuple[float, int]]]:
        """The faults this key injects (``fault_at`` is the legacy
        single-fault shim; a ``fault_plan`` supersedes it — the two are
        mutually exclusive, enforced at construction)."""
        if self.fault_plan is not None:
            return list(self.fault_plan.faults)
        if self.fault_at is not None:
            return [(self.fault_at, 0)]
        return None


def execute_run(key: RunKey) -> SimStats:
    """Build and run the simulation ``key`` describes (pure function)."""
    config = MachineConfig.scaled(n_cores=key.n_cores, scheme=key.scheme,
                                  scale=key.scale,
                                  dep_cluster_size=key.cluster)
    config = key.overrides.apply(config)
    workload = get_workload(key.app, key.n_cores, config,
                            intervals=key.intervals, seed=key.seed)
    if key.io_every is not None:
        workload = inject_output_io(spec=workload, pid=0,
                                    every_instructions=key.io_every)
    return Machine(config, workload, faults=key.fault_list()).run()


def _timed_run(key: RunKey) -> tuple[SimStats, float]:
    """Worker entry point: run ``key`` and report its wall-clock cost."""
    start = time.perf_counter()
    stats = execute_run(key)
    return stats, time.perf_counter() - start


_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package sources (cache invalidation).

    The interpreter's (major, minor) version and the pickle protocol are
    mixed in as well: cache directories shared across Python versions
    (CI's actions/cache, a laptop with several venvs) must never serve
    an entry pickled by a different interpreter line.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        digest = hashlib.sha256(
            f"format:{CACHE_FORMAT}"
            f"|python:{sys.version_info[0]}.{sys.version_info[1]}"
            f"|pickle:{pickle.HIGHEST_PROTOCOL}".encode())
        for path in sorted(_PACKAGE_DIR.rglob("*.py")):
            digest.update(str(path.relative_to(_PACKAGE_DIR)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` or the machine's CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` or ``benchmarks/.cache`` under the repo root.

    The repo-root derivation only holds for a src-layout checkout; for
    an installed package (no ``benchmarks/`` next to ``src/``) fall
    back to a dot-directory under the working directory instead of
    writing into the Python environment.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    if (_REPO_ROOT / "benchmarks").is_dir():
        return _REPO_ROOT / "benchmarks" / ".cache"
    return Path.cwd() / ".repro-cache"


class ExperimentEngine:
    """Plans, deduplicates, parallelizes and caches simulation runs.

    The in-memory memo guarantees object identity within a process (two
    requests for the same key return the *same* ``SimStats``); the disk
    cache makes repeated sessions near-instant.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_disk_cache: Optional[bool] = None,
                 verbose: bool = False):
        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        if use_disk_cache is None:
            use_disk_cache = os.environ.get("REPRO_NO_CACHE", "0") != "1"
        self.use_disk_cache = use_disk_cache
        self.verbose = verbose
        self.memo: dict[RunKey, SimStats] = {}
        #: Wall-clock seconds per key *computed* this session (not cached).
        self.profile: dict[RunKey, float] = {}
        self.disk_hits = 0
        self._store_warned = False

    # ------------------------------------------------------------------
    # disk cache
    # ------------------------------------------------------------------
    def _cache_path(self, key: RunKey) -> Path:
        ident = f"{code_fingerprint()}|{key!r}"
        digest = hashlib.sha256(ident.encode()).hexdigest()
        return self.cache_dir / f"{digest}.pkl"

    def _load_cached(self, key: RunKey) -> Optional[SimStats]:
        if not self.use_disk_cache:
            return None
        path = self._cache_path(key)
        try:
            with path.open("rb") as fh:
                stats = pickle.load(fh)
        except Exception:
            # Best-effort cache: any unreadable/corrupt entry (truncated
            # write, garbled restore, unpicklable payload) is a miss,
            # never a crash.
            return None
        if not isinstance(stats, SimStats):
            return None
        self.disk_hits += 1
        return stats

    def _store_cached(self, key: RunKey, stats: SimStats) -> None:
        if not self.use_disk_cache:
            return
        path = self._cache_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as fh:
                pickle.dump(stats, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic vs. concurrent CI shards
        except OSError as exc:
            # Best-effort cache, but say so once: a typo'd --cache-dir
            # otherwise looks identical to a working one.
            if not self._store_warned:
                self._store_warned = True
                print(f"  [engine] warning: result cache disabled "
                      f"({self.cache_dir}: {exc})", flush=True)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, key: RunKey) -> SimStats:
        """Run (or recall) one simulation."""
        return self.run_many([key])[key]

    def prefetch(self, keys: Iterable[RunKey]) -> None:
        """Ensure every ``key`` is available (the planning entry point)."""
        self.run_many(keys)

    def run_many(self, keys: Iterable[RunKey]) -> dict[RunKey, SimStats]:
        """Deduplicate ``keys``, execute the missing ones, return all."""
        unique = list(dict.fromkeys(keys))
        missing = []
        for key in unique:
            if key in self.memo:
                continue
            cached = self._load_cached(key)
            if cached is not None:
                self.memo[key] = cached
            else:
                missing.append(key)
        if len(missing) > 1 and self.jobs > 1:
            self._run_parallel(missing)
        else:
            for key in missing:
                self._announce(key)
                stats, seconds = _timed_run(key)
                self._finish(key, stats, seconds)
        return {key: self.memo[key] for key in unique}

    def _run_parallel(self, missing: list[RunKey]) -> None:
        workers = min(self.jobs, len(missing))
        if self.verbose:  # pragma: no cover - progress printing
            print(f"  [engine] {len(missing)} runs on {workers} workers "
                  f"...", flush=True)
        failure: Optional[tuple[RunKey, BaseException]] = None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_timed_run, key): key for key in missing}
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    try:
                        stats, seconds = future.result()
                    except BaseException as exc:  # noqa: BLE001
                        # Keep draining so completed siblings still land
                        # in the cache; report the failing key (worker
                        # tracebacks don't carry argument values).
                        if failure is None:
                            failure = (key, exc)
                        continue
                    self._finish(key, stats, seconds)
        if failure is not None:
            key, exc = failure
            raise RuntimeError(
                f"simulation failed for {key.app} x{key.n_cores} "
                f"{key.scheme.value} (io_every={key.io_every}, "
                f"fault_at={key.fault_at}, fault_plan={key.fault_plan}, "
                f"cluster={key.cluster}, seed={key.seed}, "
                f"scale={key.scale}, overrides={dict(key.overrides)})"
                ) from exc

    def _announce(self, key: RunKey) -> None:
        if self.verbose:  # pragma: no cover - progress printing
            print(f"  running {key.app} x{key.n_cores} "
                  f"{key.scheme.value} ...", flush=True)

    def _finish(self, key: RunKey, stats: SimStats, seconds: float) -> None:
        self.memo[key] = stats
        self.profile[key] = seconds
        self._store_cached(key, stats)
        if self.verbose and self.jobs > 1:  # pragma: no cover
            print(f"  [engine] done {key.app} x{key.n_cores} "
                  f"{key.scheme.value} ({seconds:.1f}s)", flush=True)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def profile_rows(self) -> list[list]:
        """Per-run wall-clock rows (slowest first) for ``--profile``."""
        rows = []
        for key, seconds in sorted(self.profile.items(),
                                   key=lambda kv: -kv[1]):
            if key.fault_plan is not None:
                faults = f"plan[{key.fault_plan.n_faults}]"
            elif key.fault_at is not None:
                faults = f"{key.fault_at:,.0f}"
            else:
                faults = "-"
            rows.append([key.app, key.n_cores, key.scheme.value,
                         key.io_every if key.io_every is not None else "-",
                         faults,
                         f"{seconds:.2f}"])
        return rows
