"""Experiment execution engine: planned, parallel, disk-cached runs.

Every figure of the evaluation chapter is a set of independent
simulations identified by a :class:`RunKey`.  The engine lets the
experiment drivers *plan* those key sets up front, deduplicates them
(many figures share runs, e.g. an app's no-checkpointing baseline),
executes the unique missing runs concurrently on a
``ProcessPoolExecutor``, and persists every completed :class:`SimStats`
to an on-disk cache so later sessions and CI replay results instead of
recomputing them.

Cache invalidation: each entry's file name hashes the :class:`RunKey`
together with a *code fingerprint* — a SHA-256 over every ``*.py`` file
of the ``repro`` package, the interpreter's (major, minor) version and
the pickle protocol — so any change to the simulator (or a cache dir
shared across Python versions) silently invalidates all previous
results.  Stale files are never read; delete the cache directory to
reclaim the space.

Workload store: generated workloads are shared across runs through a
content-addressed store under ``<cache_dir>/workloads`` (see
:mod:`repro.harness.workload_store`): ``run_many`` prebuilds each
unique workload once and the pool workers mmap the entry and run over
read-only views of the compiled-trace IR instead of re-running
``SyntheticWorkload`` per run.  ``--no-cache`` (``REPRO_NO_CACHE=1``)
disables it along with the result cache.

Chunked dispatch: ``_run_parallel`` does not submit one pool future per
task — per-future overhead (pickling a RunKey, a result round-trip, an
executor wakeup) would dominate sub-second simulations.  Tasks are
packed into per-worker *chunks* (adaptive size, ``REPRO_CHUNK`` / the
``chunk_size`` argument to pin it), sorted so tasks sharing a workload
digest land in the same chunk — together with the store's per-process
spec LRU (``REPRO_WORKER_LRU``) a worker maps and parses each workload
once for its whole chunk.  Workers write completed results into the
disk cache themselves, so a chunk's finished siblings are persisted
even when a later task in the chunk raises; every failing task still
reports its own :class:`RunKey`.  Submission keeps a bounded in-flight
window (2 chunks per worker) so thousand-run campaigns don't hold every
pending future alive at once.

Vectorized campaign batches: ``run_many`` groups the missing keys by
everything except their faults — (workload, cores, scheme, intervals,
seed, scale, io_every, cluster, overrides) — and dispatches any group
with two or more members to the replica-batch executor
(:mod:`repro.sim.vector`): one fault-free leader machine walks the
shared workload once and each replica forks off it at its first
fault-detection time, producing bit-identical per-replica ``SimStats``.
Results are memoized and disk-cached *per key*, exactly like scalar
runs, so the cache format, the invariant harness and the campaign
summaries see no difference.  ``REPRO_VECTOR=0`` (or ``--vector=off``
mapped through the CLI's ``--no-vector``) forces the scalar path;
without numpy the engine falls back to scalar runs with a one-line
warning.

Knobs (CLI flags on ``python -m repro.harness`` map onto the same
settings)::

    REPRO_JOBS        worker processes (default: os.cpu_count())
    REPRO_CACHE_DIR   result cache location (default: benchmarks/.cache)
    REPRO_NO_CACHE    set to 1 to bypass the disk cache entirely
    REPRO_VECTOR      0 forces scalar campaign runs; unset/1 = auto
    REPRO_CHUNK       tasks per dispatch chunk (default: adaptive)
    REPRO_WORKER_LRU  per-process loaded-workload LRU size (default 16)
    REPRO_MMAP        0 forces copying workload loads; unset/1 = mmap
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.core.factory import fault_free_invariant_overrides
from repro.harness.scenario import EMPTY_OVERRIDES, Overrides
from repro.harness.workload_store import WorkloadStore
from repro.params import MachineConfig, Scheme
from repro.sim import SimStats
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine, UnforkableMachineError
from repro.sim.vector import have_numpy
from repro.workloads import (
    get_workload,
    inject_output_io,
    workload_fingerprint,
    workload_name,
)
from repro.workloads.registry import is_builtin_workload

#: Bump when the pickled payload layout changes incompatibly.
#: 2: useful-work accounting — SimStats/CoreStats grew the cycle-bucket
#:    counters (ckpt_backoff, stall_overhang, rollback_waste), so
#:    entries pickled before them would deserialize without the fields
#:    the campaign tables now read.
#: 3: memory-system fast path — SimStats grew the memsys counters
#:    (l1/l2 hits+misses, fastpath loads/stores/epochs, invalidations,
#:    mem_accesses) that ``--profile`` and the bench memsys section read.
CACHE_FORMAT = 3

_PACKAGE_DIR = Path(__file__).resolve().parents[1]
_REPO_ROOT = Path(__file__).resolve().parents[3]


@dataclass(frozen=True, repr=False)
class RunKey:
    """Identity of one simulation (also the memoization/cache key).

    ``overrides`` makes *any* :class:`MachineConfig` axis sweepable:
    a frozen, canonically-ordered mapping of config-field overrides
    (see :mod:`repro.harness.scenario`) that ``execute_run`` applies on
    top of ``MachineConfig.scaled``.  Field names are validated here at
    construction — a malformed key fails at plan time, never inside a
    pool worker.  Keys without overrides repr (and therefore cache)
    byte-identically to the pre-scenario layout.

    ``app`` is a built-in workload name (plain ``str``, the pre-registry
    cache identity) or the picklable
    :class:`~repro.workloads.registry.WorkloadTag` of an out-of-tree
    generator registered via ``register_workload``.
    """

    app: str  # or WorkloadTag (duck-typed via its ``value`` attribute)
    n_cores: int
    scheme: Scheme
    intervals: float
    seed: int
    scale: int
    io_every: Optional[int] = None       # output-I/O injection period
    fault_at: Optional[float] = None     # compat shim: one core-0 fault
    fault_plan: Optional[FaultPlan] = None   # seeded multi-fault campaign
    cluster: int = 1                     # Dep-register cluster size (Ch. 8)
    overrides: Overrides = EMPTY_OVERRIDES   # MachineConfig field overrides

    def __post_init__(self):
        if self.fault_plan is not None and self.fault_at is not None:
            raise ValueError(
                "RunKey.fault_at and RunKey.fault_plan are mutually "
                "exclusive; encode the single fault in the plan")
        if not isinstance(self.overrides, Overrides):
            # Accept plain mappings (and None) for convenience; the
            # Overrides constructor validates the field names.
            object.__setattr__(self, "overrides",
                               Overrides(self.overrides or {}))

    def __repr__(self) -> str:
        # Matches the auto-generated dataclass repr of the pre-override
        # layout exactly, appending ``overrides`` only when present: the
        # repr is the key-layout half of the disk-cache identity (the
        # other half, the source fingerprint, already invalidates
        # entries on any code change), so the key layout itself must
        # never become a second, accidental invalidation axis —
        # tests/test_scenario.py pins both layouts as golden values so
        # future layout changes are intentional.
        text = (f"RunKey(app={self.app!r}, n_cores={self.n_cores!r}, "
                f"scheme={self.scheme!r}, intervals={self.intervals!r}, "
                f"seed={self.seed!r}, scale={self.scale!r}, "
                f"io_every={self.io_every!r}, fault_at={self.fault_at!r}, "
                f"fault_plan={self.fault_plan!r}, cluster={self.cluster!r}")
        if self.overrides:
            text += f", overrides={self.overrides!r}"
        return text + ")"

    def fault_list(self) -> Optional[list[tuple[float, int]]]:
        """The faults this key injects (``fault_at`` is the legacy
        single-fault shim; a ``fault_plan`` supersedes it — the two are
        mutually exclusive, enforced at construction)."""
        if self.fault_plan is not None:
            return list(self.fault_plan.faults)
        if self.fault_at is not None:
            return [(self.fault_at, 0)]
        return None


def resolve_config(key: RunKey) -> MachineConfig:
    """The fully resolved :class:`MachineConfig` of a run (scaled base
    plus the key's overrides) — the workload-store address depends on
    it, so planning and execution share one derivation."""
    config = MachineConfig.scaled(n_cores=key.n_cores, scheme=key.scheme,
                                  scale=key.scale,
                                  dep_cluster_size=key.cluster)
    return key.overrides.apply(config)


def execute_run(key: RunKey,
                store: Optional[WorkloadStore] = None) -> SimStats:
    """Build and run the simulation ``key`` describes (pure function).

    With a ``store``, the base workload comes from the content-addressed
    workload store (deserialized compiled-trace IR) instead of being
    regenerated; the result is identical either way — the store is
    purely a build cache.
    """
    config = resolve_config(key)
    if store is not None:
        workload = store.get_or_build(key.app, key.n_cores, config,
                                      key.intervals, key.seed)
    else:
        workload = get_workload(key.app, key.n_cores, config,
                                intervals=key.intervals, seed=key.seed)
    if key.io_every is not None:
        workload = inject_output_io(spec=workload, pid=0,
                                    every_instructions=key.io_every)
    return Machine(config, workload, faults=key.fault_list()).run()


def execute_batch(keys: list[RunKey],
                  store: Optional[WorkloadStore] = None,
                  ) -> tuple[list[SimStats], bool]:
    """Run a same-workload replica group through the vector executor.

    ``keys`` must agree on every :class:`RunKey` field except their
    faults — and, for built-in workloads, except overrides of config
    fields the scheme declared fault-free invariant
    (:func:`~repro.core.factory.fault_free_invariant_overrides`);
    ``ExperimentEngine._batch_key`` groups them exactly that way.  The
    shared workload is built (and io-injected) once, each key's fault
    list becomes one replica of the batch, and keys whose overrides
    differ in invariant fields ride the same leader with their own
    resolved config (``replica_configs``) — a detection-latency sweep
    under Global is served from one trace pass.  Returns the per-key
    stats in input order plus a flag saying whether the batch *fell
    back* to scalar runs — which happens when the machine cannot be
    forked (an out-of-tree scheme scheduled a legacy closure callback)
    or numpy is missing; either way the stats are the same
    bit-identical results ``execute_run`` would produce.
    """
    from repro.sim.vector import run_replica_batch

    config = resolve_config(keys[0])
    if store is not None:
        workload = store.get_or_build(keys[0].app, keys[0].n_cores, config,
                                      keys[0].intervals, keys[0].seed)
    else:
        workload = get_workload(keys[0].app, keys[0].n_cores, config,
                                intervals=keys[0].intervals,
                                seed=keys[0].seed)
    if keys[0].io_every is not None:
        workload = inject_output_io(spec=workload, pid=0,
                                    every_instructions=keys[0].io_every)
    fault_lists = [key.fault_list() or [] for key in keys]
    replica_configs = None
    if any(key.overrides != keys[0].overrides for key in keys):
        replica_configs = [config if key.overrides == keys[0].overrides
                           else resolve_config(key) for key in keys]
    try:
        result = run_replica_batch(config, workload, fault_lists,
                                   replica_configs=replica_configs)
    except (UnforkableMachineError, ImportError):
        return [execute_run(key, store) for key in keys], True
    return result.stats, False


#: One store instance per root per worker process: pool tasks arrive as
#: plain (key, root) calls, and a fresh store per task would reset the
#: ``disabled`` write-failure latch — an unwritable store must warn and
#: fall back once per process, not once per run.
_WORKER_STORES: dict[str, WorkloadStore] = {}


def _worker_store(store_root: Optional[str]) -> Optional[WorkloadStore]:
    if store_root is None:
        return None
    store = _WORKER_STORES.get(store_root)
    if store is None:
        store = _WORKER_STORES[store_root] = WorkloadStore(store_root)
    return store


def _cache_path_for(cache_dir: Path, key: RunKey) -> Path:
    """Entry path for ``key`` under ``cache_dir`` (workers and the
    engine derive the identical address — the cache layout has exactly
    one definition)."""
    ident = f"{code_fingerprint()}|{key!r}"
    # Out-of-tree generators live outside src/repro, so the code
    # fingerprint cannot see their changes: their registration
    # fingerprint joins the result-cache identity instead (bump it
    # and old SimStats are never served).  Built-in idents are
    # unchanged — profile changes already invalidate through the
    # code fingerprint, and the pre-registry cache layout is pinned
    # by golden tests.
    if not is_builtin_workload(key.app):
        ident += f"|workload:{workload_fingerprint(key.app)}"
    digest = hashlib.sha256(ident.encode()).hexdigest()
    return Path(cache_dir) / f"{digest}.pkl"


def _key_disk_cacheable(key: RunKey) -> bool:
    """A registered generator without a fingerprint has *no*
    invalidation signal at all (its source is invisible to the code
    fingerprint), so its results must never be served from disk —
    the registry promises such workloads are rebuilt per run."""
    return is_builtin_workload(key.app) \
        or workload_fingerprint(key.app) is not None


def _write_cache_entry(cache_dir: Path, key: RunKey,
                       stats: SimStats) -> Optional[str]:
    """Persist one result (atomic replace).  Returns None on success —
    including the nothing-to-write case — or the error text, so the
    engine can warn once per session about an unwritable cache."""
    if not _key_disk_cacheable(key):
        return None
    path = _cache_path_for(cache_dir, key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(stats, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic vs. concurrent CI shards
    except OSError as exc:
        return str(exc)
    return None


def _portable_exc(exc: BaseException) -> BaseException:
    """Exceptions cross the pool boundary pickled; one that cannot
    round-trip (custom ``__init__`` signature, handle-holding payload)
    would kill the whole chunk result instead of failing its own task,
    so it degrades to a RuntimeError carrying the repr."""
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        return RuntimeError(repr(exc))
    return exc


def _run_chunk(chunk: list, store_root: Optional[str] = None,
               cache_dir: Optional[str] = None) -> tuple[list, Optional[dict]]:
    """Worker entry point: run a pack of planned tasks back to back.

    Each element of ``chunk`` is a lone :class:`RunKey` or a replica
    batch (``list[RunKey]``), exactly as ``_plan_tasks`` emitted it.
    Per task the outcome is ``("ok", payload, seconds, fell_back,
    cached)`` — ``payload`` is the ``SimStats`` (or list, for a batch)
    and ``cached`` says every result already landed in the disk cache —
    or ``("err", exc)``; a raising task never takes its chunk siblings
    down, and completed siblings are already persisted when it does.
    The second return value is this call's workload-store counter
    deltas, so the engine can aggregate store behaviour across worker
    processes.
    """
    store = _worker_store(store_root)
    before = store.counters() if store is not None else None
    outcomes: list = []
    for task in chunk:
        start = time.perf_counter()
        try:
            if isinstance(task, list):
                payload, fell_back = execute_batch(task, store)
            else:
                payload, fell_back = execute_run(task, store), False
        except BaseException as exc:  # noqa: BLE001 - reported per task
            outcomes.append(("err", _portable_exc(exc)))
            continue
        seconds = time.perf_counter() - start
        cached = False
        if cache_dir is not None:
            keys = task if isinstance(task, list) else [task]
            stats_seq = payload if isinstance(task, list) else [payload]
            cached = all(_write_cache_entry(cache_dir, key, stats) is None
                         for key, stats in zip(keys, stats_seq))
        outcomes.append(("ok", payload, seconds, fell_back, cached))
    deltas = None
    if store is not None:
        deltas = {name: count - before[name]
                  for name, count in store.counters().items()}
    return outcomes, deltas


_FINGERPRINT: Optional[str] = None


def fingerprint_paths() -> list[Path]:
    """The exact file set :func:`code_fingerprint` hashes, sorted.

    Exposed separately so the static analyzer (``reprolint`` RL003) can
    audit the cache contract against the *actual* hashed set: every
    module reachable from ``execute_run``/``run_replica_batch`` must
    appear here, or editing it would keep serving stale cache entries.
    """
    return sorted(_PACKAGE_DIR.rglob("*.py"))


def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package sources (cache invalidation).

    The interpreter's (major, minor) version and the pickle protocol are
    mixed in as well: cache directories shared across Python versions
    (CI's actions/cache, a laptop with several venvs) must never serve
    an entry pickled by a different interpreter line.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        digest = hashlib.sha256(
            f"format:{CACHE_FORMAT}"
            f"|python:{sys.version_info[0]}.{sys.version_info[1]}"
            f"|pickle:{pickle.HIGHEST_PROTOCOL}".encode())
        for path in fingerprint_paths():
            digest.update(str(path.relative_to(_PACKAGE_DIR)).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _env_flag(name: str, text: str) -> bool:
    """Parse an on/off environment variable, rejecting garbage with a
    one-line error that names the variable (a typo like
    ``REPRO_VECTOR=fasle`` must not silently pick either behaviour)."""
    lower = text.strip().lower()
    if lower in ("1", "on", "true", "yes"):
        return True
    if lower in ("0", "off", "false", "no"):
        return False
    raise ValueError(f"{name} must be one of 1/0/on/off/true/false/"
                     f"yes/no, got {text!r}")


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` or the machine's CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer worker "
                             f"count, got {env!r}") from None
        return max(1, jobs)
    return os.cpu_count() or 1


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` or ``benchmarks/.cache`` under the repo root.

    The repo-root derivation only holds for a src-layout checkout; for
    an installed package (no ``benchmarks/`` next to ``src/``) fall
    back to a dot-directory under the working directory instead of
    writing into the Python environment.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    if (_REPO_ROOT / "benchmarks").is_dir():
        return _REPO_ROOT / "benchmarks" / ".cache"
    return Path.cwd() / ".repro-cache"


@dataclass
class DispatchReport:
    """What one chunked-dispatch pass did (internal to the engine).

    ``failures`` holds one ``(key, exc)`` entry per *run* — a failed
    replica batch of N keys contributes N entries, so failure counts
    always match run counts.  ``pending`` are keys whose chunks were
    never submitted because ``should_cancel`` fired; they are not
    failures — nothing about them is known.
    """

    failures: list = field(default_factory=list)
    pending: list = field(default_factory=list)
    cancelled: bool = False


@dataclass
class StreamReport:
    """Result of :meth:`ExperimentEngine.run_stream`.

    Unlike :meth:`~ExperimentEngine.run_many`, streaming execution
    never raises on per-run failures — the campaign service must keep
    serving its other jobs when one run's workload builder blows up —
    so the caller reads the partition: ``results`` landed (streamed
    through ``on_land`` as they completed), ``failures`` raised inside
    their runs, ``pending`` were dropped by cancellation.
    """

    results: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)
    pending: list = field(default_factory=list)
    cancelled: bool = False
    replayed: int = 0     # served from the memo or the disk cache
    computed: int = 0     # executed this call

    @property
    def landed(self) -> int:
        return len(self.results)


class ExperimentEngine:
    """Plans, deduplicates, parallelizes and caches simulation runs.

    The in-memory memo guarantees object identity within a process (two
    requests for the same key return the *same* ``SimStats``); the disk
    cache makes repeated sessions near-instant.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache_dir: Optional[os.PathLike] = None,
                 use_disk_cache: Optional[bool] = None,
                 verbose: bool = False,
                 vector: Optional[bool] = None,
                 chunk_size: Optional[int] = None):
        self.jobs = max(1, jobs if jobs is not None else default_jobs())
        if chunk_size is None:
            env = os.environ.get("REPRO_CHUNK")
            if env:
                try:
                    chunk_size = int(env)
                except ValueError:
                    raise ValueError(f"REPRO_CHUNK must be an integer "
                                     f"chunk size, got {env!r}") from None
        #: Tasks packed per dispatch chunk (None = adaptive).
        self.chunk_size = max(1, chunk_size) if chunk_size is not None \
            else None
        self.cache_dir = Path(cache_dir) if cache_dir is not None \
            else default_cache_dir()
        if use_disk_cache is None:
            env = os.environ.get("REPRO_NO_CACHE")
            use_disk_cache = not (env is not None and env != ""
                                  and _env_flag("REPRO_NO_CACHE", env))
        self.use_disk_cache = use_disk_cache
        # The workload store lives under the result cache dir and obeys
        # the same opt-out: ``--no-cache`` means no disk I/O at all.
        self.workload_store: Optional[WorkloadStore] = (
            WorkloadStore(self.cache_dir / "workloads")
            if use_disk_cache else None)
        self.verbose = verbose
        if vector is None:
            env = os.environ.get("REPRO_VECTOR")
            if env is not None and env != "":
                vector = _env_flag("REPRO_VECTOR", env)
        #: The *request* (None = auto): distinguishes "user said no"
        #: from "numpy is missing" for the fallback warning below.
        self._vector_requested = vector
        #: Whether replica batches actually go through the vector path.
        self.vector = (vector if vector is not None else True) \
            and have_numpy()
        self._vector_warned = False
        self.memo: dict[RunKey, SimStats] = {}
        #: Wall-clock seconds per key *computed* this session (not cached).
        self.profile: dict[RunKey, float] = {}
        #: Replica-batch width each computed key ran at (1 = scalar).
        self.batch_width: dict[RunKey, int] = {}
        self.disk_hits = 0
        self._store_warned = False
        #: Outcome-landing callback (``hook(key, stats, seconds)``),
        #: installed by :meth:`run_stream` for the duration of a call:
        #: fires in the parent process the moment a computed result
        #: lands in the memo, on the serial and pool paths alike — the
        #: campaign service journals results through it incrementally.
        self._land_hook: Optional[Callable] = None
        #: Workload-store counter deltas shipped back by pool workers
        #: (:meth:`store_counters` folds the parent store on top).
        self._worker_counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # disk cache
    # ------------------------------------------------------------------
    def _cache_path(self, key: RunKey) -> Path:
        return _cache_path_for(self.cache_dir, key)

    def _disk_cacheable(self, key: RunKey) -> bool:
        return self.use_disk_cache and _key_disk_cacheable(key)

    def _load_cached(self, key: RunKey) -> Optional[SimStats]:
        if not self._disk_cacheable(key):
            return None
        path = self._cache_path(key)
        try:
            with path.open("rb") as fh:
                stats = pickle.load(fh)
        except Exception:
            # Best-effort cache: any unreadable/corrupt entry (truncated
            # write, garbled restore, unpicklable payload) is a miss,
            # never a crash.
            return None
        if not isinstance(stats, SimStats):
            return None
        self.disk_hits += 1
        return stats

    def _store_cached(self, key: RunKey, stats: SimStats) -> None:
        if not self._disk_cacheable(key):
            return
        error = _write_cache_entry(self.cache_dir, key, stats)
        if error is not None:
            # Best-effort cache, but say so once: a typo'd --cache-dir
            # otherwise looks identical to a working one.
            if not self._store_warned:
                self._store_warned = True
                print(f"  [engine] warning: result cache disabled "
                      f"({self.cache_dir}: {error})", flush=True)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, key: RunKey) -> SimStats:
        """Run (or recall) one simulation."""
        return self.run_many([key])[key]

    def prefetch(self, keys: Iterable[RunKey]) -> None:
        """Ensure every ``key`` is available (the planning entry point)."""
        self.run_many(keys)

    def run_many(self, keys: Iterable[RunKey]) -> dict[RunKey, SimStats]:
        """Deduplicate ``keys``, execute the missing ones, return all."""
        unique = list(dict.fromkeys(keys))
        missing = []
        for key in unique:
            if key in self.memo:
                continue
            cached = self._load_cached(key)
            if cached is not None:
                self.memo[key] = cached
            else:
                missing.append(key)
        self._prepare_workloads(missing)
        tasks = self._plan_tasks(missing)
        if len(missing) > 1 and self.jobs > 1:
            self._run_parallel(tasks, len(missing))
        else:
            for task in tasks:
                start = time.perf_counter()
                if isinstance(task, list):
                    self._announce_batch(task)
                    stats_list, fell_back = execute_batch(
                        task, self.workload_store)
                    self._finish_batch(task, stats_list,
                                       time.perf_counter() - start,
                                       fell_back)
                else:
                    self._announce(task)
                    stats = execute_run(task, self.workload_store)
                    self._finish(task, stats,
                                 time.perf_counter() - start)
        return {key: self.memo[key] for key in unique}

    def run_stream(self, keys: Iterable[RunKey],
                   on_land: Optional[Callable] = None,
                   should_cancel: Optional[Callable[[], bool]] = None
                   ) -> StreamReport:
        """Streaming execution: results land incrementally, failures
        are collected per key instead of raised, and cancellation is
        cooperative — the campaign service's execution primitive.

        ``on_land(key, stats, source, seconds)`` fires for *every* key
        as it becomes available: ``source`` is ``"memo"`` / ``"disk"``
        for replayed results (zero recomputation) and ``"run"`` for
        ones computed this call.  ``should_cancel`` is polled between
        landings; once it returns True no further work is submitted,
        in-flight chunks drain (and land), and the keys never executed
        come back in ``pending``.
        """
        report = StreamReport()
        unique = list(dict.fromkeys(keys))
        missing = []
        for key in unique:
            stats = self.memo.get(key)
            source = "memo"
            if stats is None:
                stats = self._load_cached(key)
                source = "disk"
                if stats is not None:
                    self.memo[key] = stats
            if stats is None:
                missing.append(key)
                continue
            report.results[key] = stats
            report.replayed += 1
            if on_land is not None:
                on_land(key, stats, source, 0.0)
        if should_cancel is not None and should_cancel():
            report.pending.extend(missing)
            report.cancelled = True
            return report
        if not missing:
            return report

        def hook(key: RunKey, stats: SimStats, seconds: float) -> None:
            report.results[key] = stats
            report.computed += 1
            if on_land is not None:
                on_land(key, stats, "run", seconds)

        self._prepare_workloads(missing)
        tasks = self._plan_tasks(missing)
        self._land_hook = hook
        try:
            if len(missing) > 1 and self.jobs > 1:
                sub = self._dispatch(tasks, should_cancel=should_cancel)
                report.failures.extend(sub.failures)
                report.pending.extend(sub.pending)
                report.cancelled = sub.cancelled
            else:
                for index, task in enumerate(tasks):
                    if should_cancel is not None and should_cancel():
                        report.cancelled = True
                        for rest in tasks[index:]:
                            report.pending.extend(
                                rest if isinstance(rest, list) else [rest])
                        break
                    start = time.perf_counter()
                    try:
                        if isinstance(task, list):
                            self._announce_batch(task)
                            stats_list, fell_back = execute_batch(
                                task, self.workload_store)
                            self._finish_batch(
                                task, stats_list,
                                time.perf_counter() - start, fell_back)
                        else:
                            self._announce(task)
                            stats = execute_run(task, self.workload_store)
                            self._finish(task, stats,
                                         time.perf_counter() - start)
                    except KeyboardInterrupt:
                        raise
                    except BaseException as exc:  # noqa: BLE001
                        exc = _portable_exc(exc)
                        for key in (task if isinstance(task, list)
                                    else [task]):
                            report.failures.append((key, exc))
        finally:
            self._land_hook = None
        return report

    def describe_failure(self, key: RunKey, exc: BaseException) -> str:
        """One human line per failed run (the service's status files
        and the batch engine's error report share the wording)."""
        return f"{self._describe(key)}: {exc!r}"

    @staticmethod
    def _batch_key(key: RunKey) -> tuple:
        """Replica-group identity: everything but the faults.  Keys that
        agree here run the *same* machine up to their first
        fault-detection point, which is exactly what the vector executor
        shares.

        Overrides of config fields the scheme declared **fault-free
        invariant** (``FAULT_FREE_INVARIANT_OVERRIDES``, e.g.
        ``detection_latency`` under Global/NONE) cannot perturb that
        shared prefix either, so they are stripped from the identity
        and the group members carry their own configs through
        ``execute_batch`` — a detection-latency sweep batches across
        all its L values.  Only built-in workloads widen: a registered
        generator receives the full resolved config, so its *traces*
        could depend on any override.
        """
        overrides = key.overrides
        if overrides and is_builtin_workload(key.app):
            invariant = fault_free_invariant_overrides(key.scheme)
            if invariant:
                kept = {name: value for name, value in overrides.items()
                        if name not in invariant}
                if len(kept) != len(overrides):
                    overrides = Overrides(kept)
        return (key.app, key.n_cores, key.scheme, key.intervals, key.seed,
                key.scale, key.io_every, key.cluster, overrides)

    def _plan_tasks(self, missing: list[RunKey]) -> list:
        """The execution plan: each element is a lone :class:`RunKey`
        (scalar run) or a ``list[RunKey]`` (replica batch of two or
        more), placed at its first member's position in ``missing`` so
        serial execution keeps the submission order — a failing task
        never masks work listed before it.  With vectorization off (or
        unavailable) every key is a single; a one-line warning fires
        once when batches *would* have formed but numpy is missing and
        the user didn't opt out."""
        groups: dict[tuple, list[RunKey]] = {}
        for key in missing:
            groups.setdefault(self._batch_key(key), []).append(key)
        if not self.vector:
            if (any(len(group) >= 2 for group in groups.values())
                    and not have_numpy()
                    and self._vector_requested is not False
                    and not self._vector_warned):
                self._vector_warned = True
                print("  [engine] warning: numpy unavailable; campaign "
                      "batches fall back to scalar runs "
                      "(pip install repro[vector])", flush=True)
            return list(missing)
        tasks: list = []
        emitted: set = set()
        for key in missing:
            ident = self._batch_key(key)
            if ident in emitted:
                continue
            group = groups[ident]
            if len(group) >= 2:
                tasks.append(group)
                emitted.add(ident)
            else:
                tasks.append(key)
        return tasks

    def _prepare_workloads(self, missing: list[RunKey]) -> None:
        """Prebuild each workload that several missing runs *share*.

        Many keys share one workload (every scheme/fault-plan/override
        variant at the same app x cores x seed); building those once
        here means the pool workers only deserialize compact IR bytes.
        Workloads needed by a single run are left to that run's worker
        (``get_or_build`` populates the store there), so a
        low-sharing plan keeps its build parallelism.  Shared builds do
        run serially here — the trade against letting workers race is
        that every same-wave worker would duplicate the build; with
        sharing ≥ 2 the single parent build is the cheaper side.
        Best-effort: a
        builder that raises is skipped here and fails inside its own
        run, where the error report carries the full ``RunKey`` and
        healthy siblings still complete.
        """
        store = self.workload_store
        if store is None or not missing:
            return
        # Sharing is defined by the *store address* (built-ins share one
        # entry across schemes/overrides), so count digests, not keys.
        counts: dict[str, int] = {}
        params_for: dict[str, tuple] = {}
        for key in missing:
            config = resolve_config(key)
            digest = store.digest_for(key.app, key.n_cores, config,
                                      key.intervals, key.seed)
            if digest is None:
                continue
            counts[digest] = counts.get(digest, 0) + 1
            params_for.setdefault(digest, (key.app, key.n_cores, config,
                                           key.intervals, key.seed))
        builds_before = store.builds
        shared = 0
        for digest, count in counts.items():
            if count < 2:
                continue
            shared += 1
            try:
                store.ensure(*params_for[digest])
            except Exception:  # noqa: BLE001 - deferred to the run itself
                pass
        built = store.builds - builds_before
        if self.verbose and built:  # pragma: no cover - progress printing
            print(f"  [engine] prebuilt {built} of {shared} shared "
                  f"workload(s) for {len(missing)} runs", flush=True)

    def _affinity_key(self, task):
        """What a task must share to profit from a chunk-mate: the
        workload-store digest when addressable (built-ins share one
        entry across schemes/overrides), else the build parameters."""
        key = task[0] if isinstance(task, list) else task
        store = self.workload_store
        if store is not None:
            digest = store.digest_for(key.app, key.n_cores,
                                      resolve_config(key),
                                      key.intervals, key.seed)
            if digest is not None:
                return digest
        return (workload_name(key.app), key.n_cores, key.intervals,
                key.seed)

    def _chunk_tasks(self, tasks: list, workers: int) -> list[list]:
        """Pack the plan into dispatch chunks.

        Size: ``chunk_size`` when pinned, else adaptive — about four
        chunks per worker (capped at 32 tasks) so the pool stays
        balanced when task costs vary, without falling back into
        one-future-per-task overhead.  Order: stable-sorted so tasks
        with the same workload affinity are adjacent (first-seen group
        order), maximizing each worker's store-LRU hit rate; within a
        group the submission order is preserved.
        """
        size = self.chunk_size
        if size is None:
            size = min(32, max(1, -(-len(tasks) // (workers * 4))))
        first_seen: dict = {}
        for task in tasks:
            first_seen.setdefault(self._affinity_key(task),
                                  len(first_seen))
        ordered = sorted(tasks, key=lambda task:
                         first_seen[self._affinity_key(task)])
        return [ordered[i:i + size]
                for i in range(0, len(ordered), size)]

    def _merge_worker_counters(self, deltas: Optional[dict]) -> None:
        if not deltas:
            return
        for name, count in deltas.items():
            self._worker_counters[name] = \
                self._worker_counters.get(name, 0) + count

    def store_counters(self) -> dict[str, int]:
        """Workload-store counters aggregated across every process:
        the parent store's own, plus the deltas each dispatch chunk
        shipped back (``--profile`` prints these)."""
        totals = {name: 0 for name in ("hits", "misses", "builds",
                                       "lru_hits", "corrupt_rebuilds",
                                       "write_failures")}
        for name, count in self._worker_counters.items():
            totals[name] = totals.get(name, 0) + count
        if self.workload_store is not None:
            for name, count in self.workload_store.counters().items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def memsys_counters(self) -> dict[str, int]:
        """Memory-system counters summed over this engine's completed
        runs (the in-process memo: every run executed or loaded this
        session).  Mode-invariant under ``REPRO_FASTPATH``; feeds the
        ``--profile`` memsys row and the bench memsys section."""
        totals = {name: 0 for name in (
            "l1_hits", "l1_misses", "l2_hits", "l2_misses",
            "fastpath_loads", "fastpath_stores", "fastpath_epoch_bumps",
            "invalidations", "mem_accesses")}
        for stats in self.memo.values():
            for name in totals:
                totals[name] += getattr(stats, name, 0)
        return totals

    def _run_parallel(self, tasks: list, n_runs: int) -> None:
        report = self._dispatch(tasks)
        if report.failures:
            lines = [f"  {self._describe(key)}: {exc!r}"
                     for key, exc in report.failures]
            raise RuntimeError(
                f"simulation failed for {len(report.failures)} of "
                f"{n_runs} run(s):\n" + "\n".join(lines)
                ) from report.failures[0][1]

    def _dispatch(self, tasks: list,
                  should_cancel: Optional[Callable[[], bool]] = None
                  ) -> DispatchReport:
        """Chunked pool dispatch: the engine's one parallel data plane.

        Collects per-*key* failures (a failed replica batch reports
        every member, not just its first — each key must be
        individually describable and the failure count must match the
        run count), supports cooperative cancellation
        (``should_cancel``: un-submitted chunks are dropped to
        ``pending`` while in-flight chunks drain and land), and
        survives ``KeyboardInterrupt`` in the wait loop by cancelling
        the queued futures, landing every already-completed chunk in
        the memo/cache, and re-raising with a one-line
        partial-progress note — Ctrl-C on a campaign keeps what it
        paid for, and the service's cancel path reuses the same
        machinery.
        """
        n_runs = sum(len(task) if isinstance(task, list) else 1
                     for task in tasks)
        n_batches = sum(1 for task in tasks if isinstance(task, list))
        workers = min(self.jobs, len(tasks))
        chunks = self._chunk_tasks(tasks, workers)
        workers = min(workers, len(chunks))
        if self.verbose:  # pragma: no cover - progress printing
            print(f"  [engine] {n_runs} runs ({n_batches} batches, "
                  f"{len(tasks) - n_batches} singles) in {len(chunks)} "
                  f"chunk(s) on {workers} workers ...", flush=True)
        store_root = str(self.workload_store.root) \
            if self.workload_store is not None else None
        cache_root = str(self.cache_dir) if self.use_disk_cache else None
        report = DispatchReport()
        landed = 0

        def fail_task(task, exc: BaseException) -> None:
            # Collect *every* failing key so one bad run doesn't mask
            # its siblings (worker tracebacks don't carry arguments) —
            # including every member of a failed replica batch.
            for key in (task if isinstance(task, list) else [task]):
                report.failures.append((key, exc))

        def land_outcomes(chunk, outcomes, deltas) -> None:
            nonlocal landed
            self._merge_worker_counters(deltas)
            for task, outcome in zip(chunk, outcomes):
                if outcome[0] == "err":
                    fail_task(task, outcome[1])
                    continue
                _tag, payload, seconds, fell_back, cached = outcome
                if isinstance(task, list):
                    self._finish_batch(task, payload, seconds,
                                       fell_back, cached=cached)
                    landed += len(task)
                else:
                    self._finish(task, payload, seconds, cached=cached)
                    landed += 1

        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Bounded in-flight window: a thousand-run campaign must not
            # hold a future (and its pickled result) per task — two
            # chunks per worker keep everyone busy while results land
            # incrementally.
            chunk_iter = iter(chunks)
            futures: dict = {}
            submit_error: Optional[BaseException] = None
            leftovers: list = []

            def submit_next() -> None:
                nonlocal submit_error
                for chunk in itertools.islice(chunk_iter, 1):
                    if submit_error is not None or report.cancelled:
                        leftovers.append(chunk)
                        return
                    try:
                        futures[pool.submit(_run_chunk, chunk, store_root,
                                            cache_root)] = chunk
                    except BaseException as exc:  # noqa: BLE001
                        # A broken pool refuses new work; drain what is
                        # in flight and report the rest as failed.
                        submit_error = exc
                        leftovers.append(chunk)

            try:
                for _ in range(min(2 * workers, len(chunks))):
                    submit_next()
                while futures:
                    if (not report.cancelled and should_cancel is not None
                            and should_cancel()):
                        report.cancelled = True
                    done, _ = wait(set(futures),
                                   timeout=(0.1 if should_cancel is not None
                                            else None),
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        chunk = futures.pop(future)
                        try:
                            outcomes, deltas = future.result()
                        except BaseException as exc:  # noqa: BLE001
                            # The whole worker died (OOM kill, broken
                            # pool): every task of the chunk is lost.
                            for task in chunk:
                                fail_task(task, exc)
                            submit_next()
                            continue
                        land_outcomes(chunk, outcomes, deltas)
                        submit_next()
            except KeyboardInterrupt:
                # Drop the queued chunks, let in-flight ones finish
                # (they are small), and keep every completed result:
                # the workers already wrote their cache entries, and
                # landing them in the memo makes the partial session
                # consistent.  Then re-raise — the interrupt still
                # means stop.
                pool.shutdown(wait=True, cancel_futures=True)
                for future, chunk in list(futures.items()):
                    if future.done() and not future.cancelled():
                        try:
                            outcomes, deltas = future.result()
                        except BaseException:  # noqa: BLE001
                            continue
                        land_outcomes(chunk, outcomes, deltas)
                print(f"  [engine] interrupted: {landed} of {n_runs} "
                      f"run(s) landed in the memo/cache; queued chunks "
                      f"cancelled", flush=True)
                raise
            leftovers.extend(chunk_iter)
            for chunk in leftovers:
                for task in chunk:
                    if report.cancelled and submit_error is None:
                        report.pending.extend(
                            task if isinstance(task, list) else [task])
                    else:
                        fail_task(task, submit_error or RuntimeError(
                            "task was never submitted"))
        return report

    @staticmethod
    def _describe(key: RunKey) -> str:
        scheme = getattr(key.scheme, "value", key.scheme)
        return (f"{workload_name(key.app)} x{key.n_cores} {scheme} "
                f"(io_every={key.io_every}, fault_at={key.fault_at}, "
                f"fault_plan={key.fault_plan}, cluster={key.cluster}, "
                f"seed={key.seed}, scale={key.scale}, "
                f"overrides={dict(key.overrides)})")

    def _announce(self, key: RunKey) -> None:
        if self.verbose:  # pragma: no cover - progress printing
            scheme = getattr(key.scheme, "value", key.scheme)
            print(f"  running {workload_name(key.app)} x{key.n_cores} "
                  f"{scheme} ...", flush=True)

    def _announce_batch(self, group: list[RunKey]) -> None:
        if self.verbose:  # pragma: no cover - progress printing
            key = group[0]
            scheme = getattr(key.scheme, "value", key.scheme)
            print(f"  running {workload_name(key.app)} x{key.n_cores} "
                  f"{scheme} [batch of {len(group)}] ...",
                  flush=True)

    def _finish(self, key: RunKey, stats: SimStats, seconds: float,
                cached: bool = False) -> None:
        """Land one result.  ``cached=True`` means the worker already
        wrote the disk entry (chunked dispatch) — writing it again from
        the parent would double every entry's serialization cost."""
        self.memo[key] = stats
        self.profile[key] = seconds
        if not cached:
            self._store_cached(key, stats)
        if self._land_hook is not None:
            self._land_hook(key, stats, seconds)
        if self.verbose and self.jobs > 1:  # pragma: no cover
            scheme = getattr(key.scheme, "value", key.scheme)
            print(f"  [engine] done {workload_name(key.app)} "
                  f"x{key.n_cores} {scheme} ({seconds:.1f}s)",
                  flush=True)

    def _finish_batch(self, group: list[RunKey], stats_list: list[SimStats],
                      seconds: float, fell_back: bool,
                      cached: bool = False) -> None:
        """Land a replica batch: cache entries are written *per key* (no
        format change), the batch wall-clock is attributed evenly, and a
        fallback batch records width 1 so ``--profile`` tells the truth."""
        width = 1 if fell_back else len(group)
        if fell_back and not self._vector_warned:
            self._vector_warned = True
            print(f"  [engine] warning: replica batch of {len(group)} "
                  f"fell back to scalar runs (unforkable machine)",
                  flush=True)
        share = seconds / len(group)
        for key, stats in zip(group, stats_list):
            self.batch_width[key] = width
            self._finish(key, stats, share, cached=cached)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def profile_rows(self) -> list[list]:
        """Per-run wall-clock rows (slowest first) for ``--profile``.

        ``cluster`` and ``overrides`` are part of a run's identity, so
        without them two sweep grid points are indistinguishable in the
        profile table.  ``batch`` is the replica-batch width the run was
        computed at (1 = scalar; batched runs report their share of the
        batch's wall clock).
        """
        rows = []
        for key, seconds in sorted(self.profile.items(),
                                   key=lambda kv: -kv[1]):
            if key.fault_plan is not None:
                faults = f"plan[{key.fault_plan.n_faults}]"
            elif key.fault_at is not None:
                faults = f"{key.fault_at:,.0f}"
            else:
                faults = "-"
            overrides = ",".join(f"{name}={value}" for name, value
                                 in key.overrides.items()) or "-"
            scheme = getattr(key.scheme, "value", key.scheme)
            rows.append([workload_name(key.app), key.n_cores, scheme,
                         key.io_every if key.io_every is not None else "-",
                         faults,
                         key.cluster,
                         overrides,
                         self.batch_width.get(key, 1),
                         f"{seconds:.2f}"])
        return rows
