"""Cached simulation runner for the experiment harness.

Most figures share runs (e.g. the no-checkpointing baseline of an app at
64 cores), so the runner memoizes completed simulations by their full
parameter key within a process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.params import MachineConfig, Scheme
from repro.sim import SimStats
from repro.sim.machine import Machine
from repro.workloads import get_workload, inject_output_io


@dataclass(frozen=True)
class RunKey:
    """Memoization key for one simulation."""

    app: str
    n_cores: int
    scheme: Scheme
    intervals: float
    seed: int
    scale: int
    io_every: Optional[int] = None       # output-I/O injection period
    fault_at: Optional[float] = None     # (cycle, core-0) fault injection


@dataclass
class Runner:
    """Runs and caches simulations for the experiment drivers."""

    scale: int = 40
    intervals: float = 3.0
    seed: int = 1
    cache: dict = field(default_factory=dict)
    verbose: bool = False

    def run(self, app: str, n_cores: int, scheme: Scheme,
            io_every: Optional[int] = None,
            fault_at: Optional[float] = None,
            intervals: Optional[float] = None) -> SimStats:
        key = RunKey(app, n_cores, scheme,
                     intervals if intervals is not None else self.intervals,
                     self.seed, self.scale, io_every, fault_at)
        if key in self.cache:
            return self.cache[key]
        config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                      scale=self.scale)
        workload = get_workload(app, n_cores, config,
                                intervals=key.intervals, seed=self.seed)
        if io_every is not None:
            workload = inject_output_io(spec=workload, pid=0,
                                        every_instructions=io_every)
        faults = [(fault_at, 0)] if fault_at is not None else None
        if self.verbose:  # pragma: no cover - progress printing
            print(f"  running {app} x{n_cores} {scheme.value} ...",
                  flush=True)
        stats = Machine(config, workload, faults=faults).run()
        self.cache[key] = stats
        return stats

    def baseline(self, app: str, n_cores: int, **kw) -> SimStats:
        return self.run(app, n_cores, Scheme.NONE, **kw)

    def overhead(self, app: str, n_cores: int, scheme: Scheme,
                 **kw) -> float:
        """Checkpointing overhead fraction vs. the NONE baseline."""
        stats = self.run(app, n_cores, scheme, **kw)
        base = self.baseline(app, n_cores, **kw)
        return stats.overhead_vs(base)
