"""Cached simulation runner for the experiment harness.

Most figures share runs (e.g. the no-checkpointing baseline of an app at
64 cores), so every run is memoized by its full parameter key.  Since
the parallel-engine PR the runner is a thin facade over
:class:`~repro.harness.engine.ExperimentEngine`, which adds cross-figure
deduplication, a process pool and a persistent on-disk result cache;
``Runner.run`` keeps its original signature so the experiment drivers
work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional

from repro.harness.engine import ExperimentEngine, RunKey
from repro.harness.scenario import EMPTY_OVERRIDES
from repro.params import Scheme
from repro.sim import SimStats
from repro.sim.faults import FaultPlan


@dataclass
class Runner:
    """Runs and caches simulations for the experiment drivers."""

    scale: int = 40
    intervals: float = 3.0
    seed: int = 1
    verbose: bool = False
    engine: Optional[ExperimentEngine] = None

    def __post_init__(self):
        if self.engine is None:
            # A bare Runner() behaves exactly like the seed's runner:
            # in-process memoization only, no worker pool, no disk I/O.
            # Parallelism and the persistent cache are opted into by
            # passing an engine (as the CLI and benchmarks/conftest do).
            self.engine = ExperimentEngine(jobs=1, use_disk_cache=False,
                                           verbose=self.verbose)
        elif self.verbose:
            self.engine.verbose = True

    @property
    def cache(self) -> dict:
        """In-process memo (kept for backward compatibility)."""
        return self.engine.memo

    def key(self, app: str, n_cores: int, scheme: Scheme,
            io_every: Optional[int] = None,
            fault_at: Optional[float] = None,
            intervals: Optional[float] = None,
            fault_plan: Optional[FaultPlan] = None,
            cluster: int = 1,
            seed: Optional[int] = None,
            overrides: Optional[Mapping[str, Any]] = None) -> RunKey:
        """The :class:`RunKey` a ``run()`` with these arguments uses."""
        return RunKey(app, n_cores, scheme,
                      intervals if intervals is not None else self.intervals,
                      seed if seed is not None else self.seed,
                      self.scale, io_every, fault_at,
                      fault_plan, cluster,
                      overrides if overrides is not None
                      else EMPTY_OVERRIDES)

    def prefetch(self, keys: Iterable[RunKey]) -> None:
        """Plan ahead: execute ``keys`` (deduplicated, possibly in
        parallel) so subsequent ``run()`` calls are cache hits."""
        self.engine.prefetch(keys)

    def run(self, app: str, n_cores: int, scheme: Scheme,
            io_every: Optional[int] = None,
            fault_at: Optional[float] = None,
            intervals: Optional[float] = None,
            fault_plan: Optional[FaultPlan] = None,
            cluster: int = 1,
            seed: Optional[int] = None,
            overrides: Optional[Mapping[str, Any]] = None) -> SimStats:
        return self.engine.run(self.key(app, n_cores, scheme,
                                        io_every, fault_at, intervals,
                                        fault_plan, cluster, seed,
                                        overrides))

    def baseline(self, app: str, n_cores: int, **kw) -> SimStats:
        return self.run(app, n_cores, Scheme.NONE, **kw)

    def overhead(self, app: str, n_cores: int, scheme: Scheme,
                 **kw) -> float:
        """Checkpointing overhead fraction vs. the NONE baseline."""
        stats = self.run(app, n_cores, scheme, **kw)
        base = self.baseline(app, n_cores, **kw)
        return stats.overhead_vs(base)
