"""Scenario layer: sweepable config overrides and declarative sweeps.

Before this module, a :class:`~repro.harness.engine.RunKey` could only
vary the handful of dimensions it hard-codes (app, cores, scheme, ...);
every other :class:`~repro.params.MachineConfig` knob — detection
latency L, memory timing, channel count, cache geometry — was frozen
out of the engine, so sweeping one meant touching engine code.

Two pieces fix that:

* :class:`Overrides` — a frozen, hashable, canonically-ordered mapping
  of ``MachineConfig`` field overrides that rides inside ``RunKey``.
  Field names are validated at construction time (including dotted
  nested fields such as ``l1.size_bytes``), values must be hashable,
  and the repr is deterministic, so overridden runs cache on disk
  exactly like plain ones.

* :class:`SweepSpec` — a declarative grid builder: ordered axis lists
  expanded into a cartesian product of ``RunKey``s.  Axes named after
  ``RunKey`` dimensions feed the key directly; any other axis becomes a
  config override.  Grids union with ``+``, which is how the figure
  planners express per-size fault parameters and paired axes.

``parse_axis`` / ``coerce_value`` adapt ``--axis name=v1,v2,...``
command-line tokens to typed override values.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.params import MachineConfig

__all__ = ["Overrides", "SweepSpec", "parse_axis", "coerce_value",
           "RESERVED_OVERRIDE_FIELDS", "RUNKEY_AXES"]

#: MachineConfig fields owned by ``RunKey`` itself; overriding them via
#: ``overrides`` would create two cache identities for the same run.
RESERVED_OVERRIDE_FIELDS = {
    "n_cores": "RunKey.n_cores",
    "scheme": "RunKey.scheme",
    "dep_cluster_size": "RunKey.cluster",
}

#: A default-constructed config, used to validate override field names
#: and to coerce CLI axis values to the fields' types.
_DEFAULT_CONFIG = MachineConfig()


def _resolve_field(name: str) -> Any:
    """The default value behind ``name`` (raises ValueError if the name
    is not an overridable ``MachineConfig`` field).

    ``name`` is either a top-level field (``detection_latency``) or a
    single-level dotted path into a nested config dataclass
    (``l1.size_bytes``).
    """
    parent_name, dot, sub_name = name.partition(".")
    if parent_name in RESERVED_OVERRIDE_FIELDS:
        raise ValueError(
            f"config field {parent_name!r} is owned by "
            f"{RESERVED_OVERRIDE_FIELDS[parent_name]}; set it there "
            f"instead of via overrides")
    fields = {f.name: f for f in dataclasses.fields(MachineConfig)}
    if parent_name not in fields:
        raise ValueError(
            f"unknown config field {parent_name!r}; overridable fields: "
            f"{sorted(set(fields) - set(RESERVED_OVERRIDE_FIELDS))}")
    parent_value = getattr(_DEFAULT_CONFIG, parent_name)
    if not dot:
        return parent_value
    if not dataclasses.is_dataclass(parent_value):
        raise ValueError(
            f"config field {parent_name!r} is not a nested config; "
            f"{name!r} cannot be overridden")
    sub_fields = {f.name for f in dataclasses.fields(parent_value)}
    if sub_name not in sub_fields:
        raise ValueError(
            f"unknown field {sub_name!r} of config.{parent_name}; "
            f"known: {sorted(sub_fields)}")
    return getattr(parent_value, sub_name)


def _validate_value(name: str, current: Any, value: Any) -> None:
    """Reject a value whose type cannot replace the field's default —
    a wrongly-typed override must fail here, at plan time, not as an
    arithmetic TypeError deep inside a pool worker."""
    if isinstance(current, bool):
        ok = isinstance(value, bool)
    elif isinstance(current, int):
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif isinstance(current, float):
        ok = (isinstance(value, (int, float))
              and not isinstance(value, bool))
    else:
        ok = isinstance(value, type(current))
    if not ok:
        raise ValueError(
            f"override {name}={value!r}: expected "
            f"{type(current).__name__}, got {type(value).__name__}")


class Overrides(Mapping):
    """Frozen, hashable, canonically-ordered ``MachineConfig`` overrides.

    Construct from a mapping and/or keyword arguments::

        Overrides(detection_latency=10_000)
        Overrides({"l1.size_bytes": 2048, "memory_cycles": 80})

    Unknown field names, wrongly-typed values and unhashable values
    raise ``ValueError`` at construction — a malformed scenario fails at
    plan time, never inside a pool worker.  Items are stored sorted by
    name, so two ``Overrides`` built from differently-ordered mappings
    are equal, hash alike and repr alike (the repr feeds the disk-cache
    path).
    """

    __slots__ = ("_items",)

    def __init__(self, mapping: Optional[Mapping[str, Any]] = None,
                 **fields: Any):
        merged: dict[str, Any] = dict(mapping or {})
        merged.update(fields)
        for name, value in merged.items():
            _validate_value(name, _resolve_field(name), value)
            try:
                hash(value)
            except TypeError:
                raise ValueError(
                    f"override {name}={value!r} is not hashable; "
                    f"RunKey overrides must be cache-key material") \
                    from None
        object.__setattr__(self, "_items",
                           tuple(sorted(merged.items())))

    # -- frozen mapping ----------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Overrides is immutable")

    def __getitem__(self, name: str) -> Any:
        for key, value in self._items:
            if key == name:
                return value
        raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Overrides):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Overrides({{{', '.join(f'{n!r}: {v!r}' for n, v in self._items)}}})"

    def __reduce__(self):
        return (Overrides, (dict(self._items),))

    # -- application -------------------------------------------------------
    def apply(self, config: MachineConfig) -> MachineConfig:
        """``config`` with these overrides applied (nested fields via a
        nested ``dataclasses.replace``)."""
        if not self._items:
            return config
        flat: dict[str, Any] = {}
        nested: dict[str, dict[str, Any]] = {}
        for name, value in self._items:
            parent, dot, sub = name.partition(".")
            if dot:
                nested.setdefault(parent, {})[sub] = value
            else:
                flat[name] = value
        for parent, subs in nested.items():
            base = flat.get(parent, getattr(config, parent))
            flat[parent] = dataclasses.replace(base, **subs)
        return dataclasses.replace(config, **flat)


#: The one shared empty-overrides instance (the ``RunKey`` default).
EMPTY_OVERRIDES = Overrides()


# ---------------------------------------------------------------------------
# CLI axis parsing
# ---------------------------------------------------------------------------

def coerce_value(name: str, text: str) -> Any:
    """Parse an axis value string to the type of config field ``name``
    (the target type comes from the field's default value)."""
    current = _resolve_field(name)
    if isinstance(current, bool):
        if text.lower() in ("1", "true", "yes", "on"):
            return True
        if text.lower() in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"axis {name}: {text!r} is not a boolean")
    if isinstance(current, int):
        return int(text)
    if isinstance(current, float):
        return float(text)
    if isinstance(current, str):
        return text
    # Nested configs (l1, l2) and any future non-scalar field cannot be
    # parsed from a CLI token; keeping the raw string would only crash
    # deep inside a pool worker.
    raise ValueError(
        f"config field {name!r} ({type(current).__name__}) cannot be "
        f"swept from the command line; sweep its scalar subfields "
        f"instead (e.g. {name}.size_bytes)")


#: RunKey dimensions sweepable via ``--axis`` and their value types
#: (``app``/``n_cores``/``scheme`` have dedicated CLI flags instead).
CLI_RUNKEY_AXIS_TYPES = {"seed": int, "intervals": float,
                         "io_every": int, "fault_at": float,
                         "cluster": int}

_DEDICATED_FLAGS = {"app": "--apps", "n_cores": "--cores",
                    "scheme": "--schemes"}


def parse_axis(token: str) -> tuple[str, tuple[Any, ...]]:
    """``"detection_latency=2000,10000,50000"`` -> (name, typed values).

    ``name`` is a scalar config field (dotted nested fields included)
    or one of the :data:`CLI_RUNKEY_AXIS_TYPES` RunKey dimensions.
    """
    name, eq, values = token.partition("=")
    name = name.strip()
    if not eq or not values.strip():
        raise ValueError(
            f"axis {token!r} must look like name=value[,value...]")
    if name in _DEDICATED_FLAGS:
        raise ValueError(
            f"axis {name!r} has its own flag: use "
            f"{_DEDICATED_FLAGS[name]} instead of --axis")
    parsed = []
    for text in values.split(","):
        text = text.strip()
        try:
            if name in CLI_RUNKEY_AXIS_TYPES:
                parsed.append(CLI_RUNKEY_AXIS_TYPES[name](text))
            else:
                parsed.append(coerce_value(name, text))
        except ValueError as exc:
            # Name the failing axis: with several --axis flags a bare
            # "invalid literal" leaves the user guessing which one.
            raise ValueError(f"axis {name}: {exc}") from None
    return name, tuple(parsed)


# ---------------------------------------------------------------------------
# sweep specification
# ---------------------------------------------------------------------------

#: RunKey dimensions a sweep axis can address directly (everything else
#: becomes a config override).  ``app``, ``n_cores`` and ``scheme`` are
#: mandatory in every grid.  Note ``seed`` here is the *workload* seed
#: (``RunKey.seed``); the protocol back-off RNG seed is the config
#: field and sweeps via an ``Overrides({"seed": ...})`` mapping.
RUNKEY_AXES = ("app", "n_cores", "scheme", "intervals", "seed",
               "io_every", "fault_at", "fault_plan", "cluster")

_REQUIRED_AXES = ("app", "n_cores", "scheme")


def _axis_values(value: Any) -> tuple[Any, ...]:
    """Normalize one axis: a list/tuple sweeps, anything else is a
    single-value axis (strings and FaultPlans are scalars)."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


class SweepSpec:
    """A union of declarative axis grids, expanded into ``RunKey``s.

    ``SweepSpec.grid(app=apps, scheme=schemes, n_cores=64)`` enumerates
    the cartesian product in axis order (first axis outermost, exactly
    like the nested ``for`` loops it replaces).  ``spec_a + spec_b``
    concatenates grids, which expresses per-size parameters (a fault
    time that depends on the core count) as a sum of grids.
    """

    __slots__ = ("_grids",)

    def __init__(self, grids: Sequence[tuple[tuple[str, tuple[Any, ...]],
                                             ...]] = ()):
        self._grids = tuple(grids)

    @classmethod
    def grid(cls, **axes: Any) -> "SweepSpec":
        """One grid: each keyword is an axis (scalar or list of values)."""
        for required in _REQUIRED_AXES:
            if required not in axes:
                raise ValueError(
                    f"SweepSpec.grid needs the {required!r} axis "
                    f"(got {sorted(axes)})")
        for name in axes:
            if name not in RUNKEY_AXES:
                _resolve_field(name)   # fail at plan time, loudly
        return cls((tuple((name, _axis_values(value))
                          for name, value in axes.items()),))

    def __add__(self, other: "SweepSpec") -> "SweepSpec":
        if not isinstance(other, SweepSpec):
            return NotImplemented
        return SweepSpec(self._grids + other._grids)

    def __radd__(self, other: Any) -> "SweepSpec":
        if other == 0:          # support sum(specs)
            return self
        return NotImplemented

    def __bool__(self) -> bool:
        return bool(self._grids)

    @property
    def n_points(self) -> int:
        total = 0
        for grid in self._grids:
            n = 1
            for _, values in grid:
                n *= len(values)
            total += n
        return total

    def axis_names(self) -> list[str]:
        """Every axis name appearing in any grid, in first-seen order."""
        names: dict[str, None] = {}
        for grid in self._grids:
            for name, _ in grid:
                names.setdefault(name)
        return list(names)

    def points(self) -> Iterator[dict[str, Any]]:
        """Every grid point as an axis-name -> value dict."""
        for grid in self._grids:
            names = [name for name, _ in grid]
            for combo in itertools.product(*(values for _, values in grid)):
                yield dict(zip(names, combo))

    def keyed_points(self, runner) -> list[tuple[Any, dict[str, Any]]]:
        """``(RunKey, point)`` pairs for every grid point (in order)."""
        out = []
        for point in self.points():
            key_kwargs = {name: value for name, value in point.items()
                          if name in RUNKEY_AXES}
            overrides = {name: value for name, value in point.items()
                         if name not in RUNKEY_AXES}
            app = key_kwargs.pop("app")
            n_cores = key_kwargs.pop("n_cores")
            scheme = key_kwargs.pop("scheme")
            key = runner.key(app, n_cores, scheme,
                             overrides=overrides or None, **key_kwargs)
            out.append((key, point))
        return out

    def keys(self, runner) -> list[Any]:
        """The planned ``RunKey`` list (cartesian product per grid)."""
        return [key for key, _ in self.keyed_points(runner)]
