"""Command-line entry point: ``python -m repro.harness [experiment ...]``.

Runs the requested experiments (default: all) at a reduced scale suitable
for an interactive session and prints each figure/table as text.

Before anything runs, the planners of every requested experiment are
unioned and deduplicated, and the engine executes the missing runs in one
batch — in parallel across ``--jobs`` worker processes and backed by the
persistent result cache — after which the drivers render from cache hits.

Options::

    --cores-splash N   processor count for SPLASH-2 figures (default 64)
    --cores-parsec N   processor count for PARSEC/Apache (default 24)
    --scale N          config down-scale factor (default 40)
    --intervals X      run length in checkpoint intervals (default 3)
    --quick            tiny runs (8 cores, 2 intervals) for smoke testing
    -j / --jobs N      worker processes (default REPRO_JOBS or CPU count)
    --cache-dir DIR    result cache location (default benchmarks/.cache)
    --no-cache         bypass the persistent result cache
    --profile          print a per-run wall-clock table at the end

Fault campaigns get their own subcommand (see ``campaign --help``)::

    python -m repro.harness campaign --seed 7 --seeds 5 --mttf 1.0 \\
        --apps blackscholes --cores 8 16 --schemes global rebound rebound@4

Every campaign run is identified by its seed-deterministic fault plan,
so repeated invocations replay from the engine's disk cache.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.engine import ExperimentEngine
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    CAMPAIGN_APPS,
    fig6_9_campaign,
    parse_variant,
    plan_experiment,
    run_experiment,
)
from repro.harness.report import format_table
from repro.harness.runner import Runner
from repro.workloads import ALL_APPS, PARSEC_APACHE, SPLASH2


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                             "the CPU count)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache directory "
                             "(default: REPRO_CACHE_DIR or "
                             "benchmarks/.cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")


def _build_engine_and_runner(args) -> tuple[ExperimentEngine, Runner]:
    engine = ExperimentEngine(
        jobs=args.jobs, cache_dir=args.cache_dir,
        use_disk_cache=False if args.no_cache else None, verbose=True)
    runner = Runner(scale=args.scale, intervals=args.intervals,
                    verbose=True, engine=engine)
    return engine, runner


def campaign_main(argv: list[str]) -> int:
    """``python -m repro.harness campaign``: seeded Monte Carlo faults."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness campaign",
        description="Monte Carlo fault campaign: seeded multi-fault "
                    "recovery runs aggregated into availability, "
                    "work-lost and IREC/recovery distributions.")
    parser.add_argument("--seed", type=int, default=100,
                        help="base fault-plan seed (run i uses seed+i)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="number of seeded runs per campaign cell")
    parser.add_argument("--mttf", type=float, default=1.0,
                        help="machine-wide MTTF in checkpoint intervals")
    parser.add_argument("--apps", nargs="+", default=None,
                        help=f"workloads (default {CAMPAIGN_APPS})")
    parser.add_argument("--cores", type=int, nargs="+", default=[8, 16],
                        help="processor counts to sweep")
    parser.add_argument("--schemes", nargs="+",
                        default=["global", "rebound", "rebound@4"],
                        help="scheme variants; 'scheme@K' runs with "
                             "Dep-register cluster size K")
    parser.add_argument("--scale", type=int, default=40)
    parser.add_argument("--intervals", type=float, default=3.0)
    _add_engine_flags(parser)
    args = parser.parse_args(argv)
    variants = tuple(parse_variant(token) for token in args.schemes)
    engine, runner = _build_engine_and_runner(args)
    start = time.time()
    result = fig6_9_campaign(
        runner, apps=args.apps, sizes=tuple(args.cores),
        variants=variants, n_seeds=args.seeds, base_seed=args.seed,
        mttf_intervals=args.mttf)
    print()
    print(result.render())
    print(f"[campaign took {time.time() - start:.1f}s: "
          f"{len(engine.profile)} computed, {engine.disk_hits} from "
          f"disk cache]")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:  # pragma: no cover - exercised via the console
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    parser = argparse.ArgumentParser(prog="python -m repro.harness")
    parser.add_argument("experiments", nargs="*",
                        default=list(ALL_EXPERIMENTS),
                        help=f"subset of {sorted(ALL_EXPERIMENTS)}")
    parser.add_argument("--cores-splash", type=int, default=64)
    parser.add_argument("--cores-parsec", type=int, default=24)
    parser.add_argument("--scale", type=int, default=40)
    parser.add_argument("--intervals", type=float, default=3.0)
    parser.add_argument("--quick", action="store_true")
    _add_engine_flags(parser)
    parser.add_argument("--profile", action="store_true",
                        help="print per-run wall-clock table at the end")
    args = parser.parse_args(argv)
    if args.quick:
        args.cores_splash = 8
        args.cores_parsec = 8
        args.intervals = 2.0
        args.scale = 100
    engine, runner = _build_engine_and_runner(args)
    kwargs_by_experiment = {
        "fig6_1": {"n_cores": args.cores_parsec},
        "fig6_2": {"sizes": (min(32, args.cores_splash),
                             args.cores_splash)},
        "fig6_3": {"n_cores": args.cores_splash},
        "fig6_4": {"n_cores": args.cores_splash},
        "fig6_5": {"splash_cores": args.cores_splash,
                   "parsec_cores": args.cores_parsec},
        "fig6_6": {"sizes": tuple(sorted({max(4, args.cores_splash // 4),
                                          max(4, args.cores_splash // 2),
                                          args.cores_splash}))},
        "fig6_7": {"n_cores": args.cores_splash},
        "fig6_8": {"n_cores": args.cores_splash},
        "fig6_9": {"sizes": (max(4, args.cores_splash // 8),
                             max(8, args.cores_splash // 4))},
        "table6_1": {"splash_cores": args.cores_splash,
                     "parsec_cores": args.cores_parsec},
    }
    if args.quick:
        subset = {"apps": SPLASH2[:3]}
        for name in ("fig6_2", "fig6_3", "fig6_6", "fig6_8"):
            kwargs_by_experiment[name].update(subset)
        kwargs_by_experiment["fig6_1"]["apps"] = PARSEC_APACHE[:2]
        kwargs_by_experiment["fig6_5"]["apps"] = ALL_APPS[:3]
        kwargs_by_experiment["fig6_7"]["apps"] = ["blackscholes"]
        kwargs_by_experiment["fig6_9"].update(
            {"apps": ["blackscholes"], "sizes": (4, 8), "n_seeds": 2})
        kwargs_by_experiment["table6_1"]["apps"] = ALL_APPS[:4]
    # Plan every requested figure up front so runs shared across figures
    # execute exactly once, in one (possibly parallel) engine batch; the
    # fig6_* driver kwargs ("suite" etc.) planners don't model are not in
    # kwargs_by_experiment, so plans and drivers stay in lockstep.
    plan = []
    for name in args.experiments:
        plan.extend(plan_experiment(name, runner,
                                    **kwargs_by_experiment.get(name, {})))
    unique = len(dict.fromkeys(plan))
    print(f"[plan] {len(args.experiments)} experiment(s): "
          f"{len(plan)} planned runs, {unique} unique, "
          f"jobs={engine.jobs}, cache="
          f"{'off' if not engine.use_disk_cache else engine.cache_dir}")
    start = time.time()
    runner.prefetch(plan)
    print(f"[plan] executed in {time.time() - start:.1f}s "
          f"({len(engine.profile)} computed, {engine.disk_hits} from "
          f"disk cache)")
    for name in args.experiments:
        start = time.time()
        result = run_experiment(name, runner,
                                **kwargs_by_experiment.get(name, {}))
        print()
        print(result.render())
        print(f"[{name} took {time.time() - start:.1f}s]")
        print()
    if args.profile:
        rows = engine.profile_rows()
        total = sum(engine.profile.values())
        print(format_table(
            ["app", "cores", "scheme", "io_every", "fault_at", "wall s"],
            rows, title=f"Per-run wall clock ({len(rows)} computed runs, "
                        f"{total:.1f}s total, {engine.disk_hits} disk-"
                        f"cache hits)"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
