"""Command-line entry point: ``python -m repro.harness [experiment ...]``.

Runs the requested experiments (default: all) at a reduced scale suitable
for an interactive session and prints each figure/table as text.

Before anything runs, the planners of every requested experiment are
unioned and deduplicated, and the engine executes the missing runs in one
batch — in parallel across ``--jobs`` worker processes and backed by the
persistent result cache — after which the drivers render from cache hits.

Options::

    --cores-splash N   processor count for SPLASH-2 figures (default 64)
    --cores-parsec N   processor count for PARSEC/Apache (default 24)
    --scale N          config down-scale factor (default 40)
    --intervals X      run length in checkpoint intervals (default 3)
    --quick            tiny runs (8 cores, 2 intervals) for smoke testing
    -j / --jobs N      worker processes (default REPRO_JOBS or CPU count)
    --cache-dir DIR    result cache location (default benchmarks/.cache)
    --no-cache         bypass the persistent result cache
    --no-vector        force scalar campaign runs (REPRO_VECTOR=0)
    --chunk-size N     tasks per dispatch chunk (REPRO_CHUNK; adaptive)
    --profile          print a per-run wall-clock table and the
                       aggregated workload-store counters at the end

Fault campaigns get their own subcommand (see ``campaign --help``)::

    python -m repro.harness campaign --seed 7 --seeds 5 --mttf 1.0 \\
        --apps blackscholes --cores 8 16 --schemes global rebound rebound@4

Every campaign run is identified by its seed-deterministic fault plan,
so repeated invocations replay from the engine's disk cache.

Ad-hoc parameter sweeps over *any* machine-config axis (detection
latency, memory timing, cache geometry, ...) get the ``sweep``
subcommand; each ``--axis name=v1,v2,...`` adds one grid dimension and
every grid point becomes a cached, pool-parallel engine run::

    python -m repro.harness sweep --axis detection_latency=2000,10000,50000 \\
        --apps blackscholes --cores 8 --schemes global rebound

``--apps`` (alias ``--workloads``) tokens resolve through the workload
registry, so generators registered via
``repro.workloads.register_workload`` are addressable by name alongside
the 18 built-in application profiles.

The ``serve`` subcommand runs the persistent campaign service
(:mod:`repro.harness.service`): a file-spool job queue, a streaming
JSONL result journal, and kill-resilient restart replay.  Clients
submit priority-ordered jobs and watch them from any process; the
server shards them across the engine's worker pool::

    python -m repro.harness serve start --drain            # the server
    python -m repro.harness serve submit --quick           # a client
    python -m repro.harness serve status [JOB]
    python -m repro.harness serve cancel JOB
    python -m repro.harness serve drain --timeout 600
    python -m repro.harness serve summary JOB
    python -m repro.harness serve stop

``campaign --serve`` and ``sweep --serve`` route their plans through
the same spool/journal path, so every figure can exercise the service.

The ``lint`` subcommand runs ``reprolint``, the contract-enforcing
static analysis pass (determinism / fork-safety / fingerprint coverage
/ cache-identity hygiene — see :mod:`repro.analysis`) over the shipped
tree and exits non-zero on any unsuppressed finding::

    python -m repro.harness lint [--json] [--rules RL001,RL003]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.engine import ExperimentEngine
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    CAMPAIGN_APPS,
    fig6_9_campaign,
    parse_variant,
    plan_experiment,
    plan_fig6_9,
    run_experiment,
)
from repro.harness.report import format_table
from repro.harness.runner import Runner
from repro.harness.scenario import SweepSpec, parse_axis
from repro.workloads import (
    ALL_APPS,
    PARSEC_APACHE,
    SPLASH2,
    resolve_workload,
    workload_name,
)


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                             "the CPU count)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result cache directory "
                             "(default: REPRO_CACHE_DIR or "
                             "benchmarks/.cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache")
    parser.add_argument("--vector", dest="vector", action="store_true",
                        default=None,
                        help="batch same-workload fault replicas through "
                             "the vectorized executor (default: on when "
                             "numpy is available)")
    parser.add_argument("--no-vector", dest="vector", action="store_false",
                        help="force scalar campaign runs (same as "
                             "REPRO_VECTOR=0)")
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="tasks packed per parallel dispatch chunk "
                             "(default: REPRO_CHUNK or adaptive)")


def _add_serve_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--serve", action="store_true",
                        help="route the planned runs through the "
                             "campaign service (spooled job + JSONL "
                             "result journal) instead of a direct "
                             "engine batch")
    parser.add_argument("--spool", default=None,
                        help="service spool directory (default: "
                             "REPRO_SERVE_SPOOL or <cache-dir>/service)")


def _service_prefetch(engine: ExperimentEngine, keys, spool,
                      label: str) -> str:
    """Run ``keys`` as one spooled service job, draining in-process.

    Lands every result in the engine memo (so the caller's driver
    renders from cache hits) *and* in the spool's journal — a later
    ``serve summary JOB`` reproduces the table without re-running.
    """
    from repro.harness.service import CampaignService

    keys = list(dict.fromkeys(keys))
    service = CampaignService(spool_dir=spool, engine=engine)
    job_id = service.submit(keys, label=label)
    print(f"[serve] spool {service.spool}: job {job_id} "
          f"({len(keys)} runs)")
    service.serve(drain=True)
    status = service.status(job_id) or {}
    print(f"[serve] job {job_id}: {status.get('state')} "
          f"({status.get('computed', 0)} computed, "
          f"{status.get('replayed', 0)} replayed)")
    return job_id


def _build_engine_and_runner(args) -> tuple[ExperimentEngine, Runner]:
    engine = ExperimentEngine(
        jobs=args.jobs, cache_dir=args.cache_dir,
        use_disk_cache=False if args.no_cache else None, verbose=True,
        vector=args.vector, chunk_size=args.chunk_size)
    runner = Runner(scale=args.scale, intervals=args.intervals,
                    verbose=True, engine=engine)
    return engine, runner


def campaign_main(argv: list[str]) -> int:
    """``python -m repro.harness campaign``: seeded Monte Carlo faults."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness campaign",
        description="Monte Carlo fault campaign: seeded multi-fault "
                    "recovery runs aggregated into availability, "
                    "work-lost and IREC/recovery distributions.")
    parser.add_argument("--seed", type=int, default=100,
                        help="base fault-plan seed (run i uses seed+i)")
    parser.add_argument("--seeds", type=int, default=3,
                        help="number of seeded runs per campaign cell")
    parser.add_argument("--mttf", type=float, default=1.0,
                        help="machine-wide MTTF in checkpoint intervals")
    parser.add_argument("--apps", "--workloads", dest="apps", nargs="+",
                        default=None,
                        help=f"registered workload names (default "
                             f"{CAMPAIGN_APPS})")
    parser.add_argument("--cores", type=int, nargs="+", default=[8, 16],
                        help="processor counts to sweep")
    parser.add_argument("--schemes", nargs="+",
                        default=["global", "rebound", "rebound@4"],
                        help="scheme variants; 'scheme@K' runs with "
                             "Dep-register cluster size K")
    parser.add_argument("--scale", type=int, default=40)
    parser.add_argument("--intervals", type=float, default=3.0)
    _add_engine_flags(parser)
    _add_serve_flags(parser)
    args = parser.parse_args(argv)
    variants = tuple(parse_variant(token) for token in args.schemes)
    apps = ([resolve_workload(token) for token in args.apps]
            if args.apps is not None else None)
    engine, runner = _build_engine_and_runner(args)
    start = time.time()
    if args.serve:
        # Land the whole plan through the service (spool + journal);
        # the driver below then renders purely from memo hits.
        _service_prefetch(
            engine, plan_fig6_9(runner, apps, tuple(args.cores),
                                variants, args.seeds, args.seed,
                                args.mttf),
            args.spool, label="campaign")
    result = fig6_9_campaign(
        runner, apps=apps, sizes=tuple(args.cores),
        variants=variants, n_seeds=args.seeds, base_seed=args.seed,
        mttf_intervals=args.mttf)
    print()
    print(result.render())
    print(f"[campaign took {time.time() - start:.1f}s: "
          f"{len(engine.profile)} computed, {engine.disk_hits} from "
          f"disk cache]")
    return 0


def sweep_main(argv: list[str]) -> int:
    """``python -m repro.harness sweep``: grid sweep over config axes.

    Exercises the scenario layer end-to-end: every ``--axis`` value
    combination becomes a ``RunKey`` with config overrides, planned as
    one batch through the engine (process pool + persistent cache).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Parameter sweep over arbitrary machine-config "
                    "axes (e.g. --axis detection_latency=2000,10000); "
                    "every grid point is a cached engine run.")
    parser.add_argument("--axis", action="append", default=[],
                        metavar="NAME=V1,V2,...",
                        help="axis to sweep (repeatable): a scalar "
                             "MachineConfig field (dotted nested fields "
                             "like l1.size_bytes included) or a RunKey "
                             "dimension (seed, intervals, io_every, "
                             "fault_at, cluster); note 'seed' is the "
                             "workload seed, not the back-off RNG "
                             "config field")
    parser.add_argument("--apps", "--workloads", dest="apps", nargs="+",
                        default=["blackscholes"],
                        help="registered workload names to sweep "
                             "(default blackscholes)")
    parser.add_argument("--cores", type=int, nargs="+", default=[8],
                        help="processor counts to sweep")
    parser.add_argument("--schemes", nargs="+", default=["rebound"],
                        help="scheme variants; 'scheme@K' runs with "
                             "Dep-register cluster size K")
    parser.add_argument("--fault-at", type=float, default=None,
                        help="inject one core-0 fault at this cycle")
    parser.add_argument("--scale", type=int, default=40)
    parser.add_argument("--intervals", type=float, default=None,
                        help="run length in checkpoint intervals "
                             "(default 3, or 1.5 with --quick)")
    parser.add_argument("--quick", action="store_true",
                        help="tiny smoke-test runs (4 cores, scale 300, "
                             "1.5 intervals)")
    _add_engine_flags(parser)
    _add_serve_flags(parser)
    args = parser.parse_args(argv)
    if not args.axis:
        parser.error("at least one --axis NAME=V1,V2,... is required")
    axes: dict[str, tuple] = {}
    for token in args.axis:
        name, values = parse_axis(token)
        if name in axes:
            parser.error(f"--axis {name} given twice; merge the values "
                         f"into one --axis {name}=v1,v2,...")
        axes[name] = values
    if "intervals" in axes and args.intervals is not None:
        parser.error("--intervals conflicts with --axis intervals=...")
    if args.quick:
        args.cores = [4]
        args.scale = 300
    if args.intervals is None:
        args.intervals = 1.5 if args.quick else 3.0
    if "seed" in axes:
        # The one name that is both a RunKey dimension and a config
        # field; say which one the sweep addresses instead of silently
        # answering a different question.
        print("[sweep] note: axis 'seed' sweeps the workload seed "
              "(RunKey.seed); the protocol back-off RNG seed "
              "(MachineConfig.seed) is not CLI-sweepable", flush=True)
    variants = tuple(parse_variant(token) for token in args.schemes)
    apps = [resolve_workload(token) for token in args.apps]
    if "cluster" in axes and any(v.cluster != 1 for v in variants):
        parser.error("give the cluster size either as --schemes "
                     "scheme@K or as --axis cluster=..., not both")
    if "fault_at" in axes and args.fault_at is not None:
        parser.error("--fault-at conflicts with --axis fault_at=...")
    engine, runner = _build_engine_and_runner(args)
    spec = SweepSpec()
    for variant in variants:
        base = {"scheme": variant.scheme, "app": apps,
                "n_cores": args.cores}
        if "cluster" not in axes:
            base["cluster"] = variant.cluster
        if "fault_at" not in axes:
            base["fault_at"] = args.fault_at
        spec += SweepSpec.grid(**base, **axes)
    points = spec.keyed_points(runner)
    print(f"[sweep] {len(axes)} axis/axes x {len(variants)} variant(s): "
          f"{len(points)} runs, jobs={engine.jobs}, cache="
          f"{'off' if not engine.use_disk_cache else engine.cache_dir}")
    start = time.time()
    if args.serve:
        _service_prefetch(engine, [key for key, _ in points],
                          args.spool, label="sweep")
    else:
        runner.prefetch(key for key, _ in points)
    axis_names = [name for name in spec.axis_names() if name in axes]
    rows = []
    for key, point in points:
        stats = runner.engine.run(key)
        # A swept cluster gets its own column; suffixing scheme@K too
        # would print the same value twice per row.
        rows.append([
            workload_name(point["app"]), point["n_cores"],
            point["scheme"].value + (f"@{point['cluster']}"
                                     if point["cluster"] != 1
                                     and "cluster" not in axes else ""),
            *(point[name] for name in axis_names),
            f"{stats.runtime:,.0f}",
            len(stats.checkpoints),
            len(stats.rollbacks),
            f"{100 * stats.availability():.2f}%",
            f"{100 * stats.effective_availability():.2f}%",
        ])
    print()
    print(format_table(
        ["app", "cores", "scheme", *axis_names, "runtime (cyc)",
         "ckpts", "rollbacks", "availability", "eff avail"],
        rows, title=f"Sweep over {', '.join(axis_names)}"))
    print(f"[sweep took {time.time() - start:.1f}s: "
          f"{len(engine.profile)} computed, {engine.disk_hits} from "
          f"disk cache]")
    return 0


def serve_main(argv: list[str]) -> int:
    """``python -m repro.harness serve``: the persistent campaign
    service over a file-based job spool (see
    :mod:`repro.harness.service`)."""
    from repro.harness.service import CampaignService, default_spool_dir

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve",
        description="Persistent campaign service: spool jobs, stream "
                    "results to a JSONL journal, survive restarts with "
                    "zero recomputation of landed runs.")
    parser.add_argument("action",
                        choices=["start", "submit", "status", "cancel",
                                 "drain", "summary", "stop"],
                        help="start: run the server loop; submit: spool "
                             "a fig6_9 campaign job; status/cancel/"
                             "drain/summary/stop: client operations")
    parser.add_argument("job", nargs="?", default=None,
                        help="job id (cancel/summary; optional for "
                             "status)")
    parser.add_argument("--spool", default=None,
                        help="spool directory (default: "
                             "REPRO_SERVE_SPOOL or <cache-dir>/service)")
    # server flags
    parser.add_argument("--drain", action="store_true",
                        help="start: exit once the queue is empty "
                             "instead of idling for more submissions")
    parser.add_argument("--poll", type=float, default=0.5,
                        help="start: idle poll interval in seconds")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="start: give up idling after this long")
    # submit flags (a fig6_9 campaign plan, like the campaign driver)
    parser.add_argument("--seed", type=int, default=100)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--mttf", type=float, default=1.0)
    parser.add_argument("--apps", "--workloads", dest="apps", nargs="+",
                        default=None)
    parser.add_argument("--cores", type=int, nargs="+", default=[8, 16])
    parser.add_argument("--schemes", nargs="+",
                        default=["global", "rebound", "rebound@4"])
    parser.add_argument("--scale", type=int, default=40)
    parser.add_argument("--intervals", type=float, default=3.0)
    parser.add_argument("--quick", action="store_true",
                        help="submit: tiny smoke-test campaign "
                             "(4 cores, scale 300, 1.5 intervals)")
    parser.add_argument("--priority", type=int, default=0,
                        help="submit: higher runs first")
    parser.add_argument("--label", default="",
                        help="submit: free-form job label")
    parser.add_argument("--timeout", type=float, default=None,
                        help="drain: give up after this many seconds")
    _add_engine_flags(parser)
    args = parser.parse_args(argv)
    spool = args.spool if args.spool is not None else default_spool_dir()

    if args.action == "start":
        engine, _ = _build_engine_and_runner(args)
        service = CampaignService(spool_dir=spool, engine=engine)
        replayed = service.replay()
        print(f"[serve] spool {service.spool}: serving "
              f"(jobs={engine.jobs}, {replayed} journaled result(s) "
              f"replayed)", flush=True)
        processed = service.serve(poll=args.poll, drain=args.drain,
                                  max_seconds=args.max_seconds)
        print(f"[serve] exiting: {processed} job(s) executed")
        return 0

    service = CampaignService(spool_dir=spool)  # client-only: no engine
    if args.action == "submit":
        if args.quick:
            args.cores = [4]
            args.scale = 300
            args.intervals = 1.5
        variants = tuple(parse_variant(token)
                         for token in args.schemes)
        apps = ([resolve_workload(token) for token in args.apps]
                if args.apps is not None else None)
        runner = Runner(scale=args.scale, intervals=args.intervals)
        keys = plan_fig6_9(runner, apps, tuple(args.cores), variants,
                           args.seeds, args.seed, args.mttf)
        job_id = service.submit(keys, priority=args.priority,
                                label=args.label or "campaign")
        print(f"[serve] spool {service.spool}: job {job_id} "
              f"({len(set(keys))} runs, priority {args.priority})")
        print(job_id)
        return 0
    if args.action == "status":
        statuses = ([service.status(args.job)]
                    if args.job else service.statuses())
        if not statuses or statuses[0] is None:
            print(f"[serve] unknown job {args.job}", file=sys.stderr)
            return 1
        rows = [[s["job"], s.get("label", ""), s.get("state", "?"),
                 s.get("total", 0), s.get("landed", 0),
                 s.get("computed", 0), s.get("replayed", 0),
                 s.get("failed", 0), s.get("pending", 0)]
                for s in statuses]
        print(format_table(
            ["job", "label", "state", "total", "landed", "computed",
             "replayed", "failed", "pending"],
            rows, title=f"Spool {service.spool}"))
        return 0
    if args.action == "cancel":
        if not args.job:
            parser.error("cancel needs a job id")
        if not service.cancel(args.job):
            print(f"[serve] unknown job {args.job}", file=sys.stderr)
            return 1
        print(f"[serve] cancel requested for {args.job}")
        return 0
    if args.action == "drain":
        jobs = [args.job] if args.job else None
        if service.wait(jobs, timeout=args.timeout):
            print("[serve] drained: all jobs terminal")
            return 0
        print("[serve] drain timed out", file=sys.stderr)
        return 1
    if args.action == "summary":
        if not args.job:
            parser.error("summary needs a job id")
        summary = service.summarize(args.job)
        if summary.n_runs == 0:
            print(f"[serve] no landed results for {args.job}",
                  file=sys.stderr)
            return 1
        p95 = summary.recovery_latency_percentile(95)
        print(format_table(
            ["runs", "faults inj", "delivered", "rollbacks/run",
             "IREC (lines)", "recovery (cyc)", "p95 recovery",
             "availability", "eff avail"],
            [[summary.n_runs, summary.injected_faults,
              summary.delivered_faults,
              f"{summary.mean_rollbacks_per_run:.2f}",
              f"{summary.mean_irec_size:.1f}",
              f"{summary.mean_recovery_latency:,.0f}",
              "-" if p95 != p95 else f"{p95:,.0f}",
              f"{100 * summary.mean_availability:.2f}%",
              f"{100 * summary.mean_effective_availability:.2f}%"]],
            title=f"Journal summary for {args.job}"))
        return 0
    # stop
    service.request_stop()
    print("[serve] stop requested")
    return 0


def lint_main(argv: list[str]) -> int:
    """``python -m repro.harness lint``: the reprolint analysis pass."""
    # Imported here, not at module top: the analysis layer is pure
    # tooling and must never ride into the engine's pool workers.
    from repro.analysis import (
        LintError,
        Project,
        registered_rules,
        run_lint,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness lint",
        description="Contract-enforcing static analysis: determinism "
                    "(RL002), fork-safety (RL001), fingerprint "
                    "coverage (RL003) and cache-identity hygiene "
                    "(RL004) over the repro tree.  Exits 1 on any "
                    "unsuppressed finding.")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    parser.add_argument("--rules", nargs="+", default=None,
                        metavar="CODE",
                        help="rule codes to run (space- or comma-"
                             "separated; default: all registered)")
    parser.add_argument("--root", default=None,
                        help="package directory to lint (default: the "
                             "installed repro package, with the "
                             "fingerprint file set taken from the "
                             "engine)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in registered_rules():
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0
    codes = None
    if args.rules is not None:
        codes = [code for token in args.rules
                 for code in token.split(",") if code]
    project = None
    if args.root is not None:
        from pathlib import Path
        root = Path(args.root)
        project = Project(root=root, package=root.name)
    try:
        report = run_lint(project=project, rules=codes)
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    print(report.render_json() if args.json else report.render())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:  # pragma: no cover - exercised via the console
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(prog="python -m repro.harness")
    parser.add_argument("experiments", nargs="*",
                        default=list(ALL_EXPERIMENTS),
                        help=f"subset of {sorted(ALL_EXPERIMENTS)}")
    parser.add_argument("--cores-splash", type=int, default=64)
    parser.add_argument("--cores-parsec", type=int, default=24)
    parser.add_argument("--scale", type=int, default=40)
    parser.add_argument("--intervals", type=float, default=3.0)
    parser.add_argument("--quick", action="store_true")
    _add_engine_flags(parser)
    parser.add_argument("--profile", action="store_true",
                        help="print per-run wall-clock table at the end")
    args = parser.parse_args(argv)
    if args.quick:
        args.cores_splash = 8
        args.cores_parsec = 8
        args.intervals = 2.0
        args.scale = 100
    engine, runner = _build_engine_and_runner(args)
    kwargs_by_experiment = {
        "fig6_1": {"n_cores": args.cores_parsec},
        "fig6_2": {"sizes": (min(32, args.cores_splash),
                             args.cores_splash)},
        "fig6_3": {"n_cores": args.cores_splash},
        "fig6_4": {"n_cores": args.cores_splash},
        "fig6_5": {"splash_cores": args.cores_splash,
                   "parsec_cores": args.cores_parsec},
        "fig6_6": {"sizes": tuple(sorted({max(4, args.cores_splash // 4),
                                          max(4, args.cores_splash // 2),
                                          args.cores_splash}))},
        "fig6_7": {"n_cores": args.cores_splash},
        "fig6_8": {"n_cores": args.cores_splash},
        "fig6_9": {"sizes": (max(4, args.cores_splash // 8),
                             max(8, args.cores_splash // 4))},
        "fig_l_sensitivity": {"n_cores": max(4, args.cores_splash // 8)},
        "table6_1": {"splash_cores": args.cores_splash,
                     "parsec_cores": args.cores_parsec},
    }
    if args.quick:
        subset = {"apps": SPLASH2[:3]}
        for name in ("fig6_2", "fig6_3", "fig6_6", "fig6_8"):
            kwargs_by_experiment[name].update(subset)
        kwargs_by_experiment["fig6_1"]["apps"] = PARSEC_APACHE[:2]
        kwargs_by_experiment["fig6_5"]["apps"] = ALL_APPS[:3]
        kwargs_by_experiment["fig6_7"]["apps"] = ["blackscholes"]
        kwargs_by_experiment["fig6_9"].update(
            {"apps": ["blackscholes"], "sizes": (4, 8), "n_seeds": 2})
        kwargs_by_experiment["fig_l_sensitivity"].update(
            {"apps": ["blackscholes"], "n_cores": 4})
        kwargs_by_experiment["table6_1"]["apps"] = ALL_APPS[:4]
    # Plan every requested figure up front so runs shared across figures
    # execute exactly once, in one (possibly parallel) engine batch; the
    # fig6_* driver kwargs ("suite" etc.) planners don't model are not in
    # kwargs_by_experiment, so plans and drivers stay in lockstep.
    plan = []
    for name in args.experiments:
        plan.extend(plan_experiment(name, runner,
                                    **kwargs_by_experiment.get(name, {})))
    unique = len(dict.fromkeys(plan))
    print(f"[plan] {len(args.experiments)} experiment(s): "
          f"{len(plan)} planned runs, {unique} unique, "
          f"jobs={engine.jobs}, cache="
          f"{'off' if not engine.use_disk_cache else engine.cache_dir}")
    start = time.time()
    runner.prefetch(plan)
    print(f"[plan] executed in {time.time() - start:.1f}s "
          f"({len(engine.profile)} computed, {engine.disk_hits} from "
          f"disk cache)")
    for name in args.experiments:
        start = time.time()
        result = run_experiment(name, runner,
                                **kwargs_by_experiment.get(name, {}))
        print()
        print(result.render())
        print(f"[{name} took {time.time() - start:.1f}s]")
        print()
    if args.profile:
        rows = engine.profile_rows()
        total = sum(engine.profile.values())
        print(format_table(
            ["app", "cores", "scheme", "io_every", "fault_at", "cluster",
             "overrides", "batch", "wall s"],
            rows, title=f"Per-run wall clock ({len(rows)} computed runs, "
                        f"{total:.1f}s total, {engine.disk_hits} disk-"
                        f"cache hits)"))
        counters = engine.store_counters()
        print(f"[workload store] "
              + ", ".join(f"{name}={count}"
                          for name, count in counters.items()))
        mem = engine.memsys_counters()
        accesses = mem["mem_accesses"]
        l1_total = mem["l1_hits"] + mem["l1_misses"]
        l2_total = mem["l2_hits"] + mem["l2_misses"]
        fast = mem["fastpath_loads"] + mem["fastpath_stores"]
        print(f"[memsys] "
              f"fastpath_hit_rate={fast / accesses:.3f}, "
              f"l1_hit_rate={mem['l1_hits'] / max(1, l1_total):.3f}, "
              f"l2_hit_rate={mem['l2_hits'] / max(1, l2_total):.3f}, "
              f"invalidations={mem['invalidations']}, "
              f"epoch_bumps={mem['fastpath_epoch_bumps']}, "
              f"accesses={accesses}"
              if accesses else "[memsys] no completed runs in-process")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
