"""Figure 6.8: estimated on-chip power, SPLASH-2 average."""

from conftest import publish

from repro.harness.experiments import fig6_8_power


def test_fig6_8_power(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_8_power, args=(runner,),
        kwargs={"apps": params.splash_apps,
                "n_cores": params.cores_splash},
        rounds=1, iterations=1)
    publish(result)
    rows = {r[0]: r for r in result.rows}
    reb_power_delta = float(rows["rebound"][2].rstrip("%"))
    reb_ed2_delta = float(rows["rebound"][3].rstrip("%"))
    # Rebound pays a small power adder (paper: +4%, of which 1.3%
    # structures) but wins ED^2 (paper: -27%) by finishing faster.
    assert -2.0 <= reb_power_delta <= 15.0
    assert reb_ed2_delta < 0.0
