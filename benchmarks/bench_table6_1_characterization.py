"""Table 6.1: WSIG false positives, log volume, extra coherence traffic."""

from conftest import publish

from repro.harness.experiments import table6_1_characterization


def test_table6_1_characterization(benchmark, runner, params):
    result = benchmark.pedantic(
        table6_1_characterization, args=(runner,),
        kwargs={"apps": params.all_apps,
                "splash_cores": params.cores_splash,
                "parsec_cores": params.cores_parsec},
        rounds=1, iterations=1)
    publish(result)
    avg = result.rows[-1]
    fp_increase = float(avg[1].rstrip("%"))
    msg_increase = float(avg[4].rstrip("%"))
    # Paper: ~2.0% average ICHK inflation, ~4.2% extra messages; our
    # scaled WSIG makes the FP rate the same order of magnitude.
    assert 0.0 <= fp_increase < 30.0
    assert 0.0 < msg_increase < 25.0
    # Log volume must be nonzero for every app.
    for row in result.rows[:-1]:
        assert float(row[2]) > 0.0
