"""Figure 6.1: average ICHK size, PARSEC + Apache at 24 processors."""

from conftest import publish

from repro.harness.experiments import fig6_1_ichk_parsec


def test_fig6_1_ichk_parsec(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_1_ichk_parsec, args=(runner,),
        kwargs={"n_cores": params.cores_parsec, "apps": params.parsec_apps},
        rounds=1, iterations=1)
    publish(result)
    # Shape check: Rebound's interaction sets are a strict subset of the
    # machine, and the locality-heavy codes stay small.
    fractions = [float(row[2].rstrip("%")) for row in result.rows]
    assert all(0.0 < frac <= 100.0 for frac in fractions)
    average = fractions[-1]
    assert average < 85.0, "ICHK must be well below global"
