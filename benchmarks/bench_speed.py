"""Kernel micro-benchmark: raw serial ``Machine.run()`` throughput,
plus workload-build wall time (cold generator vs. warm workload store).

Times a fixed (app, cores, scheme) matrix — the same matrix regardless
of ``REPRO_BENCH_FAST`` so numbers stay comparable across sessions —
and writes ``BENCH_speed.json`` at the repo root so the performance
trajectory of the simulation hot path is tracked from PR to PR.  The
``workload_store`` section times building the FAST benchmark app set
from its profiles (cold) against deserializing it from a freshly
populated content-addressed workload store (warm) — the build path the
engine's pool workers take.  The ``vector`` section sweeps the
replica-batch width of the vectorized campaign executor against
scalar per-replica runs at two fault densities, with per-replica
parity asserted (skipped without numpy).

The ``lint`` section times the ``reprolint`` static analysis pass over
the full shipped tree (parse + all four contract rules), so the
analyzer's cost — it runs on every CI push — stays visible from PR to
PR, and asserts the tree is clean while it is at it.

This deliberately bypasses the runner/engine caches: it measures the
simulator kernel and the workload build path themselves, not the
harness.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.harness.workload_store import WorkloadStore
from repro.params import MachineConfig, Scheme
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine
from repro.sim.vector import have_numpy, run_replica_batch
from repro.workloads import PARSEC_APACHE, SPLASH2, get_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_speed.json"

#: Fixed matrix: a cheap-scheme baseline, the two main scheme families,
#: a barrier-heavy app and a PARSEC app (coherence-traffic heavy).
MATRIX = (
    ("blackscholes", 16, Scheme.REBOUND),
    ("ocean", 16, Scheme.GLOBAL),
    ("water_sp", 8, Scheme.NONE),
    ("barnes", 8, Scheme.REBOUND_BARR),
    ("streamcluster", 8, Scheme.REBOUND),
)
SCALE = 40
INTERVALS = 2.0
REPEATS = 5  # wall-clock is min-of-N to shrug off machine noise

#: The FAST benchmark app set (benchmarks/conftest.py under
#: ``REPRO_BENCH_FAST=1``), timed at one representative size.
STORE_APPS = tuple(SPLASH2[:4] + PARSEC_APACHE[:3])
STORE_CORES = 16


def _run_once(app: str, n_cores: int, scheme: Scheme):
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                  scale=SCALE)
    workload = get_workload(app, n_cores, config, intervals=INTERVALS,
                            seed=1)
    machine = Machine(config, workload)
    start = time.perf_counter()
    stats = machine.run()
    return stats, time.perf_counter() - start


def _measure_workload_store() -> dict:
    """Cold generator build vs. warm store load for the FAST app set.

    Symmetric min-of-N methodology: each cold pass builds into its own
    fresh store directory (so every pass really generates and
    serializes), the warm passes replay from the last populated store.
    """
    config = MachineConfig.scaled(n_cores=STORE_CORES,
                                  scheme=Scheme.REBOUND, scale=SCALE)
    cold = float("inf")
    warm = float("inf")
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory() as tmp:
            store = WorkloadStore(Path(tmp))
            start = time.perf_counter()
            for app in STORE_APPS:
                store.get_or_build(app, STORE_CORES, config, INTERVALS, 1)
            cold = min(cold, time.perf_counter() - start)
            assert store.misses == len(STORE_APPS)
            for _ in range(REPEATS):
                start = time.perf_counter()
                for app in STORE_APPS:
                    store.get_or_build(app, STORE_CORES, config,
                                       INTERVALS, 1)
                warm = min(warm, time.perf_counter() - start)
            assert store.hits == REPEATS * len(STORE_APPS)
    return {
        "apps": list(STORE_APPS),
        "n_cores": STORE_CORES,
        "cold_build_s": round(cold, 4),
        "warm_load_s": round(warm, 4),
        "speedup": round(cold / warm, 1),
    }


#: Replica-batch sweep of the vectorized campaign executor: the FAST
#: campaign config (blackscholes x8 Rebound), batch widths N, at two
#: fault densities — the paper's default dense campaign (MTTF = one
#: checkpoint interval, replicas diverge early, modest sharing) and a
#: sparse campaign (MTTF = eight intervals, most replicas ride the
#: leader almost to the end).  Scalar N=1..64 runs are the expensive
#: side, so this section is single-pass instead of min-of-REPEATS.
VECTOR_APP = "blackscholes"
VECTOR_CORES = 8
VECTOR_WIDTHS = (1, 4, 16, 64)
VECTOR_DENSITIES = (("dense", 1.0), ("sparse", 8.0))


def _measure_vector() -> dict:
    """Scalar vs. vectorized campaign throughput, parity-checked.

    Every vector replica's runtime is asserted equal to its scalar
    twin's — the benchmark refuses to report a speedup bought with
    different results.
    """
    config = MachineConfig.scaled(n_cores=VECTOR_CORES,
                                  scheme=Scheme.REBOUND, scale=SCALE)
    workload = get_workload(VECTOR_APP, VECTOR_CORES, config,
                            intervals=INTERVALS, seed=1)
    interval = config.checkpoint_interval
    horizon = INTERVALS * interval
    rows = []
    for label, mttf_intervals in VECTOR_DENSITIES:
        for width in VECTOR_WIDTHS:
            plans = [list(FaultPlan.from_mttf(
                seed=100 + i, mttf=mttf_intervals * interval,
                horizon=horizon, n_cores=VECTOR_CORES).faults)
                for i in range(width)]
            start = time.perf_counter()
            scalar = [Machine(config, workload,
                              faults=faults or None).run()
                      for faults in plans]
            scalar_wall = time.perf_counter() - start
            start = time.perf_counter()
            batch = run_replica_batch(config, workload, plans)
            vector_wall = time.perf_counter() - start
            for ref, got in zip(scalar, batch.stats):
                assert ref.runtime == got.runtime, \
                    f"{label} N={width}: vector diverged from scalar"
                assert ref.cores == got.cores
            cycles = sum(s.runtime for s in scalar)
            rows.append({
                "density": label,
                "mttf_intervals": mttf_intervals,
                "width": width,
                "spilled": batch.report.spilled,
                "direct_runs": batch.report.direct_runs,
                "leader_served": batch.report.leader_served,
                "scalar_wall_s": round(scalar_wall, 4),
                "vector_wall_s": round(vector_wall, 4),
                "scalar_sim_cycles_per_s": round(cycles / scalar_wall),
                "vector_sim_cycles_per_s": round(cycles / vector_wall),
                "speedup": round(scalar_wall / vector_wall, 2),
            })
    return {
        "app": VECTOR_APP,
        "n_cores": VECTOR_CORES,
        "scheme": Scheme.REBOUND.value,
        "note": ("exact prefix sharing: replicas are bit-identical to "
                 "scalar runs; dense campaigns diverge early and gain "
                 "modestly, sparse campaigns approach width-fold"),
        "rows": rows,
    }


def _measure_lint() -> dict:
    """Wall time of one full ``reprolint`` pass over the shipped tree
    (min-of-N; the parse and the import graph dominate)."""
    from repro.analysis import run_lint

    report = None
    wall = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = run_lint()
        wall = min(wall, time.perf_counter() - start)
    assert report.ok, report.render()
    return {
        "rules": list(report.rules),
        "checked_files": report.checked_files,
        "findings": len(report.findings),
        "suppressed": report.suppressed,
        "wall_s": round(wall, 4),
        "files_per_s": round(report.checked_files / wall),
    }


def test_kernel_speed():
    results = []
    total_wall = 0.0
    total_cycles = 0.0
    total_instr = 0
    for app, n_cores, scheme in MATRIX:
        wall = float("inf")
        stats = None
        for _ in range(REPEATS):
            stats, elapsed = _run_once(app, n_cores, scheme)
            wall = min(wall, elapsed)
        assert stats.runtime > 0
        results.append({
            "app": app,
            "n_cores": n_cores,
            "scheme": scheme.value,
            "wall_s": round(wall, 4),
            "sim_cycles": stats.runtime,
            "instructions": stats.total_instructions,
            "sim_cycles_per_s": round(stats.runtime / wall),
            "instr_per_s": round(stats.total_instructions / wall),
        })
        total_wall += wall
        total_cycles += stats.runtime
        total_instr += stats.total_instructions
    store = _measure_workload_store()
    vector = _measure_vector() if have_numpy() else {
        "skipped": "numpy not installed"}
    lint = _measure_lint()
    payload = {
        "schema": 4,
        "scale": SCALE,
        "intervals": INTERVALS,
        "repeats": REPEATS,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
        "total_wall_s": round(total_wall, 4),
        "aggregate_sim_cycles_per_s": round(total_cycles / total_wall),
        "aggregate_instr_per_s": round(total_instr / total_wall),
        "workload_store": store,
        "vector": vector,
        "lint": lint,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"kernel speed: {payload['aggregate_sim_cycles_per_s']:,} "
          f"simulated cycles/s, {payload['aggregate_instr_per_s']:,} "
          f"instr/s over {total_wall:.2f}s wall "
          f"({len(results)} configurations)")
    for row in results:
        print(f"  {row['app']:14s} x{row['n_cores']:<3d} "
              f"{row['scheme']:14s} {row['wall_s']:7.3f}s  "
              f"{row['sim_cycles_per_s']:>12,} simcyc/s")
    print(f"workload build ({len(store['apps'])} FAST apps "
          f"x{store['n_cores']}): cold {store['cold_build_s']:.3f}s, "
          f"store-warm {store['warm_load_s']:.3f}s "
          f"({store['speedup']:.0f}x)")
    if "rows" in vector:
        print(f"vector campaigns ({vector['app']} x{vector['n_cores']} "
              f"{vector['scheme']}):")
        for row in vector["rows"]:
            print(f"  {row['density']:6s} N={row['width']:<3d} "
                  f"scalar {row['scalar_wall_s']:7.3f}s  "
                  f"vector {row['vector_wall_s']:7.3f}s  "
                  f"{row['speedup']:5.2f}x "
                  f"(spilled {row['spilled']}, direct "
                  f"{row['direct_runs']}, served "
                  f"{row['leader_served']})")
    else:
        print(f"vector campaigns: {vector['skipped']}")
    print(f"reprolint ({','.join(lint['rules'])}): "
          f"{lint['checked_files']} files in {lint['wall_s']:.3f}s "
          f"({lint['files_per_s']:,} files/s, "
          f"{lint['findings']} findings)")
