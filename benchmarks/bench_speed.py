"""Kernel micro-benchmark: raw serial ``Machine.run()`` throughput.

Times a fixed (app, cores, scheme) matrix — the same matrix regardless
of ``REPRO_BENCH_FAST`` so numbers stay comparable across sessions —
and writes ``BENCH_speed.json`` at the repo root so the performance
trajectory of the simulation hot path is tracked from PR to PR.

This deliberately bypasses the runner/engine caches: it measures the
simulator kernel itself, not the harness.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.params import MachineConfig, Scheme
from repro.sim.machine import Machine
from repro.workloads import get_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_speed.json"

#: Fixed matrix: a cheap-scheme baseline, the two main scheme families,
#: a barrier-heavy app and a PARSEC app (coherence-traffic heavy).
MATRIX = (
    ("blackscholes", 16, Scheme.REBOUND),
    ("ocean", 16, Scheme.GLOBAL),
    ("water_sp", 8, Scheme.NONE),
    ("barnes", 8, Scheme.REBOUND_BARR),
    ("streamcluster", 8, Scheme.REBOUND),
)
SCALE = 40
INTERVALS = 2.0
REPEATS = 3  # wall-clock is min-of-N to shrug off machine noise


def _run_once(app: str, n_cores: int, scheme: Scheme):
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                  scale=SCALE)
    workload = get_workload(app, n_cores, config, intervals=INTERVALS,
                            seed=1)
    machine = Machine(config, workload)
    start = time.perf_counter()
    stats = machine.run()
    return stats, time.perf_counter() - start


def test_kernel_speed():
    results = []
    total_wall = 0.0
    total_cycles = 0.0
    total_instr = 0
    for app, n_cores, scheme in MATRIX:
        wall = float("inf")
        stats = None
        for _ in range(REPEATS):
            stats, elapsed = _run_once(app, n_cores, scheme)
            wall = min(wall, elapsed)
        assert stats.runtime > 0
        results.append({
            "app": app,
            "n_cores": n_cores,
            "scheme": scheme.value,
            "wall_s": round(wall, 4),
            "sim_cycles": stats.runtime,
            "instructions": stats.total_instructions,
            "sim_cycles_per_s": round(stats.runtime / wall),
            "instr_per_s": round(stats.total_instructions / wall),
        })
        total_wall += wall
        total_cycles += stats.runtime
        total_instr += stats.total_instructions
    payload = {
        "schema": 1,
        "scale": SCALE,
        "intervals": INTERVALS,
        "repeats": REPEATS,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
        "total_wall_s": round(total_wall, 4),
        "aggregate_sim_cycles_per_s": round(total_cycles / total_wall),
        "aggregate_instr_per_s": round(total_instr / total_wall),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"kernel speed: {payload['aggregate_sim_cycles_per_s']:,} "
          f"simulated cycles/s, {payload['aggregate_instr_per_s']:,} "
          f"instr/s over {total_wall:.2f}s wall "
          f"({len(results)} configurations)")
    for row in results:
        print(f"  {row['app']:14s} x{row['n_cores']:<3d} "
              f"{row['scheme']:14s} {row['wall_s']:7.3f}s  "
              f"{row['sim_cycles_per_s']:>12,} simcyc/s")
