"""Kernel micro-benchmark: raw serial ``Machine.run()`` throughput,
plus workload-build wall time (cold generator vs. warm workload store).

Times a fixed (app, cores, scheme) matrix — the same matrix regardless
of ``REPRO_BENCH_FAST`` so numbers stay comparable across sessions —
and writes ``BENCH_speed.json`` at the repo root so the performance
trajectory of the simulation hot path is tracked from PR to PR.  The
``workload_store`` section times building the FAST benchmark app set
from its profiles (cold) against deserializing it from a freshly
populated content-addressed workload store (warm) — the build path the
engine's pool workers take.  The ``vector`` section sweeps the
replica-batch width of the vectorized campaign executor against
scalar per-replica runs at two fault densities, with per-replica
parity asserted (skipped without numpy).

The ``lint`` section times the ``reprolint`` static analysis pass over
the full shipped tree (parse + all six contract rules), so the
analyzer's cost — it runs on every CI push — stays visible from PR to
PR, and asserts the tree is clean while it is at it.

The ``memsys`` section aggregates the memory-system counters of the
matrix runs (fast-path hit rate, L1/L2 hit rates, invalidations) and
A/B-times one representative configuration with ``REPRO_FASTPATH``
off vs. on for the per-access latency split — after asserting both
modes produced bit-identical runtimes, so the speedup is never bought
with different results.

The ``engine`` section is the one part that measures the harness
itself: the dispatch-overhead microbench drives ≥500 tiny
store-cached runs through (a) the pre-chunking data plane — one
future per task, all submitted upfront, workers re-parsing the spec
from disk on every run — and (b) the shipped engine (windowed chunk
dispatch, worker-side spec LRU, mmap loads).  The workload is a
purpose-registered few-op trace so simulation time is negligible and
the wall clock is almost pure engine overhead; per-run overhead is
``wall/N - t_run`` with ``t_run`` the warm single-run cost measured
in-process.  The section also records the worker LRU hit rate and a
``-j`` scaling curve.

The ``service`` section drives one plan of small-but-real runs (a few
hundred microseconds each — a campaign of zero-cost runs is a landing
rate no simulator reaches) through a direct engine batch and through
the campaign service (spooled submission, streaming JSONL journal,
per-landing state accounting) and asserts the service path costs at
most 1.3x the batch — always-on serving must not tax the campaigns it
exists to carry.  Per-run submission-to-landed latencies come from the
journal's own timestamps.

The other sections deliberately bypass the runner/engine caches: they
measure the simulator kernel and the workload build path themselves,
not the harness.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path

from repro.harness import engine as engine_mod
from repro.harness.engine import (
    ExperimentEngine,
    RunKey,
    execute_run,
    resolve_config,
)
from repro.harness.workload_store import WorkloadStore
from repro.params import MachineConfig, Scheme
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine
from repro.sim.vector import have_numpy, run_replica_batch
from repro.trace import TraceBuilder
from repro.workloads import (
    PARSEC_APACHE,
    SPLASH2,
    WorkloadSpec,
    get_workload,
    register_workload,
    unregister_workload,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_speed.json"

#: Fixed matrix: a cheap-scheme baseline, the two main scheme families,
#: a barrier-heavy app and a PARSEC app (coherence-traffic heavy).
MATRIX = (
    ("blackscholes", 16, Scheme.REBOUND),
    ("ocean", 16, Scheme.GLOBAL),
    ("water_sp", 8, Scheme.NONE),
    ("barnes", 8, Scheme.REBOUND_BARR),
    ("streamcluster", 8, Scheme.REBOUND),
)
SCALE = 40
INTERVALS = 2.0
REPEATS = 5  # wall-clock is min-of-N to shrug off machine noise

#: The FAST benchmark app set (benchmarks/conftest.py under
#: ``REPRO_BENCH_FAST=1``), timed at one representative size.
STORE_APPS = tuple(SPLASH2[:4] + PARSEC_APACHE[:3])
STORE_CORES = 16


def _run_once(app: str, n_cores: int, scheme: Scheme):
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                  scale=SCALE)
    workload = get_workload(app, n_cores, config, intervals=INTERVALS,
                            seed=1)
    machine = Machine(config, workload)
    start = time.perf_counter()
    stats = machine.run()
    return stats, time.perf_counter() - start


#: Warm store loads finish far below wall-clock resolution for a single
#: pass (a one-pass timing rounded to 0.0s and reported a nonsense
#: 61510x speedup); each timed warm window runs this many passes and
#: divides, so the per-pass number is resolvable.
WARM_PASSES_PER_WINDOW = 25


def _measure_workload_store() -> dict:
    """Cold generator build vs. warm store load for the FAST app set.

    Min-of-N methodology on both sides: each cold pass builds into its
    own fresh store directory (so every pass really generates and
    serializes); each warm measurement times a *window* of
    ``WARM_PASSES_PER_WINDOW`` replay passes and divides, because a
    single warm pass is faster than the clock can resolve.  If the
    per-pass time still comes out unresolvable the speedup is reported
    as ``"n/a"`` rather than dividing by ~0.
    """
    config = MachineConfig.scaled(n_cores=STORE_CORES,
                                  scheme=Scheme.REBOUND, scale=SCALE)
    cold = float("inf")
    warm = float("inf")
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory() as tmp:
            store = WorkloadStore(Path(tmp))
            start = time.perf_counter()
            for app in STORE_APPS:
                store.get_or_build(app, STORE_CORES, config, INTERVALS, 1)
            cold = min(cold, time.perf_counter() - start)
            assert store.misses == len(STORE_APPS)
            for _ in range(REPEATS):
                start = time.perf_counter()
                for _ in range(WARM_PASSES_PER_WINDOW):
                    for app in STORE_APPS:
                        store.get_or_build(app, STORE_CORES, config,
                                           INTERVALS, 1)
                window = time.perf_counter() - start
                warm = min(warm, window / WARM_PASSES_PER_WINDOW)
            assert store.hits == (REPEATS * WARM_PASSES_PER_WINDOW *
                                  len(STORE_APPS))
    resolvable = warm > 1e-7          # ~100ns: below this the clock lied
    return {
        "apps": list(STORE_APPS),
        "n_cores": STORE_CORES,
        "cold_build_s": round(cold, 4),
        "warm_load_s": round(warm, 6),
        "warm_passes_per_window": WARM_PASSES_PER_WINDOW,
        "speedup": round(cold / warm, 1) if resolvable else "n/a",
    }


#: Replica-batch sweep of the vectorized campaign executor: the FAST
#: campaign config (blackscholes x8 Rebound), batch widths N, at two
#: fault densities — the paper's default dense campaign (MTTF = one
#: checkpoint interval, replicas diverge early, modest sharing) and a
#: sparse campaign (MTTF = eight intervals, most replicas ride the
#: leader almost to the end).  Scalar N=1..64 runs are the expensive
#: side, so this section is single-pass instead of min-of-REPEATS.
VECTOR_APP = "blackscholes"
VECTOR_CORES = 8
VECTOR_WIDTHS = (1, 4, 16, 64)
VECTOR_DENSITIES = (("dense", 1.0), ("sparse", 8.0))


def _measure_vector() -> dict:
    """Scalar vs. vectorized campaign throughput, parity-checked.

    Every vector replica's runtime is asserted equal to its scalar
    twin's — the benchmark refuses to report a speedup bought with
    different results.
    """
    config = MachineConfig.scaled(n_cores=VECTOR_CORES,
                                  scheme=Scheme.REBOUND, scale=SCALE)
    workload = get_workload(VECTOR_APP, VECTOR_CORES, config,
                            intervals=INTERVALS, seed=1)
    interval = config.checkpoint_interval
    horizon = INTERVALS * interval
    rows = []
    for label, mttf_intervals in VECTOR_DENSITIES:
        for width in VECTOR_WIDTHS:
            plans = [list(FaultPlan.from_mttf(
                seed=100 + i, mttf=mttf_intervals * interval,
                horizon=horizon, n_cores=VECTOR_CORES).faults)
                for i in range(width)]
            start = time.perf_counter()
            scalar = [Machine(config, workload,
                              faults=faults or None).run()
                      for faults in plans]
            scalar_wall = time.perf_counter() - start
            start = time.perf_counter()
            batch = run_replica_batch(config, workload, plans)
            vector_wall = time.perf_counter() - start
            for ref, got in zip(scalar, batch.stats):
                assert ref.runtime == got.runtime, \
                    f"{label} N={width}: vector diverged from scalar"
                assert ref.cores == got.cores
            cycles = sum(s.runtime for s in scalar)
            rows.append({
                "density": label,
                "mttf_intervals": mttf_intervals,
                "width": width,
                "spilled": batch.report.spilled,
                "direct_runs": batch.report.direct_runs,
                "leader_served": batch.report.leader_served,
                "scalar_wall_s": round(scalar_wall, 4),
                "vector_wall_s": round(vector_wall, 4),
                "scalar_sim_cycles_per_s": round(cycles / scalar_wall),
                "vector_sim_cycles_per_s": round(cycles / vector_wall),
                "speedup": round(scalar_wall / vector_wall, 2),
            })
    return {
        "app": VECTOR_APP,
        "n_cores": VECTOR_CORES,
        "scheme": Scheme.REBOUND.value,
        "note": ("exact prefix sharing: replicas are bit-identical to "
                 "scalar runs; dense campaigns diverge early and gain "
                 "modestly, sparse campaigns approach width-fold"),
        "rows": rows,
    }


def _measure_memsys(matrix_stats) -> dict:
    """Memory-system counters of the matrix runs, plus the per-access
    latency split the fast path buys.

    The counter aggregates come straight from the matrix ``SimStats``
    (they are mode-invariant by contract, so the default fast-path runs
    are the measurement).  The latency split A/B-times the first matrix
    configuration with the fast path forced off vs. on — asserting
    bit-identical runtimes first, so a divergence can never masquerade
    as a speedup.
    """
    accesses = sum(s.mem_accesses for s in matrix_stats)
    fast_ops = sum(s.fastpath_loads + s.fastpath_stores
                   for s in matrix_stats)
    loads = sum(s.l1_hits + s.l1_misses for s in matrix_stats)
    l2_refs = sum(s.l2_hits + s.l2_misses for s in matrix_stats)

    app, n_cores, scheme = MATRIX[0]
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                  scale=SCALE)
    workload = get_workload(app, n_cores, config, intervals=INTERVALS,
                            seed=1)
    walls = {False: float("inf"), True: float("inf")}
    runtimes = {}
    ab_accesses = 0
    # Interleaved A/B: both modes sample the same noise environment
    # each round, so a load spike cannot charge one side only.
    for _ in range(2 * REPEATS):
        for mode in (False, True):
            machine = Machine(config, workload, fastpath=mode)
            start = time.perf_counter()
            stats = machine.run()
            walls[mode] = min(walls[mode],
                              time.perf_counter() - start)
            runtimes[mode] = stats.runtime
            ab_accesses = stats.mem_accesses
    assert runtimes[False] == runtimes[True], \
        "fast path changed the simulated runtime; refusing to report"
    slow_ns = walls[False] / ab_accesses * 1e9
    fast_ns = walls[True] / ab_accesses * 1e9
    return {
        "mem_accesses": accesses,
        "fastpath_hit_rate": round(fast_ops / accesses, 4),
        "l1_hit_rate": round(sum(s.l1_hits for s in matrix_stats)
                             / loads, 4),
        "l2_hit_rate": round(sum(s.l2_hits for s in matrix_stats)
                             / l2_refs, 4),
        "invalidations": sum(s.invalidations for s in matrix_stats),
        "fastpath_epoch_bumps": sum(s.fastpath_epoch_bumps
                                    for s in matrix_stats),
        "per_access_ns": {
            "config": f"{app} x{n_cores} {scheme.value}",
            "slow_path": round(slow_ns, 1),
            "fast_path": round(fast_ns, 1),
            "speedup": round(slow_ns / fast_ns, 2),
        },
    }


def _measure_lint() -> dict:
    """Wall time of one full ``reprolint`` pass over the shipped tree
    (min-of-N; the parse and the import graph dominate)."""
    from repro.analysis import run_lint

    report = None
    wall = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = run_lint()
        wall = min(wall, time.perf_counter() - start)
    assert report.ok, report.render()
    return {
        "rules": list(report.rules),
        "checked_files": report.checked_files,
        "findings": len(report.findings),
        "suppressed": report.suppressed,
        "wall_s": round(wall, 4),
        "files_per_s": round(report.checked_files / wall),
    }


#: Dispatch-overhead microbench: ≥500 tiny store-cached runs (ISSUE 8
#: acceptance floor), distinct keys sharing one store spec, on a
#: purpose-registered workload whose simulation costs microseconds —
#: so the wall clock is almost pure data-plane overhead.
ENGINE_RUNS = 500
ENGINE_THREADS = 2
ENGINE_JOBS_CURVE = (1, 2, 4)
#: Per-run overhead floor (seconds): the chunked plane amortizes to
#: below wall-clock resolution at N=500, so the ratio denominator is
#: clamped to keep the reported speedup conservative.
ENGINE_OVERHEAD_FLOOR = 10e-6


def _tiny_workload(n_threads, config, intervals, seed):
    """A few-op trace per thread: the simulation is over in
    microseconds, leaving dispatch as the measured quantity."""
    traces = []
    for tid in range(n_threads):
        trace = TraceBuilder()
        trace.compute(40 + seed)
        trace.store(tid)
        trace.load(tid)
        traces.append(trace.build())
    return WorkloadSpec(name="bench_tiny", traces=traces)


def _per_task_run(key, store_root):
    """One pre-chunking worker call: the worker-global store with the
    LRU and mmap disabled re-reads and re-parses the spec from disk on
    every run, exactly as the old ``_timed_run`` data plane did."""
    return execute_run(key, engine_mod._worker_store(store_root))


def _measure_engine() -> dict:
    """Chunked data plane vs. per-task submission, on near-free runs.

    The baseline leg replays the pre-chunking engine faithfully: one
    future per task, all submitted upfront (deep executor queue),
    drained with ``wait(FIRST_COMPLETED)``, every worker run paying a
    fresh disk read + parse of the spec.  The measured leg is the
    shipped ``ExperimentEngine`` default: affinity-grouped chunks
    through a bounded submission window, specs served from the
    worker-side LRU.  Both legs are min-of-REPEATS wall clocks; the
    warm single-run cost ``t_run`` (measured in-process against an
    LRU-serving store) is subtracted so the per-run overheads compare
    engine machinery, not simulation.
    """
    if multiprocessing.get_start_method() != "fork":
        # Workers must inherit the bench-registered workload builder.
        return {"skipped": "requires the fork start method"}
    tag = register_workload("bench_tiny", _tiny_workload,
                            fingerprint="bench-tiny-v1")
    jobs = max(1, os.cpu_count() or 1)
    keys = [RunKey(tag, ENGINE_THREADS, Scheme.GLOBAL, 1.0, 1, SCALE,
                   io_every=10 + i) for i in range(ENGINE_RUNS)]
    try:
        with tempfile.TemporaryDirectory() as tmp:
            store = WorkloadStore(Path(tmp))
            store.get_or_build(tag, ENGINE_THREADS,
                               resolve_config(keys[0]), 1.0, 1)
            t_run = float("inf")
            for key in keys[:20]:
                start = time.perf_counter()
                execute_run(key, store)
                t_run = min(t_run, time.perf_counter() - start)

            saved = {name: os.environ.get(name)
                     for name in ("REPRO_WORKER_LRU", "REPRO_MMAP")}
            os.environ.update(REPRO_WORKER_LRU="0", REPRO_MMAP="0")
            per_task_wall = float("inf")
            try:
                for _ in range(3):
                    start = time.perf_counter()
                    with ProcessPoolExecutor(max_workers=jobs) as pool:
                        pending = {pool.submit(_per_task_run, key, tmp)
                                   for key in keys}
                        while pending:
                            done, pending = wait(
                                pending, return_when=FIRST_COMPLETED)
                            for future in done:
                                future.result()
                    per_task_wall = min(per_task_wall,
                                        time.perf_counter() - start)
            finally:
                for name, value in saved.items():
                    if value is None:
                        os.environ.pop(name, None)
                    else:
                        os.environ[name] = value

            chunked_wall = float("inf")
            counters = None
            for _ in range(3):
                eng = ExperimentEngine(jobs=jobs, use_disk_cache=False,
                                       vector=False)
                eng.workload_store = WorkloadStore(Path(tmp))
                start = time.perf_counter()
                eng.run_many(keys)
                chunked_wall = min(chunked_wall,
                                   time.perf_counter() - start)
                counters = eng.store_counters()

            curve = []
            for j in ENGINE_JOBS_CURVE:
                eng = ExperimentEngine(jobs=j, use_disk_cache=False,
                                       vector=False)
                eng.workload_store = WorkloadStore(Path(tmp))
                start = time.perf_counter()
                eng.run_many(keys)
                curve.append({"jobs": j,
                              "wall_s": round(time.perf_counter() - start,
                                              4)})
    finally:
        unregister_workload("bench_tiny")

    per_task_overhead = per_task_wall / ENGINE_RUNS - t_run
    chunked_overhead = max(chunked_wall / ENGINE_RUNS - t_run,
                           ENGINE_OVERHEAD_FLOOR)
    ratio = per_task_overhead / chunked_overhead
    lru_rate = counters["lru_hits"] / max(1, counters["hits"])
    # ISSUE 8 acceptance: the chunked plane must carry at least 3x less
    # engine overhead per run than per-task submission.
    assert ratio >= 3.0, (
        f"chunked dispatch overhead ratio {ratio:.1f}x < 3x "
        f"(per-task {per_task_overhead * 1e3:.3f} ms/run, chunked "
        f"{chunked_overhead * 1e3:.3f} ms/run)")
    assert lru_rate >= 0.8, f"worker LRU hit rate {lru_rate:.2f} < 0.8"
    return {
        "runs": ENGINE_RUNS,
        "jobs": jobs,
        "t_run_ms": round(t_run * 1e3, 4),
        "per_task": {
            "wall_s": round(per_task_wall, 4),
            "overhead_ms_per_run": round(per_task_overhead * 1e3, 4),
        },
        "chunked": {
            "wall_s": round(chunked_wall, 4),
            "overhead_ms_per_run": round(chunked_overhead * 1e3, 4),
            "lru_hit_rate": round(lru_rate, 4),
        },
        "overhead_ratio": round(ratio, 1),
        "jobs_curve": curve,
        "note": ("per-run overhead is wall/N - t_run; the chunked "
                 "denominator is floored at "
                 f"{ENGINE_OVERHEAD_FLOOR * 1e6:.0f}us so the ratio "
                 "stays conservative"),
    }


#: Service-overhead bench: a direct ``run_many`` batch against the full
#: campaign-service path (spooled submission -> serve -> journaled
#: landings) over the same plan.  The service may cost at most 30%
#: over batch dispatch.  Unlike the engine section's near-free runs
#: (which isolate pure dispatch overhead), the service runs carry a
#: small-but-real simulation cost — the quantity under test is the
#: end-to-end tax on a campaign, and a campaign of zero-cost runs is
#: a landing-rate no simulator reaches.
SERVICE_RUNS = 200
SERVICE_OPS = 60          # trace ops per thread: ~0.5ms/run simulated
SERVICE_MAX_OVERHEAD = 1.3


def _service_workload(n_threads, config, intervals, seed):
    """A short-but-real trace per thread (compare ``_tiny_workload``:
    the service bench wants run costs in the hundreds of microseconds,
    the dispatch bench wants them free)."""
    traces = []
    for tid in range(n_threads):
        trace = TraceBuilder()
        for op in range(SERVICE_OPS):
            trace.compute(20 + (seed + op) % 7)
            trace.store((tid * SERVICE_OPS + op) % 64)
            trace.load((op * 3 + tid) % 64)
        traces.append(trace.build())
    return WorkloadSpec(name="bench_service", traces=traces)


def _measure_service() -> dict:
    """Submission-to-landed latency of the campaign service vs. a
    direct engine batch of the same plan.

    Both legs run the identical ``SERVICE_RUNS`` tiny store-cached
    keys on fresh engines (no disk cache, scalar) — the delta is pure
    service machinery: the spool round-trip, the journal writer, the
    per-landing state accounting.  Per-run landing latency comes from
    the journal's own timestamps against the job's submission time.
    """
    from repro.harness.service import CampaignService

    if multiprocessing.get_start_method() != "fork":
        return {"skipped": "requires the fork start method"}
    tag = register_workload("bench_service", _service_workload,
                            fingerprint="bench-service-v1")
    jobs = max(1, os.cpu_count() or 1)
    keys = [RunKey(tag, ENGINE_THREADS, Scheme.GLOBAL, 1.0, 1, SCALE,
                   io_every=10 + i) for i in range(SERVICE_RUNS)]
    try:
        with tempfile.TemporaryDirectory() as tmp:
            store_root = Path(tmp) / "store"
            WorkloadStore(store_root).get_or_build(
                tag, ENGINE_THREADS, resolve_config(keys[0]), 1.0, 1)

            def fresh_engine() -> ExperimentEngine:
                eng = ExperimentEngine(jobs=jobs, use_disk_cache=False,
                                       vector=False)
                eng.workload_store = WorkloadStore(store_root)
                return eng

            # Interleaved A/B rounds; the asserted ratio is the
            # *median of per-round paired ratios*, so a load spike
            # charges both legs of its round and cancels out instead
            # of skewing whichever leg it happened to hit.
            batch_wall = float("inf")
            service_wall = float("inf")
            ratios: list[float] = []
            latencies: list[float] = []
            for round_no in range(REPEATS):
                eng = fresh_engine()
                start = time.perf_counter()
                eng.run_many(keys)
                batch = time.perf_counter() - start
                batch_wall = min(batch_wall, batch)

                spool = Path(tmp) / f"spool{round_no}"
                service = CampaignService(spool_dir=spool,
                                          engine=fresh_engine())
                start = time.perf_counter()
                job_id = service.submit(keys, label="bench")
                service.serve(drain=True)
                wall = time.perf_counter() - start
                status = service.status(job_id)
                assert status["state"] == "done", status
                assert status["computed"] == SERVICE_RUNS, status
                ratios.append(wall / batch)
                if wall < service_wall:
                    service_wall = wall
                    submitted = status["submitted_at"]
                    latencies = sorted(
                        json.loads(line)["t"] - submitted
                        for line in (spool / "journal.jsonl")
                        .read_text().splitlines())
    finally:
        unregister_workload("bench_service")

    ratio = sorted(ratios)[len(ratios) // 2]
    # ISSUE 10 acceptance: the service path (spool + journal + state
    # accounting) must stay within 30% of raw batch dispatch.
    assert ratio <= SERVICE_MAX_OVERHEAD, (
        f"service overhead {ratio:.2f}x > {SERVICE_MAX_OVERHEAD}x "
        f"(batch {batch_wall:.3f}s, service {service_wall:.3f}s)")
    return {
        "runs": SERVICE_RUNS,
        "jobs": jobs,
        "batch_wall_s": round(batch_wall, 4),
        "service_wall_s": round(service_wall, 4),
        "overhead_ratio": round(ratio, 3),
        "max_overhead_ratio": SERVICE_MAX_OVERHEAD,
        "landing_latency_ms": {
            "first": round(latencies[0] * 1e3, 2),
            "median": round(latencies[len(latencies) // 2] * 1e3, 2),
            "last": round(latencies[-1] * 1e3, 2),
        },
        "note": ("wall is submit->all-landed on a fresh spool; the "
                 "ratio is the median of per-round paired ratios; "
                 "landing latencies are journal timestamps minus the "
                 "job's submission time"),
    }


def test_kernel_speed():
    results = []
    matrix_stats = []
    total_wall = 0.0
    total_cycles = 0.0
    total_instr = 0
    for app, n_cores, scheme in MATRIX:
        wall = float("inf")
        stats = None
        for _ in range(REPEATS):
            stats, elapsed = _run_once(app, n_cores, scheme)
            wall = min(wall, elapsed)
        assert stats.runtime > 0
        matrix_stats.append(stats)
        results.append({
            "app": app,
            "n_cores": n_cores,
            "scheme": scheme.value,
            "wall_s": round(wall, 4),
            "sim_cycles": stats.runtime,
            "instructions": stats.total_instructions,
            "sim_cycles_per_s": round(stats.runtime / wall),
            "instr_per_s": round(stats.total_instructions / wall),
            "fastpath_hit_rate": round(stats.fastpath_hit_rate, 4),
        })
        total_wall += wall
        total_cycles += stats.runtime
        total_instr += stats.total_instructions
    store = _measure_workload_store()
    memsys = _measure_memsys(matrix_stats)
    vector = _measure_vector() if have_numpy() else {
        "skipped": "numpy not installed"}
    lint = _measure_lint()
    engine = _measure_engine()
    service = _measure_service()
    payload = {
        "schema": 7,
        "scale": SCALE,
        "intervals": INTERVALS,
        "repeats": REPEATS,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "results": results,
        "total_wall_s": round(total_wall, 4),
        "aggregate_sim_cycles_per_s": round(total_cycles / total_wall),
        "aggregate_instr_per_s": round(total_instr / total_wall),
        "workload_store": store,
        "memsys": memsys,
        "vector": vector,
        "lint": lint,
        "engine": engine,
        "service": service,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(f"kernel speed: {payload['aggregate_sim_cycles_per_s']:,} "
          f"simulated cycles/s, {payload['aggregate_instr_per_s']:,} "
          f"instr/s over {total_wall:.2f}s wall "
          f"({len(results)} configurations)")
    for row in results:
        print(f"  {row['app']:14s} x{row['n_cores']:<3d} "
              f"{row['scheme']:14s} {row['wall_s']:7.3f}s  "
              f"{row['sim_cycles_per_s']:>12,} simcyc/s")
    speedup = store["speedup"]
    print(f"workload build ({len(store['apps'])} FAST apps "
          f"x{store['n_cores']}): cold {store['cold_build_s']:.3f}s, "
          f"store-warm {store['warm_load_s'] * 1e3:.3f}ms/pass "
          f"({speedup if isinstance(speedup, str) else f'{speedup:.0f}x'})")
    split = memsys["per_access_ns"]
    print(f"memsys: fast-path hit rate "
          f"{memsys['fastpath_hit_rate']:.1%} over "
          f"{memsys['mem_accesses']:,} accesses "
          f"(L1 {memsys['l1_hit_rate']:.1%}, "
          f"L2 {memsys['l2_hit_rate']:.1%}, "
          f"{memsys['invalidations']} invalidations); "
          f"{split['config']}: {split['slow_path']:.0f} -> "
          f"{split['fast_path']:.0f} ns/access "
          f"({split['speedup']:.2f}x)")
    if "rows" in vector:
        print(f"vector campaigns ({vector['app']} x{vector['n_cores']} "
              f"{vector['scheme']}):")
        for row in vector["rows"]:
            print(f"  {row['density']:6s} N={row['width']:<3d} "
                  f"scalar {row['scalar_wall_s']:7.3f}s  "
                  f"vector {row['vector_wall_s']:7.3f}s  "
                  f"{row['speedup']:5.2f}x "
                  f"(spilled {row['spilled']}, direct "
                  f"{row['direct_runs']}, served "
                  f"{row['leader_served']})")
    else:
        print(f"vector campaigns: {vector['skipped']}")
    print(f"reprolint ({','.join(lint['rules'])}): "
          f"{lint['checked_files']} files in {lint['wall_s']:.3f}s "
          f"({lint['files_per_s']:,} files/s, "
          f"{lint['findings']} findings)")
    if "skipped" in engine:
        print(f"engine dispatch: {engine['skipped']}")
    else:
        print(f"engine dispatch ({engine['runs']} tiny runs, "
              f"-j {engine['jobs']}): per-task "
              f"{engine['per_task']['overhead_ms_per_run']:.3f} ms/run, "
              f"chunked "
              f"{engine['chunked']['overhead_ms_per_run']:.3f} ms/run "
              f"({engine['overhead_ratio']:.0f}x lower overhead, "
              f"worker LRU {engine['chunked']['lru_hit_rate']:.0%})")
        print("  -j curve: " + ", ".join(
            f"j={row['jobs']} {row['wall_s']:.3f}s"
            for row in engine["jobs_curve"]))
    if "skipped" in service:
        print(f"campaign service: {service['skipped']}")
    else:
        lat = service["landing_latency_ms"]
        print(f"campaign service ({service['runs']} tiny runs, "
              f"-j {service['jobs']}): batch "
              f"{service['batch_wall_s']:.3f}s, service "
              f"{service['service_wall_s']:.3f}s "
              f"({service['overhead_ratio']:.2f}x, cap "
              f"{service['max_overhead_ratio']}x); landing latency "
              f"first {lat['first']:.0f}ms / median "
              f"{lat['median']:.0f}ms / last {lat['last']:.0f}ms")
