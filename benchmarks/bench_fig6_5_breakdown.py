"""Figure 6.5: checkpoint-overhead breakdown, normalized to Global."""

from conftest import publish

from repro.harness.experiments import fig6_5_breakdown


def test_fig6_5_breakdown(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_5_breakdown, args=(runner,),
        kwargs={"apps": params.all_apps,
                "splash_cores": params.cores_splash,
                "parsec_cores": params.cores_parsec},
        rounds=1, iterations=1)
    publish(result)
    # Aggregate shape: Global is writeback-dominated; Rebound's residual
    # overhead is dominated by IPCDelay (background traffic).
    global_wb = global_ipc = reb_wb = reb_ipc = 0.0
    for row in result.rows:
        wb = float(row[2].rstrip("%")) + float(row[3].rstrip("%"))
        ipc = float(row[5].rstrip("%"))
        if row[1] == "global":
            global_wb += wb
            global_ipc += ipc
        elif row[1] == "rebound":
            reb_wb += wb
            reb_ipc += ipc
    assert global_wb > global_ipc
    assert reb_ipc > reb_wb
