"""Figure 6.9 (extension): Monte Carlo fault campaign.

Seeded multi-fault runs (exponential MTTF model, any core) aggregated
into availability / work-lost / IREC / recovery-latency distributions,
comparing Rebound, Global and cluster-granular Rebound.  Every run is
identified by its seed-deterministic fault plan, so the campaign is
served by the engine's worker pool and disk cache like any figure.
"""

from conftest import publish

from repro.harness.experiments import fig6_9_campaign


def test_fig6_9_campaign(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_9_campaign, args=(runner,),
        kwargs={"apps": params.campaign_apps,
                "sizes": params.campaign_sizes,
                "n_seeds": params.campaign_seeds},
        rounds=1, iterations=1)
    publish(result)
    rows = {(int(r[0]), r[1]): r for r in result.rows}
    largest = max(params.campaign_sizes)
    glob = rows[(largest, "global")]
    reb = rows[(largest, "rebound")]
    # Every injected fault is accounted for: delivered/injected parses.
    for row in result.rows:
        delivered, injected = map(int, row[8].split("/"))
        assert 0 <= delivered <= injected
        # Effective availability also charges checkpoint overhead, so it
        # can never exceed the fault-only availability.
        assert float(row[3].rstrip("%")) <= float(row[2].rstrip("%"))
    # Local recovery keeps more of the machine useful than global
    # rollback under the same fault process (paper Sec 6.3 scaled up).
    glob_avail = float(glob[2].rstrip("%"))
    reb_avail = float(reb[2].rstrip("%"))
    assert reb_avail >= glob_avail
    # The useful-work metric widens the gap: Global also pays burst
    # writebacks every interval, Rebound only its interaction sets.
    assert float(reb[3].rstrip("%")) >= float(glob[3].rstrip("%"))
    # And it discards less work doing so.
    glob_lost = float(glob[4].replace(",", ""))
    reb_lost = float(reb[4].replace(",", ""))
    assert reb_lost <= glob_lost
