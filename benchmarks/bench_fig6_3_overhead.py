"""Figure 6.3: error-free checkpointing overhead for all four schemes."""

from conftest import publish

from repro.harness.experiments import fig6_3_overhead


def _averages(result):
    return {h: float(v.rstrip("%"))
            for h, v in zip(result.headers[1:], result.rows[-1][1:])}


def test_fig6_3a_splash(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_3_overhead, args=(runner,),
        kwargs={"apps": params.splash_apps,
                "n_cores": params.cores_splash, "suite": "SPLASH-2"},
        rounds=1, iterations=1)
    publish(result)
    avg = _averages(result)
    # The paper's ordering: Global >> Rebound_NoDWB > Rebound, and
    # Global_DWB alone is not as good as full Rebound.
    assert avg["global"] > avg["rebound_nodwb"] > avg["rebound"]
    assert avg["global"] > 2.0 * avg["rebound"]
    assert avg["global_dwb"] >= avg["rebound"]


def test_fig6_3b_parsec_apache(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_3_overhead, args=(runner,),
        kwargs={"apps": params.parsec_apps,
                "n_cores": params.cores_parsec,
                "suite": "PARSEC/Apache"},
        rounds=1, iterations=1)
    publish(result)
    avg = _averages(result)
    assert avg["global"] > avg["rebound"]
