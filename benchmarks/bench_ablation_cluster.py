"""Ablation: cluster-granular dependence tracking (Chapter 8).

Sweeps the Dep-register cluster size on a communication-local workload:
coarser tracking shrinks the hardware (bits name clusters, not
processors) but inflates interaction sets toward global checkpointing —
quantifying the trade-off the paper's discussion chapter sketches.
"""

from conftest import publish

from repro.harness.experiments import ExperimentResult
from repro.params import MachineConfig, Scheme
from repro.sim.machine import Machine
from repro.workloads import get_workload

CLUSTER_SIZES = (1, 2, 4, 8)


def run_sweep(n_cores: int, intervals: float, scale: int):
    rows = []
    for size in CLUSTER_SIZES:
        config = MachineConfig.scaled(n_cores=n_cores,
                                      scheme=Scheme.REBOUND, scale=scale,
                                      dep_cluster_size=size)
        workload = get_workload("blackscholes", n_cores, config,
                                intervals=intervals)
        stats = Machine(config, workload).run()
        rows.append([size,
                     max(1, -(-n_cores // size)),
                     f"{100 * stats.mean_ichk_fraction():.1f}%",
                     len(stats.checkpoints)])
    return ExperimentResult(
        "Ablation: Dep-register cluster size (blackscholes)",
        ["cluster size", "register bits", "mean ICHK", "checkpoints"],
        rows,
        notes="size 1 = the paper's per-processor tracking; coarser "
              "clusters trade register area for larger interaction sets")


def test_ablation_cluster_size(benchmark, runner, params):
    result = benchmark.pedantic(
        run_sweep,
        args=(min(16, params.cores_splash), params.intervals,
              params.scale),
        rounds=1, iterations=1)
    publish(result)
    fractions = [float(r[2].rstrip("%")) for r in result.rows]
    # Interaction sets grow monotonically-ish with cluster coarseness.
    assert fractions[-1] >= fractions[0]
