"""Ablation: Write Signature size vs. false-positive ICHK inflation.

The paper sizes the WSIG at 512–1024 bits (Section 3.3.2, Figure 4.3a)
and reports ~2% average ICHK inflation from Bloom aliasing (Table 6.1).
This ablation sweeps the signature size on a write-heavy workload and
shows the inflation collapsing as the filter grows — the design-choice
evidence behind the paper's sizing.
"""

from conftest import publish

from repro.harness.report import format_table
from repro.harness.experiments import ExperimentResult
from repro.params import MachineConfig, Scheme
from repro.sim.machine import Machine
from repro.workloads import get_workload

WSIG_SIZES = (16, 64, 256, 1024)


def run_sweep(n_cores: int, intervals: float, scale: int):
    rows = []
    for bits in WSIG_SIZES:
        config = MachineConfig.scaled(n_cores=n_cores,
                                      scheme=Scheme.REBOUND, scale=scale,
                                      wsig_bits=bits)
        workload = get_workload("radix", n_cores, config,
                                intervals=intervals)
        stats = Machine(config, workload).run()
        fp_rate = (stats.wsig_false_positives / stats.wsig_tests
                   if stats.wsig_tests else 0.0)
        rows.append([bits, f"{100 * fp_rate:.2f}%",
                     f"{stats.ichk_fp_increase_percent():.2f}%",
                     f"{100 * stats.mean_ichk_fraction():.1f}%"])
    return ExperimentResult(
        "Ablation: WSIG size (radix, write-heavy)",
        ["wsig bits", "FP rate", "ICHK inflation", "mean ICHK"], rows,
        notes="paper sizes the WSIG at 512-1024 bits for ~2% inflation")


def test_ablation_wsig_size(benchmark, runner, params):
    result = benchmark.pedantic(
        run_sweep,
        args=(min(16, params.cores_splash), params.intervals,
              params.scale),
        rounds=1, iterations=1)
    publish(result)
    inflations = [float(r[2].rstrip("%")) for r in result.rows]
    # Larger signatures must not inflate ICHK more than tiny ones.
    assert inflations[-1] <= inflations[0] + 1e-9
