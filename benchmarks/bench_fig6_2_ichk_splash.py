"""Figure 6.2: average ICHK size, SPLASH-2 at 32 and 64 processors."""

from conftest import publish

from repro.harness.experiments import fig6_2_ichk_splash


def test_fig6_2_ichk_splash(benchmark, runner, params):
    sizes = (max(8, params.cores_splash // 2), params.cores_splash)
    result = benchmark.pedantic(
        fig6_2_ichk_splash, args=(runner,),
        kwargs={"sizes": sizes, "apps": params.splash_apps},
        rounds=1, iterations=1)
    publish(result)
    by_app = {row[0]: row[1:] for row in result.rows}
    if "ocean" in by_app:
        # Barrier-dominated codes chain the whole machine (paper ~100%).
        assert float(by_app["ocean"][-1].rstrip("%")) > 85.0
    avg = [float(v.rstrip("%")) for v in by_app["average"]]
    assert all(30.0 <= a <= 100.0 for a in avg)
