"""L sensitivity (extension): detection-latency sweep (paper Sec 3.2).

The same seeded fault campaign is replayed while the machine's
detection latency L sweeps across fractions of a checkpoint interval —
a ``RunKey`` config override, so every (L, scheme, app, plan) cell is a
cached, pool-parallel engine run.  The shape checks pin the paper's
Section 3.2 claims: recovery latency grows with L, and Rebound's
localized rollback keeps availability above Global's at every L.
"""

from conftest import publish

from repro.harness.experiments import fig_l_sensitivity


def test_l_sensitivity(benchmark, runner, params):
    n_cores = min(params.campaign_sizes)
    result = benchmark.pedantic(
        fig_l_sensitivity, args=(runner,),
        kwargs={"apps": params.campaign_apps, "n_cores": n_cores,
                "n_seeds": params.campaign_seeds},
        rounds=1, iterations=1)
    publish(result)
    recoveries: dict[str, list[float]] = {}
    availabilities: dict[tuple[str, str], float] = {}
    for row in result.rows:
        latency_l, scheme, mean_recovery, avail = (row[0], row[2],
                                                   row[3], row[5])
        if mean_recovery != "-":
            recoveries.setdefault(scheme, []).append(
                float(mean_recovery.replace(",", "")))
        availabilities[(latency_l, scheme)] = float(avail.rstrip("%"))
    # Recovery latency is non-decreasing in L for every scheme.
    for scheme, latencies in recoveries.items():
        assert latencies == sorted(latencies), \
            f"{scheme}: recovery latency not monotone in L: {latencies}"
    # Rebound's localized rollback beats Global at every L.
    for (latency_l, scheme), avail in availabilities.items():
        if scheme == "rebound":
            assert avail >= availabilities[(latency_l, "global")]
    # Effective (useful-work) availability never exceeds the fault-only
    # metric: checkpoint overhead is charged on top.
    for row in result.rows:
        assert float(row[6].rstrip("%")) <= float(row[5].rstrip("%"))
