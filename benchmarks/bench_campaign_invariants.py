"""Campaign invariant audit (FAST-set member).

Runs the fig6_9 fault-campaign plan at the benchmark parameters (the
runs are shared with ``bench_fig6_9_campaign`` through the session
engine's memo and the disk cache, so this audits rather than recomputes)
and asserts the reusable accounting invariants from
``tests/invariants.py`` on every resulting ``SimStats`` — plus on every
other run the engine produced earlier in the session.  A double-charged
stall window or a bucket that stops partitioning the run exactly fails
the benchmark job, not just the unit suite.
"""

from conftest import publish  # noqa: F401  (keeps conftest import path)

from repro.harness.experiments import plan_fig6_9
from tests.invariants import assert_run_invariants


def test_campaign_invariants(benchmark, runner, params):
    plan = plan_fig6_9(runner, apps=params.campaign_apps,
                       sizes=params.campaign_sizes,
                       n_seeds=params.campaign_seeds)

    def audit():
        results = runner.engine.run_many(plan)
        for stats in results.values():
            assert_run_invariants(stats)
        # Everything else this session computed obeys the same algebra.
        for stats in runner.engine.memo.values():
            assert_run_invariants(stats)
        return len(results)

    audited = benchmark.pedantic(audit, rounds=1, iterations=1)
    assert audited == len(set(plan))
