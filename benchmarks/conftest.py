"""Shared state for the benchmark harness.

One :class:`~repro.harness.runner.Runner` is shared across every
benchmark in the session so figures that need the same simulations (e.g.
the Figure 6.3 runs reused by Figures 6.5/6.6) pay for them once.  The
runner sits on the :class:`~repro.harness.engine.ExperimentEngine`, so
the drivers' planned run sets execute in parallel across processes and
every completed result persists in the on-disk cache — a second
benchmark session with the same knobs replays from disk.

Environment knobs (workload shape — these feed the ``RunKey``, so
changing any of them addresses a different set of cache entries)::

    REPRO_BENCH_CORES_SPLASH   processor count for SPLASH-2 (default 64)
    REPRO_BENCH_CORES_PARSEC   processor count for PARSEC/Apache (24)
    REPRO_BENCH_SCALE          config down-scale factor (default 40)
    REPRO_BENCH_INTERVALS      run length in checkpoint intervals (2.0)
    REPRO_BENCH_FAST           set to 1 for a quick subset of apps

Engine knobs (execution only — never change the results)::

    REPRO_JOBS                 worker processes (default: CPU count)
    REPRO_CACHE_DIR            result cache dir (default benchmarks/.cache)
    REPRO_NO_CACHE             set to 1 to bypass the disk cache
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.engine import ExperimentEngine
from repro.harness.runner import Runner
from repro.workloads import (
    ALL_APPS,
    BARRIER_INTENSIVE,
    LOW_ICHK,
    PARSEC_APACHE,
    SPLASH2,
)

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


class BenchParams:
    """Benchmark-wide configuration resolved from the environment."""

    def __init__(self):
        self.cores_splash = _env_int("REPRO_BENCH_CORES_SPLASH", 64)
        self.cores_parsec = _env_int("REPRO_BENCH_CORES_PARSEC", 24)
        self.scale = _env_int("REPRO_BENCH_SCALE", 40)
        self.intervals = float(os.environ.get("REPRO_BENCH_INTERVALS", 2.0))
        self.fast = os.environ.get("REPRO_BENCH_FAST", "0") == "1"
        if self.fast:
            self.splash_apps = SPLASH2[:4]
            self.parsec_apps = PARSEC_APACHE[:3]
            self.all_apps = self.splash_apps + self.parsec_apps
            self.barrier_apps = BARRIER_INTENSIVE[:2]
            self.low_ichk_apps = LOW_ICHK[:2]
            self.sizes = (8, 16)
            self.campaign_apps = ["blackscholes"]
            self.campaign_sizes = (4, 8)
            self.campaign_seeds = 2
        else:
            self.splash_apps = list(SPLASH2)
            self.parsec_apps = list(PARSEC_APACHE)
            self.all_apps = list(ALL_APPS)
            self.barrier_apps = list(BARRIER_INTENSIVE)
            self.low_ichk_apps = list(LOW_ICHK)
            self.sizes = (16, 32, 64)
            self.campaign_apps = ["blackscholes", "ocean"]
            self.campaign_sizes = (8, 16, 32)
            self.campaign_seeds = 3


@pytest.fixture(scope="session")
def params() -> BenchParams:
    return BenchParams()


@pytest.fixture(scope="session")
def runner(params: BenchParams) -> Runner:
    # Jobs / cache dir / cache bypass resolve from the REPRO_* knobs.
    return Runner(scale=params.scale, intervals=params.intervals,
                  engine=ExperimentEngine())


def publish(result) -> None:
    """Print a figure/table and persist it under benchmarks/results/."""
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = "".join(c if c.isalnum() else "_"
                   for c in result.experiment.lower())
    slug = "_".join(filter(None, slug.split("_")))[:80]
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
