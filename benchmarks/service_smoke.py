"""Campaign-service crash smoke for CI: SIGKILL a serving process
mid-campaign and prove the restart recomputes nothing.

Lifecycle exercised, all through the shipped CLI where a client would
use it:

1. ``serve submit --quick`` spools a fig6_9 fault campaign.
2. ``serve start --drain`` runs in a child process; once at least one
   result has landed in the journal, the child is SIGKILLed — no
   atexit hooks, no executor shutdown, the worst case.
3. A fresh service over the same spool finishes the job.  Every key
   journaled before the kill must be absent from the restart engine's
   profile (the profile records only *executed* runs), and the job
   must end ``done`` with every run landed.

Deliberately NOT named ``bench_*.py``: benchmarks/pytest.ini collects
``bench_*.py`` into the benchmark suite, and this script wants a real
child-process kill, not a pytest fixture.  Run it standalone:

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.harness.engine import ExperimentEngine  # noqa: E402
from repro.harness.service import CampaignService  # noqa: E402

#: Give slow CI boxes room; the quick campaign itself runs in seconds.
DEADLINE_S = 300


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []) + sys.path)
    return env


def cli(*args: str, **popen_kw) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro.harness", "serve", *args]
    return subprocess.run(cmd, env=cli_env(), text=True,
                          capture_output=True, timeout=DEADLINE_S,
                          **popen_kw)


def journaled_keys(journal: Path) -> set:
    if not journal.exists():
        return set()
    found = set()
    for line in journal.read_text().splitlines():
        try:
            found.add(json.loads(line)["key"])
        except (ValueError, KeyError):
            continue  # torn final line from the kill
    return found


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    spool, cache = tmp / "spool", tmp / "cache"
    journal = spool / "journal.jsonl"

    submit = cli("submit", "--quick", "--seeds", "2",
                 "--label", "smoke", "--spool", str(spool))
    assert submit.returncode == 0, submit.stderr
    job_id = submit.stdout.strip().splitlines()[-1]
    print(f"[smoke] submitted {job_id}")

    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "serve", "start",
         "--drain", "--spool", str(spool), "--cache-dir", str(cache),
         "-j", "1"],
        env=cli_env())
    deadline = time.monotonic() + DEADLINE_S
    try:
        while time.monotonic() < deadline:
            if journaled_keys(journal):
                break
            if victim.poll() is not None:
                break
            time.sleep(0.01)
        if victim.poll() is None:
            victim.send_signal(signal.SIGKILL)
            print("[smoke] SIGKILLed the server mid-campaign")
        else:
            print("[smoke] server drained before the kill window "
                  "(machine too fast); restart still asserts "
                  "zero recompute")
    finally:
        victim.wait(timeout=60)

    before = journaled_keys(journal)
    assert before, "nothing landed before the kill: no journal lines"
    print(f"[smoke] {len(before)} result(s) journaled before the kill")

    engine = ExperimentEngine(jobs=1, cache_dir=cache,
                              use_disk_cache=True)
    restarted = CampaignService(spool_dir=spool, engine=engine)
    restarted.serve(drain=True)
    status = restarted.status(job_id)
    assert status["state"] == "done", status
    assert status["landed"] == status["total"], status
    reexecuted = {repr(key) for key in engine.profile} & before
    assert not reexecuted, f"re-executed after restart: {reexecuted}"
    print(f"[smoke] restart completed {job_id}: "
          f"{status['landed']}/{status['total']} landed, "
          f"{status['computed']} computed, {status['replayed']} "
          f"replayed, 0 re-executed")

    summary = cli("summary", job_id, "--spool", str(spool))
    assert summary.returncode == 0, summary.stderr
    print(summary.stdout.rstrip())
    print("[smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
