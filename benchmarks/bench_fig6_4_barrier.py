"""Figure 6.4: the barrier optimization on barrier-intensive codes."""

from conftest import publish

from repro.harness.experiments import fig6_4_barrier


def test_fig6_4_barrier(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_4_barrier, args=(runner,),
        kwargs={"apps": params.barrier_apps,
                "n_cores": params.cores_splash},
        rounds=1, iterations=1)
    publish(result)
    avg = {h: float(v.rstrip("%"))
           for h, v in zip(result.headers[1:], result.rows[-1][1:])}
    # Both the barrier opt and delayed writebacks improve on plain
    # Rebound_NoDWB for these codes (paper: similar individual impact).
    assert avg["rebound_nodwb_barr"] < avg["rebound_nodwb"]
    assert avg["rebound"] < avg["rebound_nodwb"]
    assert avg["global"] > avg["rebound"]
