"""Figure 6.7: effect of output I/O on the effective checkpoint interval."""

from conftest import publish

from repro.harness.experiments import fig6_7_io


def test_fig6_7_io(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_7_io, args=(runner,),
        kwargs={"apps": params.low_ichk_apps,
                "n_cores": params.cores_splash},
        rounds=1, iterations=1)
    publish(result)
    avg_global = float(result.rows[-1][1].rstrip("%"))
    avg_rebound = float(result.rows[-1][2].rstrip("%"))
    # Global-I/O collapses everyone's interval toward the I/O period
    # (~50%); Rebound isolates the I/O processor's checkpoints.
    assert avg_global < 70.0
    assert avg_rebound > avg_global
