"""Figure 6.6: overhead / energy / recovery latency vs. processor count."""

from conftest import publish

from repro.harness.experiments import fig6_6_scalability


def test_fig6_6_scalability(benchmark, runner, params):
    result = benchmark.pedantic(
        fig6_6_scalability, args=(runner,),
        kwargs={"apps": params.splash_apps, "sizes": params.sizes},
        rounds=1, iterations=1)
    publish(result)
    rows = {(int(r[0]), r[1]): r for r in result.rows}
    largest = max(params.sizes)
    smallest = min(params.sizes)
    glob_large = float(rows[(largest, "global")][2].rstrip("%"))
    reb_large = float(rows[(largest, "rebound")][2].rstrip("%"))
    # Local checkpointing scales: at the largest machine Rebound's
    # overhead stays well below Global's (paper: 2% vs 15%).
    assert reb_large < glob_large
    # Global's overhead grows with the processor count.
    glob_small = float(rows[(smallest, "global")][2].rstrip("%"))
    assert glob_large >= glob_small * 0.9
    # Recovery: Rebound restores less than Global at scale.
    glob_rec = float(rows[(largest, "global")][4].replace(",", ""))
    reb_rec = float(rows[(largest, "rebound")][4].replace(",", ""))
    assert reb_rec <= glob_rec
