"""Setup shim for environments without PEP 517 editable-install support.

The simulator itself is pure standard library.  numpy is an optional
extra (``pip install repro[vector]``) that unlocks the vectorized
multi-replica campaign executor (:mod:`repro.sim.vector`); without it
every campaign runs through the scalar kernel, bit-identically, with a
one-line warning from the engine when a batch falls back.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description=("Rebound (ISCA 2011) checkpointing simulator "
                 "reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    extras_require={
        "vector": ["numpy"],
    },
)
