"""Quickstart: simulate one application under different checkpointing schemes.

Runs the Ocean workload (the paper's most barrier-intensive code) on a
16-core machine under no checkpointing, Global checkpointing, and
Rebound, then prints runtime, overhead and interaction-set statistics.

Usage::

    python examples/quickstart.py [app] [n_cores]
"""

import sys

from repro import Scheme, run_app


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    n_cores = int(sys.argv[2]) if len(sys.argv) > 2 else 16

    print(f"Simulating {app!r} on {n_cores} cores "
          f"(scaled configuration)...\n")

    baseline = run_app(app, n_cores=n_cores, scheme=Scheme.NONE,
                       intervals=3)
    print(f"baseline (no checkpointing): "
          f"{baseline.runtime:,.0f} cycles, "
          f"{baseline.total_instructions:,} instructions\n")

    for scheme in (Scheme.GLOBAL, Scheme.REBOUND_NODWB, Scheme.REBOUND):
        stats = run_app(app, n_cores=n_cores, scheme=scheme, intervals=3)
        overhead = stats.overhead_vs(baseline)
        line = (f"{scheme.value:15s} overhead={100 * overhead:6.2f}%  "
                f"checkpoints={len(stats.checkpoints):4d}")
        if scheme.is_local:
            line += (f"  mean ICHK={100 * stats.mean_ichk_fraction():5.1f}%"
                     f"  extra msgs=+{stats.dep_message_percent():.1f}%")
        print(line)

    print("\nPer the paper (Figure 6.3): Global checkpointing pays a "
          "large, bursty writeback cost at every interval, while Rebound "
          "checkpoints only the processors that actually communicated "
          "and drains their dirty lines in the background.")


if __name__ == "__main__":
    main()
