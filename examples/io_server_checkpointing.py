"""Output I/O on a server workload: the Figure 6.7 effect, hands on.

Output I/O must be preceded by a checkpoint (otherwise a later rollback
could "unsend" committed output).  Under Global checkpointing, one
I/O-intensive thread therefore drags *all* processors into a checkpoint
at every output; under Rebound only its interaction set checkpoints.

This example runs the Apache-like workload with thread 0 emitting output
every half checkpoint interval and compares the machine-wide effective
checkpoint interval under both schemes.

Usage::

    python examples/io_server_checkpointing.py [n_cores]
"""

import sys

from repro import MachineConfig, Scheme, get_workload, run_workload
from repro.workloads import inject_output_io


def effective_interval(scheme: Scheme, n_cores: int,
                       with_io: bool) -> float:
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme)
    workload = get_workload("apache", n_cores, config, intervals=3)
    if with_io:
        workload = inject_output_io(
            workload, pid=0,
            every_instructions=config.checkpoint_interval // 2)
    stats = run_workload(config, workload)
    return stats.mean_effective_ckpt_interval()


def main() -> None:
    n_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(f"Apache-like server on {n_cores} cores; thread 0 performs "
          "output I/O every half checkpoint interval.\n")
    for scheme in (Scheme.GLOBAL, Scheme.REBOUND):
        quiet = effective_interval(scheme, n_cores, with_io=False)
        noisy = effective_interval(scheme, n_cores, with_io=True)
        ratio = noisy / quiet if quiet else 0.0
        print(f"{scheme.value:10s}: effective interval without I/O = "
              f"{quiet:,.0f} cycles, with I/O = {noisy:,.0f} cycles "
              f"({100 * ratio:.0f}% retained)")
    print("\nPaper reference (Figure 6.7): Global-I/O collapses to ~50% "
          "of the configured interval; Rebound-I/O keeps >80% because "
          "the I/O thread checkpoints only with its own interaction set.")


if __name__ == "__main__":
    main()
