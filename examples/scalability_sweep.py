"""Scalability sweep: why global checkpointing does not scale.

Reproduces the shape of Figure 6.6(a) at example scale: checkpointing
overhead versus processor count for Global, Rebound_NoDWB and Rebound on
a communication-local workload.  Global's overhead grows with the
machine; Rebound's stays nearly flat because its checkpoints involve
only the processors that communicated.

Usage::

    python examples/scalability_sweep.py [app]
"""

import sys

from repro import Scheme, run_app
from repro.harness.report import format_table

SIZES = (8, 16, 32)
SCHEMES = (Scheme.GLOBAL, Scheme.REBOUND_NODWB, Scheme.REBOUND)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "blackscholes"
    rows = []
    for n_cores in SIZES:
        baseline = run_app(app, n_cores=n_cores, scheme=Scheme.NONE,
                           intervals=3)
        row = [n_cores]
        for scheme in SCHEMES:
            stats = run_app(app, n_cores=n_cores, scheme=scheme,
                            intervals=3)
            row.append(f"{100 * stats.overhead_vs(baseline):.2f}%")
        rows.append(row)
    print(format_table(
        ["cores"] + [s.value for s in SCHEMES], rows,
        title=f"Checkpoint overhead vs. machine size ({app})"))
    print("\nPaper reference (Figure 6.6a): Global climbs steeply toward "
          "~15% at 64 processors while Rebound stays near 2%.")


if __name__ == "__main__":
    main()
