"""Fault injection and recovery: watch an interaction set roll back.

Builds a producer/consumer workload, injects a transient fault into the
producer core mid-run, and shows how Rebound:

1. reveals the fault after the detection latency L,
2. builds the Interaction Set for Recovery (the producer plus every
   transitive consumer — but *not* the independent cores),
3. undoes the log, rewinds the cores and re-executes the lost work.

Usage::

    python examples/fault_recovery_demo.py
"""

from repro import MachineConfig, Scheme, run_workload
from repro.trace import COMPUTE, END, LOAD, STORE
from repro.workloads import WorkloadSpec


def build_workload() -> WorkloadSpec:
    """Four threads: 0 produces, 1 and 2 consume (2 transitively), 3 is
    completely independent."""
    traces = [
        # producer: writes shared lines, then long compute
        [(STORE, 100), (STORE, 101), (COMPUTE, 40_000), (END,)],
        # direct consumer of line 100
        [(COMPUTE, 500), (LOAD, 100), (STORE, 200), (COMPUTE, 40_000),
         (END,)],
        # transitive consumer (reads what thread 1 derived)
        [(COMPUTE, 1_500), (LOAD, 200), (COMPUTE, 40_000), (END,)],
        # independent
        [(STORE, 900), (COMPUTE, 41_000), (END,)],
    ]
    return WorkloadSpec(name="producer-chain", traces=traces)


def main() -> None:
    config = MachineConfig.scaled(n_cores=4, scheme=Scheme.REBOUND,
                                  scale=100)
    workload = build_workload()
    fault_cycle, faulty_core = 3_000.0, 0
    print(f"Injecting a transient fault into core {faulty_core} at cycle "
          f"{fault_cycle:,.0f}; detection latency L = "
          f"{config.detection_latency:,} cycles.\n")
    stats = run_workload(config, workload,
                         faults=[(fault_cycle, faulty_core)])

    for event in stats.rollbacks:
        print(f"rollback detected at cycle {event.detect_time:,.0f}:")
        print(f"  interaction set for recovery : {event.size} cores "
              f"(out of {config.n_cores})")
        print(f"  log entries undone           : {event.log_entries}")
        print(f"  checkpoint intervals unwound : {event.max_depth} "
              "(bounded -> no domino effect, Appendix A)")
        print(f"  recovery latency             : {event.latency:,.0f} cycles")
        print(f"  work discarded               : "
              f"{event.wasted_cycles:,.0f} cycles (re-executed)")
    print()
    untouched = [pid for pid, core in enumerate(stats.cores)
                 if core.recovery == 0]
    print(f"cores that never rolled back: {untouched} "
          "(no dependence on the faulty core)")
    print(f"total runtime including recovery: {stats.runtime:,.0f} cycles")
    print("\nAll threads completed: the rolled-back cores re-executed "
          "their lost work from the recovery line.")


if __name__ == "__main__":
    main()
