"""Fault injection and rollback correctness (Sections 3.3.5, 4.2, App A).

These are the system's deepest correctness tests: after a rollback the
memory image must be exactly what the targeted checkpoints certified,
lost work must re-execute, and the recovery must be bounded (no domino
effect).
"""

import pytest

from repro.params import Scheme
from repro.trace import BARRIER, COMPUTE, END, LOAD, LOCK, STORE, UNLOCK
from tests.conftest import (
    barrier_spec,
    lock_spec,
    make_machine,
    tiny_config,
)


def run_to_completion(machine):
    stats = machine.run()
    assert all(core.done for core in machine.cores)
    return stats


class TestGlobalRollback:
    def test_fault_rolls_back_all_and_reexecutes(self):
        # Interval 2000; fault at 3000 detected at 3400: the checkpoint
        # taken around 2000+ is NOT yet safe (needs L=400 of age at
        # detection if completed before 3000), so target depends on
        # completion time; either way the run must finish correctly.
        traces = [
            [(STORE, 1), (COMPUTE, 8000), (STORE, 2), (END,)],
            [(STORE, 10), (COMPUTE, 8000), (END,)],
        ]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL),
                               faults=[(3000.0, 0)])
        stats = run_to_completion(machine)
        assert len(stats.rollbacks) == 1
        event = stats.rollbacks[0]
        assert event.size == 2                  # global: everyone
        assert event.latency > 0
        assert stats.runtime > 8000

    def test_rollback_restores_memory_image(self):
        traces = [
            [(STORE, 1), (COMPUTE, 3000), (STORE, 2), (COMPUTE, 6000),
             (END,)],
        ]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL),
                               faults=[(4000.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks
        # After re-execution both stores are in the final state.
        assert machine.engine.l2s[0].peek(1) is not None or \
            machine.memory.peek(1) != 0

    def test_fault_without_safe_checkpoint_rolls_to_start(self):
        traces = [[(STORE, 1), (COMPUTE, 1000), (END,)]]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL),
                               faults=[(100.0, 0)])
        stats = run_to_completion(machine)
        event = stats.rollbacks[0]
        assert event.max_depth >= 1
        # Rolling to program start: memory reverts to zero before rerun.
        assert machine.cores[0].instr_count == 1001


class TestReboundRollback:
    def test_irec_includes_consumers(self):
        # P0 produces, P1 consumes, P2 independent.
        traces = [
            [(STORE, 5), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 300), (LOAD, 5), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 9500), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(4, Scheme.REBOUND),
                               faults=[(1000.0, 0)])
        stats = run_to_completion(machine)
        event = stats.rollbacks[0]
        assert event.size == 2      # P0 and its consumer P1, not P2
        assert machine.cores[2].stats.recovery == 0

    def test_independent_core_unaffected(self):
        traces = [
            [(STORE, 5), (COMPUTE, 9000), (END,)],
            [(STORE, 50), (COMPUTE, 9000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(4, Scheme.REBOUND),
                               faults=[(1000.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks[0].size == 1

    def test_transitive_consumers_roll_back(self):
        # Chain P0 -> P1 -> P2 within one interval.
        traces = [
            [(STORE, 5), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 300), (LOAD, 5), (STORE, 6), (COMPUTE, 9000),
             (END,)],
            [(COMPUTE, 700), (LOAD, 6), (COMPUTE, 9000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(4, Scheme.REBOUND),
                               faults=[(1200.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks[0].size == 3

    def test_memory_restored_exactly_to_checkpoint(self):
        """Undo must land on the pre-fault checkpoint image, byte for
        byte, for every line the rolled-back core logged."""
        config = tiny_config(2, Scheme.REBOUND, checkpoint_interval=1000,
                             detection_latency=200)
        traces = [
            [(STORE, 1), (STORE, 2), (COMPUTE, 1500),   # ckpt ~ here
             (STORE, 1), (COMPUTE, 4000), (END,)],
        ]
        machine = make_machine(traces, config=config,
                               faults=[(2500.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks
        # Final state reflects full re-execution: line 1 was stored
        # twice; its final architectural value is the re-executed one.
        final = machine.engine.l2s[0].peek(1)
        assert final is not None and final.value >> 40 == 0

    def test_rollback_depth_bounded_no_domino(self):
        """Appendix A: at most latest-safe + in-flight intervals unwind."""
        config = tiny_config(3, Scheme.REBOUND, checkpoint_interval=800,
                             detection_latency=150)
        traces = [
            [(STORE, 5), (COMPUTE, 400)] * 12 + [(END,)],
            [(LOAD, 5), (COMPUTE, 400)] * 12 + [(END,)],
        ]
        machine = make_machine(traces, config=config,
                               faults=[(2900.0, 0)])
        stats = run_to_completion(machine)
        for event in stats.rollbacks:
            assert event.max_depth <= 3   # target + open + one draining

    def test_wasted_cycles_recorded(self):
        traces = [[(STORE, 1), (COMPUTE, 6000), (END,)]]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(1500.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks[0].wasted_cycles > 0


class TestRollbackWithSynchronization:
    def test_lock_holder_rollback_releases_lock(self):
        lock = lock_spec()
        config = tiny_config(3, Scheme.REBOUND)
        traces = [
            [(LOCK, 0), (COMPUTE, 2500), (UNLOCK, 0), (COMPUTE, 6000),
             (END,)],
            [(COMPUTE, 100), (LOCK, 0), (COMPUTE, 10), (UNLOCK, 0),
             (COMPUTE, 6000), (END,)],
        ]
        machine = make_machine(traces, locks=[lock], config=config,
                               faults=[(600.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks
        lock_state = machine.sync.locks[0]
        assert lock_state.holder is None
        assert not lock_state.queue

    def test_barrier_rollback_rewinds_generation(self):
        barrier = barrier_spec(2)
        config = tiny_config(3, Scheme.REBOUND,
                             checkpoint_interval=100_000)
        traces = [
            [(STORE, 5), (COMPUTE, 1000), (BARRIER, 0), (COMPUTE, 4000),
             (END,)],
            [(COMPUTE, 200), (LOAD, 5), (BARRIER, 0), (COMPUTE, 4000),
             (END,)],
        ]
        # Fault on P0 detected after the barrier: both crossed it and
        # both depend on the flag writer, so both roll back past it and
        # re-cross (generation regresses, then advances again).
        machine = make_machine(traces, barriers=[barrier], config=config,
                               faults=[(1500.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks[0].size == 2
        assert machine.sync.barriers[0].gen == 1
        for core in machine.cores:
            assert core.barrier_crossings[0] == 1

    def test_rollback_of_blocked_waiter(self):
        """A core blocked at a barrier when its producer faults must be
        cleanly unwound and re-arrive."""
        barrier = barrier_spec(2)
        config = tiny_config(3, Scheme.REBOUND,
                             checkpoint_interval=100_000)
        traces = [
            [(STORE, 5), (COMPUTE, 4000), (BARRIER, 0), (END,)],
            [(LOAD, 5), (BARRIER, 0), (END,)],   # arrives early, blocks
        ]
        machine = make_machine(traces, barriers=[barrier], config=config,
                               faults=[(800.0, 0)])
        stats = run_to_completion(machine)
        assert stats.rollbacks[0].size == 2
        assert machine.sync.barriers[0].gen == 1


class TestMultipleFaults:
    def test_two_faults_recovered(self):
        traces = [
            [(STORE, 1), (COMPUTE, 3000), (STORE, 2), (COMPUTE, 8000),
             (END,)],
            [(COMPUTE, 11500), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(1000.0, 0), (5000.0, 0)])
        stats = run_to_completion(machine)
        assert len(stats.rollbacks) == 2

    def test_fault_on_each_core(self):
        traces = [
            [(STORE, 1), (COMPUTE, 9000), (END,)],
            [(STORE, 20), (COMPUTE, 9000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(1000.0, 0), (4000.0, 1)])
        stats = run_to_completion(machine)
        assert len(stats.rollbacks) == 2
        initiators = {e.initiator for e in stats.rollbacks}
        assert initiators == {0, 1}


class TestNoSchemeFaults:
    def test_fault_without_scheme_raises(self):
        machine = make_machine([[(COMPUTE, 2000), (END,)]],
                               config=tiny_config(2, Scheme.NONE),
                               faults=[(100.0, 0)])
        with pytest.raises(RuntimeError, match="no recovery support"):
            machine.run()
