"""Zero-copy engine data plane: view loads, chunked dispatch, widening.

Three compounding optimizations share one correctness bar — bit-identical
``SimStats``:

* ``CompiledTrace.from_buffer`` / ``WorkloadSpec.from_buffer`` build
  read-only memoryview columns over a serialized blob (the store mmaps
  entries instead of copying them);
* ``_run_parallel`` packs tasks into per-worker chunks (affinity-sorted
  by workload digest, workers persist their own cache entries);
* ``_batch_key`` widens replica batches across overrides of config
  fields the scheme declared fault-free invariant, so a
  detection-latency sweep under Global shares one leader walk.
"""

from __future__ import annotations

import pytest

from repro.harness.engine import (
    ExperimentEngine,
    RunKey,
    execute_batch,
    execute_run,
    resolve_config,
)
from repro.harness.workload_store import WorkloadStore
from repro.params import MachineConfig, Scheme
from repro.sim.machine import Machine
from repro.trace import TRACE_WIRE_FORMAT, CompiledTrace
from repro.workloads import get_workload, inject_output_io
from repro.workloads.base import WorkloadSpec

SCALE = 300
INTERVALS = 1.5


def _config(scheme=Scheme.GLOBAL, n_cores=4):
    return MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                scale=SCALE)


def _spec(n_cores=4, config=None, app="blackscholes"):
    config = config if config is not None else _config(n_cores=n_cores)
    return get_workload(app, n_cores, config, intervals=INTERVALS, seed=1)


class TestTraceFromBuffer:
    def test_view_equals_copy(self):
        for trace in _spec().traces:
            blob = trace.to_bytes()
            view = CompiledTrace.from_buffer(blob)
            copy = CompiledTrace.from_bytes(blob)
            assert view == copy
            assert view == trace
            assert view.n_instructions == trace.n_instructions
            assert view.to_bytes() == blob

    def test_view_columns_are_read_only(self):
        trace = _spec().traces[0]
        view = CompiledTrace.from_buffer(trace.to_bytes())
        with pytest.raises(TypeError):
            view.ops[0] = 1  # reprolint: disable=RL005
        with pytest.raises(TypeError):
            view.args[0] = 1  # reprolint: disable=RL005

    def test_offset_addressing(self):
        traces = _spec().traces
        blobs = [trace.to_bytes() for trace in traces]
        packed = b"".join(blobs)
        offset = 0
        for trace, blob in zip(traces, blobs):
            assert CompiledTrace.from_buffer(packed, offset) == trace
            offset += len(blob)

    def test_rejects_truncated_header(self):
        with pytest.raises(ValueError, match="truncated"):
            CompiledTrace.from_buffer(b"\x01\x00")

    def test_rejects_wrong_version(self):
        blob = bytearray(_spec().traces[0].to_bytes())
        blob[0] = TRACE_WIRE_FORMAT + 1
        with pytest.raises(ValueError, match="wire format"):
            CompiledTrace.from_buffer(bytes(blob))

    def test_rejects_truncated_payload(self):
        blob = _spec().traces[0].to_bytes()
        with pytest.raises(ValueError, match="payload"):
            CompiledTrace.from_buffer(blob[:-4])

    def test_rejects_unknown_op(self):
        trace = _spec().traces[0]
        blob = bytearray(trace.to_bytes())
        blob[20] = 0x7F                      # first ops byte
        with pytest.raises(ValueError, match="unknown trace op"):
            CompiledTrace.from_buffer(bytes(blob))

    def test_numpy_columns_over_view(self):
        np = pytest.importorskip("numpy")
        trace = _spec().traces[0]
        view = CompiledTrace.from_buffer(trace.to_bytes())
        vops, vargs = view.numpy_columns()
        cops, cargs = trace.numpy_columns()
        assert np.array_equal(vops, cops)
        assert np.array_equal(vargs, cargs)


class TestSpecFromBuffer:
    def test_spec_round_trip_parity(self):
        spec = _spec()
        data = spec.to_bytes()
        copied = WorkloadSpec.from_bytes(data)
        viewed = WorkloadSpec.from_buffer(data)
        assert viewed.name == copied.name == spec.name
        assert len(viewed.traces) == len(spec.traces)
        for v, c in zip(viewed.traces, copied.traces):
            assert v == c

    @pytest.mark.parametrize("scheme,io_every,fault", [
        (Scheme.NONE, None, False),
        (Scheme.GLOBAL, None, False),
        (Scheme.GLOBAL, 4000, False),
        (Scheme.GLOBAL, None, True),
        (Scheme.REBOUND, None, False),
        (Scheme.REBOUND, 4000, True),
    ])
    def test_sim_parity_view_vs_copy(self, scheme, io_every, fault):
        # The acceptance bar: a machine fed memoryview columns over the
        # serialized blob produces bit-identical SimStats to one fed
        # freshly copied array columns — across schemes, output I/O
        # injection and fault recovery.
        config = _config(scheme=scheme)
        data = _spec(config=config).to_bytes()
        faults = [(1.6 * config.checkpoint_interval, 0)] if fault else None

        def run(spec):
            if io_every is not None:
                spec = inject_output_io(spec=spec, pid=0,
                                        every_instructions=io_every)
            return Machine(config, spec, faults=faults).run()

        assert run(WorkloadSpec.from_buffer(data)) \
            == run(WorkloadSpec.from_bytes(data))

    def test_mmap_store_load_parity(self, tmp_path):
        config = _config()
        writer = WorkloadStore(tmp_path)
        built = writer.get_or_build("blackscholes", 4, config,
                                    INTERVALS, 1)
        mapped = WorkloadStore(tmp_path, use_mmap=True,
                               lru_capacity=0) \
            .get_or_build("blackscholes", 4, config, INTERVALS, 1)
        copied = WorkloadStore(tmp_path, use_mmap=False,
                               lru_capacity=0) \
            .get_or_build("blackscholes", 4, config, INTERVALS, 1)
        assert Machine(config, mapped).run() \
            == Machine(config, copied).run() \
            == Machine(config, built).run()


class TestStoreLRU:
    def test_second_load_is_lru_hit(self, tmp_path):
        config = _config()
        store = WorkloadStore(tmp_path)
        first = store.get_or_build("blackscholes", 4, config,
                                   INTERVALS, 1)
        again = store.get_or_build("blackscholes", 4, config,
                                   INTERVALS, 1)
        assert again is first                # the cached spec object
        assert store.lru_hits == 1
        assert store.hits == 1               # lru_hits ⊆ hits
        assert store.misses == 1

    def test_capacity_zero_disables(self, tmp_path):
        config = _config()
        store = WorkloadStore(tmp_path, lru_capacity=0)
        store.get_or_build("blackscholes", 4, config, INTERVALS, 1)
        store.get_or_build("blackscholes", 4, config, INTERVALS, 1)
        assert store.lru_hits == 0
        assert store.hits == 1               # disk hit still counted

    def test_eviction_keeps_capacity(self, tmp_path):
        config = _config()
        store = WorkloadStore(tmp_path, lru_capacity=1)
        store.get_or_build("blackscholes", 2, config, INTERVALS, 1)
        store.get_or_build("water_sp", 2, config, INTERVALS, 1)
        assert len(store._lru) == 1
        # blackscholes was evicted: loading it again is a disk hit,
        # not an LRU hit.
        store.get_or_build("blackscholes", 2, config, INTERVALS, 1)
        assert store.lru_hits == 0

    def test_env_capacity_garbage_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_WORKER_LRU", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKER_LRU"):
            WorkloadStore(tmp_path)

    def test_corrupt_entry_counted_and_rebuilt(self, tmp_path):
        config = _config()
        store = WorkloadStore(tmp_path)
        digest = store.digest_for("blackscholes", 4, config, INTERVALS, 1)
        store.get_or_build("blackscholes", 4, config, INTERVALS, 1)
        store.path_for(digest).write_bytes(b"garbage")
        fresh = WorkloadStore(tmp_path)
        spec = fresh.get_or_build("blackscholes", 4, config, INTERVALS, 1)
        assert spec is not None
        assert fresh.corrupt_rebuilds == 1
        assert fresh.misses == 1

    def test_write_failure_counted(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the store root should be")
        config = _config()
        store = WorkloadStore(blocked)
        spec = store.get_or_build("blackscholes", 4, config, INTERVALS, 1)
        assert spec is not None              # build still served
        assert store.write_failures == 1
        assert store.disabled

    def test_counters_dict_complete(self, tmp_path):
        store = WorkloadStore(tmp_path)
        assert set(store.counters()) == {
            "hits", "misses", "builds", "lru_hits", "corrupt_rebuilds",
            "write_failures"}


KEY_A1 = RunKey("blackscholes", 4, Scheme.NONE, INTERVALS, 1, SCALE)
KEY_A2 = RunKey("blackscholes", 4, Scheme.GLOBAL, INTERVALS, 1, SCALE)
KEY_B1 = RunKey("water_sp", 2, Scheme.NONE, INTERVALS, 1, SCALE)
KEY_B2 = RunKey("water_sp", 2, Scheme.GLOBAL, INTERVALS, 1, SCALE)


class TestChunkedDispatch:
    def test_affinity_groups_share_a_chunk(self):
        eng = ExperimentEngine(jobs=2, use_disk_cache=False,
                               chunk_size=2)
        chunks = eng._chunk_tasks([KEY_A1, KEY_B1, KEY_A2, KEY_B2],
                                  workers=2)
        assert chunks == [[KEY_A1, KEY_A2], [KEY_B1, KEY_B2]]

    def test_adaptive_size_bounds(self):
        eng = ExperimentEngine(jobs=4, use_disk_cache=False)
        tasks = [RunKey("blackscholes", 4, Scheme.NONE, INTERVALS, seed,
                        SCALE) for seed in range(100)]
        chunks = eng._chunk_tasks(tasks, workers=4)
        assert sorted(key.seed for chunk in chunks for key in chunk) \
            == list(range(100))
        assert all(1 <= len(chunk) <= 32 for chunk in chunks)
        assert len(chunks) >= 2 * 4          # window keeps workers fed

    def test_chunk_size_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "many")
        with pytest.raises(ValueError, match="REPRO_CHUNK"):
            ExperimentEngine(jobs=1, use_disk_cache=False)

    def test_chunked_parallel_matches_serial(self):
        keys = [KEY_A1, KEY_A2, KEY_B1, KEY_B2]
        serial = ExperimentEngine(jobs=1, use_disk_cache=False)
        expect = serial.run_many(keys)
        chunked = ExperimentEngine(jobs=3, use_disk_cache=False,
                                   chunk_size=2)
        got = chunked.run_many(keys)
        for key in keys:
            assert got[key] == expect[key], key

    def test_failing_task_reports_itself_siblings_cache(self, tmp_path):
        # All three tasks forced into ONE chunk: the raising run must
        # report its own RunKey while its chunk siblings complete AND
        # their results land in the disk cache (written by the worker).
        bad = RunKey("no_such_app", 4, Scheme.NONE, INTERVALS, 1, SCALE)
        eng = ExperimentEngine(jobs=2, cache_dir=tmp_path,
                               use_disk_cache=True, chunk_size=10)
        with pytest.raises(RuntimeError) as excinfo:
            eng.run_many([KEY_A1, bad, KEY_A2])
        message = str(excinfo.value)
        assert "no_such_app" in message
        assert "1 of 3 run(s)" in message
        assert KEY_A1 in eng.memo and KEY_A2 in eng.memo
        assert eng._cache_path(KEY_A1).exists()
        assert eng._cache_path(KEY_A2).exists()
        # A fresh engine replays the siblings from disk.
        fresh = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                 use_disk_cache=True)
        fresh.run_many([KEY_A1, KEY_A2])
        assert fresh.disk_hits == 2

    def test_worker_store_counters_aggregate(self, tmp_path):
        keys = [RunKey("blackscholes", 4, Scheme.NONE, INTERVALS, 1,
                       SCALE, overrides={"detection_latency": 2000 + i})
                for i in range(4)]
        eng = ExperimentEngine(jobs=2, cache_dir=tmp_path,
                               use_disk_cache=True, vector=False,
                               chunk_size=2)
        eng.run_many(keys)
        counters = eng.store_counters()
        # The parent prebuilt the shared workload once; every run then
        # loaded it (in a worker or the parent).
        assert counters["builds"] == 1
        assert counters["hits"] >= 1
        assert counters["write_failures"] == 0
        assert counters["corrupt_rebuilds"] == 0

    def test_no_cache_still_writes_nothing(self, tmp_path):
        eng = ExperimentEngine(jobs=2, cache_dir=tmp_path,
                               use_disk_cache=False, chunk_size=2)
        eng.run_many([KEY_A1, KEY_A2, KEY_B1])
        assert list(tmp_path.iterdir()) == []


def _l_keys(scheme, fault=True, n=3):
    config = MachineConfig.scaled(n_cores=4, scheme=scheme, scale=SCALE)
    fault_at = 1.6 * config.checkpoint_interval
    return [RunKey("blackscholes", 4, scheme, INTERVALS, 1, SCALE,
                   fault_at=fault_at if fault else None,
                   overrides={"detection_latency": 2_000 * (i + 1)})
            for i in range(n)]


class TestBatchWidening:
    def test_batch_key_strips_invariant_overrides(self):
        keys = _l_keys(Scheme.GLOBAL)
        idents = {ExperimentEngine._batch_key(key) for key in keys}
        assert len(idents) == 1

    def test_rebound_never_widens(self):
        # Rebound's dep-register recycling reads L during *fault-free*
        # checkpointing (can_open_interval), so it must not declare the
        # invariance — each L value stays its own replica group.
        keys = _l_keys(Scheme.REBOUND)
        idents = {ExperimentEngine._batch_key(key) for key in keys}
        assert len(idents) == len(keys)

    def test_non_invariant_override_still_splits(self):
        base = RunKey("blackscholes", 4, Scheme.GLOBAL, INTERVALS, 1,
                      SCALE, overrides={"backoff_max": 400})
        other = RunKey("blackscholes", 4, Scheme.GLOBAL, INTERVALS, 1,
                       SCALE, overrides={"backoff_max": 800})
        assert ExperimentEngine._batch_key(base) \
            != ExperimentEngine._batch_key(other)

    def test_plan_forms_one_batch_across_l(self):
        pytest.importorskip("numpy")
        keys = _l_keys(Scheme.GLOBAL)
        eng = ExperimentEngine(jobs=1, use_disk_cache=False, vector=True)
        tasks = eng._plan_tasks(list(keys))
        assert tasks == [keys]               # one batch spanning all L

    def test_fig_l_sensitivity_plan_batches_span_all_l(self):
        pytest.importorskip("numpy")
        from repro.harness.experiments import plan_fig_l_sensitivity
        from repro.harness.runner import Runner
        eng = ExperimentEngine(jobs=1, use_disk_cache=False, vector=True)
        runner = Runner(scale=SCALE, intervals=INTERVALS, engine=eng)
        keys = plan_fig_l_sensitivity(runner, apps=["blackscholes"],
                                      n_cores=4, n_seeds=1)
        tasks = eng._plan_tasks(list(dict.fromkeys(keys)))
        l_values = {key.overrides["detection_latency"] for key in keys}
        assert len(l_values) == 3
        global_batches = [task for task in tasks if isinstance(task, list)
                          and task[0].scheme is Scheme.GLOBAL]
        assert global_batches
        widest = max(global_batches, key=len)
        assert {key.overrides["detection_latency"] for key in widest} \
            == l_values

    @pytest.mark.parametrize("fault", [True, False])
    def test_widened_batch_parity(self, fault):
        pytest.importorskip("numpy")
        keys = _l_keys(Scheme.GLOBAL, fault=fault)
        stats_list, fell_back = execute_batch(list(keys))
        assert not fell_back
        for key, stats in zip(keys, stats_list):
            expect = execute_run(key)
            assert stats == expect, key
            assert stats.config == resolve_config(key)

    def test_replica_configs_validation(self):
        pytest.importorskip("numpy")
        from repro.sim.vector import run_replica_batch
        config = _config()
        spec = _spec(config=config)
        with pytest.raises(ValueError, match="replica_configs"):
            run_replica_batch(config, spec, [[], []],
                              replica_configs=[config])

    def test_replica_configs_vector_parity(self):
        pytest.importorskip("numpy")
        from repro.sim.vector import run_replica_batch
        base = _config()
        fault_at = 1.6 * base.checkpoint_interval
        configs = [base.replace(detection_latency=2_000 * (i + 1))
                   for i in range(3)]
        fault_lists = [[(fault_at, 0)], [], [(fault_at, 2)]]
        spec_bytes = _spec(config=base).to_bytes()
        result = run_replica_batch(base,
                                   WorkloadSpec.from_bytes(spec_bytes),
                                   fault_lists, replica_configs=configs)
        for rc, faults, stats in zip(configs, fault_lists, result.stats):
            scalar = Machine(rc, WorkloadSpec.from_bytes(spec_bytes),
                             faults=list(faults)).run()
            assert stats == scalar
            assert stats.config == rc
