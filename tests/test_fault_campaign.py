"""Fault-campaign subsystem: seeded plans, multi-fault recovery, caching.

Covers the recovery edge cases the single-scripted-fault figures never
exercised — faults during in-flight checkpoints, back-to-back faults on
one core, faults with no safe checkpoint — plus the campaign guarantees:
same seed => identical plan => identical ``SimStats`` whether computed
serially, on engine workers, or replayed from the disk cache, and the
regression that an undelivered fault can no longer masquerade as a
0-cycle recovery.
"""

import math
import pickle

import pytest

from repro.harness.engine import ExperimentEngine, RunKey, execute_run
from repro.harness.experiments import parse_variant
from repro.harness.runner import Runner
from repro.params import Scheme
from repro.sim import FaultPlan, summarize_campaign
from repro.sim.stats import percentile
from repro.trace import COMPUTE, END, STORE
from tests.conftest import make_machine, tiny_config


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        a = FaultPlan.from_mttf(seed=7, mttf=5_000, horizon=40_000,
                                n_cores=8)
        b = FaultPlan.from_mttf(seed=7, mttf=5_000, horizon=40_000,
                                n_cores=8)
        assert a == b
        assert repr(a) == repr(b)

    def test_different_seed_different_plan(self):
        a = FaultPlan.from_mttf(seed=1, mttf=5_000, horizon=40_000,
                                n_cores=8)
        b = FaultPlan.from_mttf(seed=2, mttf=5_000, horizon=40_000,
                                n_cores=8)
        assert a != b

    def test_draws_respect_horizon_and_core_range(self):
        plan = FaultPlan.from_mttf(seed=3, mttf=2_000, horizon=30_000,
                                   n_cores=4)
        assert plan.n_faults > 0
        for time, pid in plan.faults:
            assert 0.0 < time < 30_000
            assert 0 <= pid < 4
        assert [t for t, _ in plan.faults] == sorted(
            t for t, _ in plan.faults)

    def test_hashable_and_picklable(self):
        plan = FaultPlan.from_mttf(seed=5, mttf=3_000, horizon=20_000,
                                   n_cores=4)
        assert {plan: 1}[pickle.loads(pickle.dumps(plan))] == 1
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                     fault_plan=plan)
        assert pickle.loads(pickle.dumps(key)) == key

    def test_single_is_compat_with_fault_at(self):
        plan = FaultPlan.single(1234.0)
        assert plan.faults == ((1234.0, 0),)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="mttf"):
            FaultPlan.from_mttf(seed=1, mttf=0, horizon=100, n_cores=2)
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.from_mttf(seed=1, mttf=10, horizon=0, n_cores=2)

    def test_refuses_silent_truncation(self):
        # A draw that would exceed max_faults raises instead of quietly
        # injecting a milder process than the label claims.
        with pytest.raises(ValueError, match="max_faults"):
            FaultPlan.from_mttf(seed=1, mttf=1.0, horizon=1_000.0,
                                n_cores=2, max_faults=10)

    def test_metadata_excluded_from_identity(self):
        # seed/mttf are provenance only: equal faults => equal plan,
        # equal hash and equal repr (one engine cache entry).
        drawn = FaultPlan.from_mttf(seed=9, mttf=3_000, horizon=20_000,
                                    n_cores=4)
        bare = FaultPlan(drawn.faults)
        assert bare == drawn
        assert hash(bare) == hash(drawn)
        assert repr(bare) == repr(drawn)

    def test_fault_at_and_plan_mutually_exclusive(self):
        # Validated at construction (plan time), not inside fault_list()
        # in a pool worker.
        with pytest.raises(ValueError, match="mutually exclusive"):
            RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                   fault_at=100.0, fault_plan=FaultPlan.single(100.0))


class TestRecoveryEdgeCases:
    def test_fault_during_inflight_checkpoint_drain(self):
        # Rebound uses delayed writebacks: the checkpoint around cycle
        # ~2000 drains in the background; the fault strikes inside that
        # drain window, so the fresh (incomplete) snapshot is not safe.
        traces = [
            [(STORE, 1), (COMPUTE, 1990), (STORE, 2), (COMPUTE, 7000),
             (END,)],
            [(STORE, 9), (COMPUTE, 9000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(2100.0, 0)])
        stats = machine.run()
        assert all(core.done for core in machine.cores)
        assert len(stats.rollbacks) == 1
        assert stats.undelivered_faults == 0

    def test_back_to_back_faults_same_core(self):
        # The second fault is detected before the first rollback's
        # re-execution completes; both must recover, and the recovery
        # wait must not be double-counted as discarded work.
        traces = [
            [(STORE, 1), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 9500), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(2500.0, 0), (2600.0, 0)])
        stats = machine.run()
        assert all(core.done for core in machine.cores)
        assert len(stats.rollbacks) == 2
        for event in stats.rollbacks:
            # Per member, waste is bounded by the work that can have
            # executed by detection time (the detect-time cap).
            assert event.wasted_cycles <= event.size * event.detect_time
        # No double-counting: only core 0 ever discards execution, and
        # by the second detection (cycle 3000) it has executed at most
        # 3000 cycles of discardable work in total — the second
        # rollback must not re-charge the span the first one wrote off.
        assert stats.work_lost_cycles() <= 3000.0
        # Overlapping recovery windows likewise count each wall-clock
        # cycle at most once per core.
        for core_stats in stats.cores:
            assert core_stats.recovery <= stats.runtime

    def test_fault_with_no_safe_checkpoint_rolls_to_start(self):
        traces = [[(STORE, 1), (COMPUTE, 1200), (END,)]]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(100.0, 0)])
        stats = machine.run()
        event = stats.rollbacks[0]
        assert event.max_depth >= 1
        assert machine.cores[0].instr_count == 1201  # full re-execution

    def test_campaign_plan_through_machine(self):
        plan = FaultPlan.from_mttf(seed=11, mttf=3_000, horizon=8_000,
                                   n_cores=2)
        traces = [[(STORE, 1), (COMPUTE, 9000), (END,)],
                  [(STORE, 9), (COMPUTE, 9000), (END,)]]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=plan)
        stats = machine.run()
        assert stats.injected_faults == plan.n_faults
        assert (len(stats.rollbacks) ==
                stats.injected_faults - stats.undelivered_faults)


class TestUndeliveredFaults:
    def test_undelivered_fault_recorded_not_dropped(self):
        # Every core finishes long before the fault's detection time.
        machine = make_machine([[(COMPUTE, 1000), (END,)]],
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(50_000.0, 0)])
        stats = machine.run()
        assert not stats.rollbacks
        assert stats.injected_faults == 1
        assert stats.undelivered_faults == 1
        assert machine.faults.outstanding == 0

    def test_mean_recovery_latency_refuses_fake_zero(self):
        machine = make_machine([[(COMPUTE, 1000), (END,)]],
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(50_000.0, 0)])
        stats = machine.run()
        with pytest.raises(RuntimeError, match="never delivered"):
            stats.mean_recovery_latency()

    def test_no_faults_still_reports_zero(self):
        machine = make_machine([[(COMPUTE, 1000), (END,)]],
                               config=tiny_config(2, Scheme.REBOUND))
        stats = machine.run()
        assert stats.mean_recovery_latency() == 0.0


def _campaign_key(seed=21):
    plan = FaultPlan.from_mttf(seed=seed, mttf=6_000, horizon=15_000,
                               n_cores=4)
    return RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                  fault_plan=plan)


class TestCampaignDeterminism:
    def test_same_seed_same_stats(self):
        assert execute_run(_campaign_key()) == execute_run(_campaign_key())

    def test_worker_pool_matches_serial(self):
        keys = [_campaign_key(s) for s in (31, 32)]
        serial = ExperimentEngine(jobs=1, use_disk_cache=False)
        parallel = ExperimentEngine(jobs=2, use_disk_cache=False)
        a = serial.run_many(keys)
        b = parallel.run_many(keys)
        for key in keys:
            assert a[key] == b[key]
            assert a[key].injected_faults == key.fault_plan.n_faults

    def test_disk_cache_replays_campaign_run(self, tmp_path):
        key = _campaign_key()
        writer = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_disk_cache=True)
        first = writer.run(key)
        reader = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_disk_cache=True)
        second = reader.run(key)
        assert reader.disk_hits == 1
        assert not reader.profile          # nothing recomputed
        assert second == first

    def test_cluster_key_addresses_distinct_entry(self):
        runner = Runner(scale=300, intervals=1.5)
        flat = runner.key("blackscholes", 4, Scheme.REBOUND)
        clustered = runner.key("blackscholes", 4, Scheme.REBOUND,
                               cluster=2)
        assert flat != clustered
        stats = runner.run("blackscholes", 4, Scheme.REBOUND, cluster=2)
        assert stats.config.dep_cluster_size == 2


class TestCampaignAggregation:
    def test_summarize_campaign(self):
        runner = Runner(scale=300, intervals=1.5)
        runs = [runner.run("blackscholes", 4, Scheme.REBOUND,
                           fault_plan=FaultPlan.from_mttf(
                               seed=s, mttf=6_000, horizon=15_000,
                               n_cores=4))
                for s in (41, 42)]
        summary = summarize_campaign(runs)
        assert summary.n_runs == 2
        assert summary.injected_faults == sum(r.injected_faults
                                              for r in runs)
        assert (summary.delivered_faults + summary.undelivered_faults ==
                summary.injected_faults)
        assert summary.n_rollbacks == sum(len(r.rollbacks) for r in runs)
        assert len(summary.irec_sizes) == summary.n_rollbacks
        assert 0.0 <= summary.mean_availability <= 1.0
        assert summary.mean_work_lost >= 0.0

    def test_availability_without_faults_is_one(self):
        runner = Runner(scale=300, intervals=1.5)
        stats = runner.run("blackscholes", 4, Scheme.REBOUND)
        assert stats.availability() == 1.0
        assert stats.work_lost_cycles() == 0.0

    def test_percentile(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0
        assert percentile(values, 50) == 25.0
        assert math.isnan(percentile([], 95))
        assert percentile([7.0], 95) == 7.0
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile(values, 101)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile(values, -0.5)

    def test_parse_variant(self):
        label, scheme, cluster = parse_variant("rebound@4")
        assert scheme is Scheme.REBOUND and cluster == 4
        assert parse_variant("global").cluster == 1
        with pytest.raises(ValueError, match="unknown scheme"):
            parse_variant("bogus")
        with pytest.raises(ValueError, match="cluster size"):
            parse_variant("rebound@0")


class TestCampaignCli:
    ARGS = ["campaign", "--seed", "7", "--seeds", "2", "--mttf", "1.0",
            "--apps", "blackscholes", "--cores", "4", "--scale", "300",
            "--intervals", "1.5"]

    def test_campaign_subcommand(self, capsys, tmp_path):
        from repro.harness.__main__ import main
        code = main(self.ARGS + ["--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out
        assert "availability" in out
        assert "rebound" in out

    def test_second_invocation_served_from_cache(self, capsys, tmp_path):
        from repro.harness.__main__ import main
        main(self.ARGS + ["--cache-dir", str(tmp_path)])
        capsys.readouterr()
        code = main(self.ARGS + ["--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 computed" in out
        assert "from disk cache" in out
