"""Tests for the WSIG Bloom-filter write signature (Section 3.3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import WriteSignature


class TestBasics:
    def test_empty_signature_claims_nothing(self):
        sig = WriteSignature(256, 4)
        claims, genuine = sig.test(0x1234)
        assert not claims
        assert not genuine

    def test_added_address_always_found(self):
        sig = WriteSignature(256, 4)
        sig.add(42)
        claims, genuine = sig.test(42)
        assert claims
        assert genuine

    def test_clear_resets_everything(self):
        sig = WriteSignature(256, 4)
        for addr in range(50):
            sig.add(addr)
        sig.clear()
        assert sig.bits == 0
        assert len(sig) == 0
        claims, _ = sig.test(7)
        assert not claims

    def test_contains_matches_test(self):
        sig = WriteSignature(512, 4)
        sig.add(99)
        assert 99 in sig
        claims, _ = sig.test(99)
        assert claims

    def test_occupancy_grows_with_inserts(self):
        sig = WriteSignature(256, 4)
        assert sig.occupancy == 0.0
        sig.add(1)
        first = sig.occupancy
        for addr in range(2, 40):
            sig.add(addr)
        assert sig.occupancy > first

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ValueError):
            WriteSignature(1000, 4)
        with pytest.raises(ValueError):
            WriteSignature(0, 4)

    def test_false_positive_counted(self):
        # A tiny filter saturates quickly: fill it and probe others.
        sig = WriteSignature(16, 2)
        for addr in range(64):
            sig.add(addr)
        before = sig.false_positives
        hits = 0
        for addr in range(1000, 1200):
            claims, genuine = sig.test(addr)
            if claims and not genuine:
                hits += 1
        assert sig.false_positives == before + hits
        assert hits > 0  # a saturated 16-bit filter must alias

    def test_merge_unions_both_filters(self):
        a = WriteSignature(256, 4)
        b = WriteSignature(256, 4)
        a.add(1)
        b.add(2)
        a.merge(b)
        assert 1 in a and 2 in a
        assert a.exact == {1, 2}


class TestProperties:
    @given(st.sets(st.integers(min_value=0, max_value=2**48)),
           st.integers(min_value=0, max_value=2**48))
    @settings(max_examples=200, deadline=None)
    def test_no_false_negatives(self, members, probe):
        """The paper relies on this: false negatives are impossible."""
        sig = WriteSignature(128, 3)
        for addr in members:
            sig.add(addr)
        if probe in members:
            claims, genuine = sig.test(probe)
            assert claims and genuine

    @given(st.lists(st.integers(min_value=0, max_value=2**32),
                    min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_genuine_iff_inserted(self, addrs):
        sig = WriteSignature(1024, 4)
        inserted = set(addrs[: len(addrs) // 2])
        for addr in inserted:
            sig.add(addr)
        for addr in addrs:
            _, genuine = sig.test(addr)
            assert genuine == (addr in inserted)

    @given(st.sets(st.integers(min_value=0, max_value=2**32), max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_merge_preserves_no_false_negatives(self, members):
        half = len(members) // 2
        as_list = sorted(members)
        a = WriteSignature(128, 3)
        b = WriteSignature(128, 3)
        for addr in as_list[:half]:
            a.add(addr)
        for addr in as_list[half:]:
            b.add(addr)
        a.merge(b)
        for addr in members:
            claims, genuine = a.test(addr)
            assert claims and genuine
