"""Campaign service tests: spool lifecycle, journal streaming, replay.

The restart contract is the load-bearing one: a killed campaign must
resume with *zero* recomputation of landed runs and summarize
bit-identically to a cold batch-engine run of the same plan — the
journal and the result cache are two layers of the same durability
story (both fingerprint-invalidated, both replayed on startup).
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.harness.engine as engine_mod
from repro.harness.engine import ExperimentEngine, RunKey, code_fingerprint
from repro.harness.service import (
    AsyncJournalWriter,
    CampaignService,
    JobRecord,
    default_spool_dir,
)
from repro.params import Scheme
from repro.sim.stats import summarize_campaign


def keys_for(n, scale=300):
    return [RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, seed, scale)
            for seed in range(1, n + 1)]


def make_service(tmp_path, jobs=1):
    engine = ExperimentEngine(jobs=jobs, cache_dir=tmp_path / "cache",
                              use_disk_cache=True)
    return CampaignService(spool_dir=tmp_path / "spool", engine=engine)


class TestAsyncJournalWriter:
    def test_records_land_in_order_and_survive_flush(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = AsyncJournalWriter(path)
        for i in range(50):
            writer.append({"job": "j", "key": f"k{i}"})
        writer.flush()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["key"] for line in lines] \
            == [f"k{i}" for i in range(50)]
        writer.close()
        assert writer.written == 50

    def test_close_is_idempotent(self, tmp_path):
        writer = AsyncJournalWriter(tmp_path / "journal.jsonl")
        writer.append({"job": "j", "key": "k"})
        writer.close()
        writer.close()


class TestSpoolProtocol:
    def test_submit_status_roundtrip(self, tmp_path):
        service = make_service(tmp_path)
        job_id = service.submit(keys_for(3), priority=2, label="demo")
        status = service.status(job_id)
        assert status["state"] == "queued"
        assert status["total"] == 3
        assert status["priority"] == 2
        assert status["label"] == "demo"
        assert [s["job"] for s in service.statuses()] == [job_id]
        assert service.status("no-such-job") is None

    def test_empty_submission_rejected(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ValueError):
            service.submit([])

    def test_duplicate_job_id_rejected(self, tmp_path):
        service = make_service(tmp_path)
        service.submit(keys_for(1), job_id="twin")
        with pytest.raises(ValueError):
            service.submit(keys_for(1), job_id="twin")

    def test_priority_orders_the_queue(self, tmp_path):
        service = make_service(tmp_path)
        low = service.submit(keys_for(1), priority=0)
        high = service.submit(keys_for(2), priority=5)
        assert [job.job_id for job in service.pending_jobs()] \
            == [high, low]

    def test_cancel_queued_job_never_runs(self, tmp_path):
        service = make_service(tmp_path)
        doomed = service.submit(keys_for(2), label="doomed")
        kept = service.submit(keys_for(1), label="kept")
        assert service.cancel(doomed)
        assert not service.cancel("no-such-job")
        service.serve(drain=True)
        assert service.status(doomed)["state"] == "cancelled"
        assert service.status(kept)["state"] == "done"
        assert service.engine.profile  # only the kept job executed
        assert all(key in service.engine.memo for key in keys_for(1))

    def test_stop_request_ends_an_idle_server(self, tmp_path):
        service = make_service(tmp_path)
        processed = service.serve(
            poll=0.01, on_idle=service.request_stop)
        assert processed == 0
        assert not service.stop_requested()  # honored and cleared


class TestServeAndJournal:
    def test_drain_executes_and_journals_everything(self, tmp_path):
        service = make_service(tmp_path, jobs=2)
        keys = keys_for(4)
        job_id = service.submit(keys, label="full")
        assert service.serve(drain=True) == 1
        status = service.status(job_id)
        assert status["state"] == "done"
        assert status["landed"] == 4
        assert status["computed"] == 4
        assert status["pending"] == 0
        records = [json.loads(line) for line in
                   (service.spool / "journal.jsonl").read_text()
                   .splitlines()]
        assert len(records) == 4
        assert all(r["job"] == job_id for r in records)
        assert all(r["fingerprint"] == code_fingerprint()
                   for r in records)
        assert all(r["source"] == "run" for r in records)

    def test_journal_results_bit_identical_to_batch_engine(self,
                                                           tmp_path):
        service = make_service(tmp_path)
        keys = keys_for(3)
        job_id = service.submit(keys)
        service.serve(drain=True)
        batch = ExperimentEngine(jobs=1, use_disk_cache=False)
        expected = batch.run_many(keys)
        landed = service.job_results(job_id)
        assert set(landed) == set(keys)
        for key in keys:
            assert landed[key] == expected[key], key
        assert service.summarize(job_id) \
            == summarize_campaign(expected[key] for key in keys)

    def test_cancelled_job_reports_partial_summary(self, tmp_path):
        # Two of four runs land (replayed from the memo), then the
        # cancel marker is seen: the rest stay pending and the job's
        # summary covers exactly the landed runs.
        service = make_service(tmp_path)
        keys = keys_for(4)
        done = service.engine.run_many(keys[:2])
        job_id = service.submit(keys, label="partial")
        (service.cancel_dir / job_id).touch()
        report = service.run_job(JobRecord(job_id=job_id, keys=keys))
        assert report.cancelled
        assert set(report.results) == set(keys[:2])
        assert set(report.pending) == set(keys[2:])
        status = service.status(job_id)
        assert status["state"] == "cancelled"
        assert status["landed"] == 2
        assert status["pending"] == 2
        partial = service.summarize(job_id)
        assert partial.n_runs == 2
        assert partial == summarize_campaign(done.values())


class TestRestartReplay:
    def test_restart_resumes_with_zero_recomputation(self, tmp_path):
        first = make_service(tmp_path)
        keys = keys_for(4)
        job_id = first.submit(keys)
        first.serve(drain=True)
        # A fresh process (new engine, same spool + cache): replay fills
        # the memo from the journal, so resubmitting the same plan runs
        # nothing — and any recompute attempt blows up loudly.
        second = make_service(tmp_path)
        assert second.replay() == 4
        assert set(second.engine.memo) == set(keys)
        again = second.submit(keys)
        second.serve(drain=True)
        status = second.status(again)
        assert status["state"] == "done"
        assert status["computed"] == 0
        assert status["replayed"] == 4
        assert not second.engine.profile  # zero executions
        assert second.summarize(again) == first.summarize(job_id)

    def test_interrupted_job_resumes_from_journal_and_cache(self,
                                                            tmp_path):
        # Simulate a mid-flight kill: half the job landed (journal +
        # cache written), the process died before the rest ran.  The
        # restarted server finishes the *same* job, recomputing only
        # the unlanded half and journaling each key exactly once.
        keys = keys_for(4)
        first = make_service(tmp_path)
        job_id = first.submit(keys, label="campaign")
        (first.cancel_dir / job_id).touch()       # "die" after 2 runs
        first.engine.run_many(keys[:2])
        first.run_job(JobRecord(job_id=job_id, keys=keys))
        first.close()
        (first.cancel_dir / job_id).unlink()
        # Force the state back to non-terminal, as a SIGKILL would have
        # left it ("running" never transitions).
        status = first.status(job_id)
        status["state"] = "running"
        first._write_state(status)

        second = make_service(tmp_path)
        assert second.serve(drain=True) == 1
        status = second.status(job_id)
        assert status["state"] == "done"
        assert set(second.engine.profile) == set(keys[2:])  # only these
        records = [json.loads(line) for line in
                   (second.spool / "journal.jsonl").read_text()
                   .splitlines()]
        per_key = [r["key"] for r in records if r["job"] == job_id]
        assert sorted(per_key) == sorted(repr(key) for key in keys)
        cold = ExperimentEngine(jobs=1, use_disk_cache=False)
        assert second.summarize(job_id) \
            == summarize_campaign(cold.run_many(keys).values())

    def test_stale_fingerprint_entries_are_not_replayed(self, tmp_path,
                                                        monkeypatch):
        service = make_service(tmp_path)
        job_id = service.submit(keys_for(2))
        service.serve(drain=True)
        monkeypatch.setattr(engine_mod, "_FINGERPRINT", "new-physics")
        stale = make_service(tmp_path)
        assert stale.replay() == 0
        assert stale.summarize(job_id).n_runs == 0

    def test_torn_journal_lines_are_skipped(self, tmp_path):
        service = make_service(tmp_path)
        job_id = service.submit(keys_for(2))
        service.serve(drain=True)
        with (service.spool / "journal.jsonl").open("a") as fh:
            fh.write("{garbage\n")
            fh.write('{"job": "x", "key": "y", "pkl": "!!"}\n')
            fh.write('{"job": "' + job_id + '"')  # torn mid-write
        fresh = make_service(tmp_path)
        assert fresh.replay() == 2
        assert fresh.summarize(job_id).n_runs == 2


class TestKillDashNine:
    def test_sigkill_mid_flight_then_restart_completes(self, tmp_path):
        """The acceptance criterion, end to end: SIGKILL a serving
        process mid-campaign, restart over the same spool, and the job
        completes with zero re-executed runs and a summary bit-identical
        to a cold batch run of the same plan."""
        keys = keys_for(12, scale=120)
        client = CampaignService(spool_dir=tmp_path / "spool")
        job_id = client.submit(keys, label="victim")
        script = (
            "from repro.harness.engine import ExperimentEngine\n"
            "from repro.harness.service import CampaignService\n"
            f"engine = ExperimentEngine(jobs=1, "
            f"cache_dir={str(tmp_path / 'cache')!r})\n"
            f"CampaignService({str(tmp_path / 'spool')!r}, "
            f"engine=engine).serve(drain=True)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
            + sys.path)
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        journal = tmp_path / "spool" / "journal.jsonl"
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text().count("\n"):
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.01)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)

        def journaled_keys():
            if not journal.exists():
                return set()
            found = set()
            for line in journal.read_text().splitlines():
                try:
                    found.add(json.loads(line)["key"])
                except (ValueError, KeyError):
                    continue   # torn final line from the kill
            return found

        journaled_before = journaled_keys()

        restarted = make_service(tmp_path)
        restarted.serve(drain=True)
        status = restarted.status(job_id)
        assert status["state"] == "done"
        assert status["landed"] == len(keys)
        # Zero re-execution: nothing journaled before the kill ran again.
        reexecuted = {repr(key) for key in restarted.engine.profile} \
            & journaled_before
        assert reexecuted == set()
        cold = ExperimentEngine(jobs=1, use_disk_cache=False)
        assert restarted.summarize(job_id) \
            == summarize_campaign(cold.run_many(keys).values())


class TestKnobs:
    def test_spool_dir_knob(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_SPOOL", str(tmp_path / "s"))
        assert default_spool_dir() == tmp_path / "s"
        monkeypatch.delenv("REPRO_SERVE_SPOOL")
        assert default_spool_dir().name == "service"
