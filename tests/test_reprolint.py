"""Tests for ``reprolint`` (:mod:`repro.analysis`).

Three layers: the rule framework (registry, suppressions, selection,
report round-trips), the four production rules against the checked-in
known-bad fixture tree under ``tests/fixtures/reprolint/badtree``, and
the acceptance contract — the shipped tree lints clean, while a mutated
copy of it (a lambda scheduled in ``repro.sim``, a module dropped from
the fingerprint set) fails.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    LintError,
    Project,
    Rule,
    default_project,
    register_rule,
    registered_rules,
    resolve_rules,
    run_lint,
    unregister_rule,
)
from repro.harness.__main__ import main

BADTREE = Path(__file__).parent / "fixtures" / "reprolint" / "badtree"


def badtree_project(**replacements) -> Project:
    """The fixture tree, with ``outside.py`` excluded from the
    fingerprint set (the RL003 coverage hazard)."""
    fingerprint = frozenset(
        path.resolve() for path in BADTREE.rglob("*.py")
        if path.name != "outside.py")
    project = Project(root=BADTREE, package="badtree",
                      fingerprint_paths=fingerprint)
    return dataclasses.replace(project, **replacements) \
        if replacements else project


def findings_for(code: str, project: Project = None) -> list[Finding]:
    report = run_lint(project or badtree_project(), rules=[code])
    assert report.rules == (code,)
    return report.findings


class TestShippedTreeClean:
    """The acceptance gate: the real tree has zero findings."""

    def test_shipped_tree_is_clean(self):
        report = run_lint()
        assert report.ok, report.render()
        assert report.findings == []
        # All six production rules actually ran over the whole package.
        assert report.rules == ("RL001", "RL002", "RL003", "RL004",
                                "RL005", "RL006")
        assert report.checked_files >= 50

    def test_default_project_fingerprint_matches_engine(self):
        from repro.harness.engine import fingerprint_paths
        project = default_project()
        assert project.fingerprint_paths == frozenset(
            path.resolve() for path in fingerprint_paths())
        # The analyzer itself is fingerprinted too (it lives in the
        # package tree), so lint-rule changes re-key the result cache.
        assert any(path.name == "rules_fork.py"
                   for path in project.fingerprint_paths)


class TestRL001ForkSafety:
    def test_all_three_spellings_fire(self):
        findings = findings_for("RL001")
        lines = {finding.line for finding in findings}
        assert all(f.path == "sim/bad_fork.py" for f in findings)
        # legacy .schedule, lambda to schedule_call, local fn to heappush
        assert len(findings) == 3
        assert {11, 14, 19} == lines
        messages = " ".join(f.message for f in findings)
        assert "DurableCall" in messages
        assert "legacy closure scheduling" in messages
        assert "local function 'callback'" in messages

    def test_scoped_to_sim_and_core(self, tmp_path):
        # The same hazard outside sim/ or core/ is not RL001's business
        # (the harness may schedule closures; it never forks).
        (tmp_path / "harness").mkdir()
        (tmp_path / "harness" / "mod.py").write_text(
            "def arm(m):\n    m.schedule(1.0, lambda t: None)\n")
        report = run_lint(Project(root=tmp_path, package="pkg"),
                          rules=["RL001"])
        assert report.ok


class TestRL002Determinism:
    def test_each_hazard_fires_once(self):
        findings = findings_for("RL002")
        assert all(f.path == "sim/bad_entropy.py" for f in findings)
        by_line = {finding.line: finding.message for finding in findings}
        assert 9 in by_line and "time.time" in by_line[9]
        assert 17 in by_line and "random.random" in by_line[17]
        assert 25 in by_line and "id()" in by_line[25]
        assert 30 in by_line and "sorted(" in by_line[30]
        assert len(findings) == 4

    def test_suppressed_hit_does_not_fail(self):
        report = run_lint(badtree_project(), rules=["RL002"])
        # Line 13 carries ``# reprolint: disable=RL002``: same hazard
        # as line 9, absent from the findings, counted as suppressed.
        assert all(finding.line != 13 for finding in report.findings)
        assert report.suppressed == 1

    def test_seeded_rng_not_flagged(self):
        findings = findings_for("RL002")
        assert all("Random(seed)" not in finding.message
                   for finding in findings)
        assert all(finding.line != 21 for finding in findings)


class TestRL003FingerprintCoverage:
    def test_uncovered_reachable_module_fires(self):
        findings = findings_for("RL003")
        uncovered = [f for f in findings if f.path == "outside.py"]
        assert len(uncovered) == 1
        assert "outside the code_fingerprint() file set" \
            in uncovered[0].message

    def test_unresolvable_import_fires(self):
        findings = findings_for("RL003")
        ghost = [f for f in findings if "badtree.ghost" in f.message]
        assert len(ghost) == 1
        assert ghost[0].path == "harness/engine.py"

    def test_register_workload_without_fingerprint_fires(self):
        findings = findings_for("RL003")
        plugin = [f for f in findings if f.path == "plugins.py"]
        assert len(plugin) == 1
        assert plugin[0].line == 11
        assert "fingerprint" in plugin[0].message

    def test_missing_entrypoint_reported(self):
        project = badtree_project(entrypoints=("execute_run",
                                               "no_such_fn"))
        findings = findings_for("RL003", project)
        assert any("no_such_fn" in finding.message
                   for finding in findings)

    def test_full_fingerprint_set_clears_coverage(self):
        project = badtree_project(
            fingerprint_paths=frozenset(
                path.resolve() for path in BADTREE.rglob("*.py")))
        findings = findings_for("RL003", project)
        assert not any(finding.path == "outside.py"
                       for finding in findings)


class TestRL004CacheIdentity:
    def test_mutable_identity_types_fire(self):
        findings = findings_for("RL004")
        names = {finding.message.split()[1] for finding in findings}
        assert names == {"Knob", "Overrides"}
        assert all(finding.path == "keys.py" for finding in findings)

    def test_frozen_and_explicit_identities_pass(self):
        findings = findings_for("RL004")
        messages = " ".join(finding.message for finding in findings)
        assert "GoodTag" not in messages
        assert "RunKey" not in messages


class TestRL005TraceImmutability:
    def test_every_mutation_spelling_fires(self):
        findings = findings_for("RL005")
        assert all(f.path == "sim/bad_trace_mutation.py"
                   for f in findings)
        by_line = {finding.line: finding.message for finding in findings}
        assert 5 in by_line and ".ops" in by_line[5]          # a[i] = v
        assert 6 in by_line and "augmented" in by_line[6]     # a[i] += v
        assert 7 in by_line and ".frombytes" in by_line[7]    # mutator
        assert 8 in by_line and "deletion" in by_line[8]      # del a[i]
        assert len(findings) == 4

    def test_rebinding_and_locals_not_flagged(self):
        # ``core.ops = trace.ops.tolist()`` (attribute rebind), a bare
        # local ``ops.append`` and ``trace.args = list(...)`` are all
        # legal — only *in-place* column mutation is the hazard.
        findings = findings_for("RL005")
        assert all(finding.line not in (11, 12, 13, 14)
                   for finding in findings)

    def test_suppression_honoured(self):
        report = run_lint(badtree_project(), rules=["RL005"])
        assert all(finding.line != 15 for finding in report.findings)
        assert report.suppressed == 1

    def test_trace_builder_home_is_exempt(self, tmp_path):
        # trace.py owns the builder: from_bytes fills fresh arrays via
        # exactly the calls RL005 bans elsewhere.
        (tmp_path / "trace.py").write_text(
            "def from_bytes(self, data):\n"
            "    self.ops.frombytes(data)\n")
        (tmp_path / "other.py").write_text(
            "def bad(t, data):\n"
            "    t.ops.frombytes(data)\n")
        report = run_lint(Project(root=tmp_path, package="pkg"),
                          rules=["RL005"])
        assert [f.path for f in report.findings] == ["other.py"]


class TestRL006FastpathInvalidation:
    def test_every_poke_spelling_fires(self):
        findings = findings_for("RL006")
        assert all(f.path == "core/bad_cache_poke.py" for f in findings)
        by_line = {finding.line: finding.message for finding in findings}
        assert 5 in by_line and ".invalidate()" in by_line[5]
        assert 6 in by_line and ".invalidate_all()" in by_line[6]
        assert 7 in by_line and ".delayed" in by_line[7]
        assert 8 in by_line and ".lw_id" in by_line[8]
        assert ".directory" in by_line[8]
        assert len(findings) == 4

    def test_bare_local_mutation_is_legal(self):
        # ``line = engine.l2s[pid].peek(addr); line.delayed = False``:
        # the engine-side call is the audited entry point, and the rule
        # must not chase dataflow into bare locals.
        findings = findings_for("RL006")
        assert all(finding.line not in (12, 13) for finding in findings)

    def test_suppression_honoured(self):
        report = run_lint(badtree_project(), rules=["RL006"])
        assert all(finding.line != 14 for finding in report.findings)
        assert report.suppressed == 1

    def test_coherence_and_mem_are_exempt(self, tmp_path):
        # The engine and the caches themselves own this state — the
        # same spellings are the implementation there, not a poke.
        poke = ("def drop(self, pid, addr):\n"
                "    self.l2s[pid].invalidate(addr)\n")
        (tmp_path / "coherence").mkdir()
        (tmp_path / "coherence" / "protocol.py").write_text(poke)
        (tmp_path / "mem").mkdir()
        (tmp_path / "mem" / "cache.py").write_text(poke)
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "scheme.py").write_text(poke)
        report = run_lint(Project(root=tmp_path, package="pkg"),
                          rules=["RL006"])
        assert [f.path for f in report.findings] == ["core/scheme.py"]


class TestFramework:
    def test_unknown_rule_code_errors(self):
        with pytest.raises(LintError, match="RL999"):
            run_lint(badtree_project(), rules=["RL999"])
        with pytest.raises(LintError, match="known"):
            resolve_rules(["nope"])

    def test_rules_selection_runs_only_selected(self):
        report = run_lint(badtree_project(), rules=["RL001", "RL004"])
        assert report.rules == ("RL001", "RL004")
        assert {finding.code for finding in report.findings} \
            == {"RL001", "RL004"}

    def test_json_round_trips(self):
        report = run_lint(badtree_project())
        payload = json.loads(report.render_json())
        assert payload["ok"] is False
        assert payload["rules"] == ["RL001", "RL002", "RL003", "RL004",
                                    "RL005", "RL006"]
        assert payload["suppressed"] == report.suppressed
        assert len(payload["findings"]) == len(report.findings)
        first = payload["findings"][0]
        assert set(first) == {"path", "line", "code", "message"}

    def test_register_rule_mirrors_registries(self):
        class ToyRule(Rule):
            code = "RX900"
            name = "toy"

        register_rule(ToyRule())
        try:
            assert any(rule.code == "RX900"
                       for rule in registered_rules())
            with pytest.raises(ValueError, match="already registered"):
                register_rule(ToyRule())
            register_rule(ToyRule(), replace=True)
        finally:
            unregister_rule("RX900")
        with pytest.raises(KeyError):
            unregister_rule("RX900")

    def test_rule_without_code_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_rule(Rule())

    def test_parse_error_is_a_lint_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(LintError, match="broken.py"):
            run_lint(Project(root=tmp_path, package="pkg"))


class TestMutatedShippedTree:
    """The CI contract: introducing either hazard into a copy of the
    real tree makes the lint exit non-zero."""

    @pytest.fixture()
    def tree_copy(self, tmp_path):
        root = tmp_path / "repro"
        shutil.copytree(default_project().root, root)
        return root

    def test_lambda_scheduled_in_sim_fails(self, tree_copy):
        machine = tree_copy / "sim" / "machine.py"
        machine.write_text(machine.read_text() + (
            "\n\ndef _bad_arm(machine, when):\n"
            "    machine.schedule_call(when, lambda t: None)\n"))
        report = run_lint(Project(root=tree_copy, package="repro"),
                          rules=["RL001"])
        assert not report.ok
        assert any("lambda" in finding.message
                   for finding in report.findings)

    def test_module_outside_fingerprint_set_fails(self, tree_copy):
        paths = frozenset(
            path.resolve() for path in tree_copy.rglob("*.py")
            if path.name != "faults.py")
        report = run_lint(
            Project(root=tree_copy, package="repro",
                    fingerprint_paths=paths), rules=["RL003"])
        assert not report.ok
        assert any("repro.sim.faults" in finding.message
                   for finding in report.findings)

    def test_deleting_a_reachable_module_fails(self, tree_copy):
        (tree_copy / "sim" / "faults.py").unlink()
        report = run_lint(Project(root=tree_copy, package="repro"),
                          rules=["RL003"])
        assert not report.ok
        assert any("resolves to no module file" in finding.message
                   for finding in report.findings)


class TestLintCli:
    def test_shipped_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "reprolint: clean" in out

    def test_bad_tree_exits_one(self, capsys):
        assert main(["lint", "--root", str(BADTREE)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out

    def test_rules_comma_and_space_tokens(self, capsys):
        assert main(["lint", "--rules", "RL001,RL002", "RL004"]) == 0
        out = capsys.readouterr().out
        assert "[RL001,RL002,RL004]" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "RL999"]) == 2
        assert "RL999" in capsys.readouterr().err

    def test_json_output_parses(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005",
                     "RL006"):
            assert code in out


class TestEnvParsing:
    """Satellite: garbage env values fail with one clear line naming
    the variable, not a bare ValueError deep in engine setup."""

    def test_repro_jobs_garbage_rejected(self, monkeypatch):
        from repro.harness.engine import default_jobs
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ValueError, match="REPRO_JOBS.*'abc'"):
            default_jobs()

    def test_repro_jobs_valid_values(self, monkeypatch):
        from repro.harness.engine import default_jobs
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() == 1          # clamped, as before

    def test_repro_vector_garbage_rejected(self, monkeypatch, tmp_path):
        from repro.harness.engine import ExperimentEngine
        monkeypatch.setenv("REPRO_VECTOR", "fasle")
        with pytest.raises(ValueError, match="REPRO_VECTOR.*'fasle'"):
            ExperimentEngine(jobs=1, cache_dir=tmp_path)

    def test_repro_vector_case_insensitive_off(self, monkeypatch,
                                               tmp_path):
        from repro.harness.engine import ExperimentEngine
        monkeypatch.setenv("REPRO_VECTOR", "OFF")
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        assert engine.vector is False

    def test_repro_no_cache_garbage_rejected(self, monkeypatch,
                                             tmp_path):
        from repro.harness.engine import ExperimentEngine
        monkeypatch.setenv("REPRO_NO_CACHE", "maybe")
        with pytest.raises(ValueError, match="REPRO_NO_CACHE.*'maybe'"):
            ExperimentEngine(jobs=1, cache_dir=tmp_path)

    def test_repro_no_cache_truthy_spellings(self, monkeypatch,
                                             tmp_path):
        from repro.harness.engine import ExperimentEngine
        for text in ("1", "true", "YES"):
            monkeypatch.setenv("REPRO_NO_CACHE", text)
            engine = ExperimentEngine(jobs=1, cache_dir=tmp_path)
            assert engine.use_disk_cache is False


class TestRegistryFingerprintValidation:
    """Satellite: an empty fingerprint is a never-changing invalidation
    signal — the registry must reject it outright."""

    def test_empty_fingerprint_rejected(self):
        from repro.workloads import register_workload

        def build(n_threads, config, intervals, seed):
            raise NotImplementedError

        with pytest.raises(ValueError, match="fingerprint"):
            register_workload("rl_fixture_empty", build, fingerprint="")
        with pytest.raises(ValueError, match="fingerprint"):
            register_workload("rl_fixture_blank", build,
                              fingerprint="   ")
        with pytest.raises(ValueError, match="fingerprint"):
            register_workload("rl_fixture_typed", build,
                              fingerprint=b"v1")

    def test_real_fingerprint_still_accepted(self):
        from repro.workloads import register_workload
        from repro.workloads.registry import unregister_workload

        def build(n_threads, config, intervals, seed):
            raise NotImplementedError

        register_workload("rl_fixture_ok", build, fingerprint="v1")
        unregister_workload("rl_fixture_ok")
