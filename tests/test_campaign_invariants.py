"""Differential campaign invariant suite (tests/invariants.py applied).

Instead of pinning spot values, every run in a scheme x faults x
io-injection x cluster matrix is audited against the reusable
accounting invariants: the four cycle buckets partition runtime x
n_cores exactly, effective availability never exceeds the fault-only
metric, every injected fault is delivered-or-recorded, degradation is
monotone in fault pressure and detection latency, and compiled-vs-tuple
/ cached-vs-fresh twins agree bucket for bucket.

The pinned headline (ISSUE 5 acceptance): under the default fig6_9
campaign configuration, Rebound's *effective* availability — the metric
that also charges the checkpointing work itself — exceeds Global's at
every core count.
"""

import pytest

from repro.core.factory import registered_schemes, resolve_scheme
from repro.harness.engine import ExperimentEngine, RunKey, execute_run
from repro.harness.experiments import (
    CAMPAIGN_APPS,
    CAMPAIGN_VARIANTS,
    _campaign_plans,
    plan_fig6_9,
)
from repro.harness.runner import Runner
from repro.params import MachineConfig, Scheme
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine
from repro.sim.stats import summarize_campaign
from repro.workloads import get_workload
from tests.conftest import make_machine, tiny_config
from tests.invariants import (
    assert_bucket_parity,
    assert_monotone,
    assert_run_invariants,
)
from tests.test_trace_ir import tuple_twin
from repro.trace import COMPUTE, END, STORE

SCALE = 300
INTERVALS = 1.5

#: The configured checkpoint interval at this test scale (cycles).
INTERVAL = MachineConfig.scaled(n_cores=4, scheme=Scheme.NONE,
                                scale=SCALE).checkpoint_interval

ALL_SCHEMES = registered_schemes()
FAULTABLE_SCHEMES = [name for name in ALL_SCHEMES if name != "none"]


@pytest.fixture(scope="module")
def runner() -> Runner:
    """One memoizing runner for the whole module (baselines shared)."""
    return Runner(scale=SCALE, intervals=INTERVALS)


def campaign_plan(seed: int = 11, pressure: float = 0.5) -> FaultPlan:
    """A deterministic multi-fault plan at ``pressure`` faults per
    interval (any core, horizon past the nominal end so undelivered
    faults occur too)."""
    return FaultPlan.from_mttf(seed=seed, mttf=INTERVAL / pressure / 2,
                               horizon=2.0 * INTERVAL, n_cores=4)


# ---------------------------------------------------------------------------
# the differential matrix
# ---------------------------------------------------------------------------

class TestDifferentialMatrix:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_fault_free_every_scheme(self, runner, name):
        stats = runner.run("blackscholes", 4, resolve_scheme(name))
        assert_run_invariants(stats)

    @pytest.mark.parametrize("name", FAULTABLE_SCHEMES)
    def test_campaign_every_scheme(self, runner, name):
        stats = runner.run("ocean", 4, resolve_scheme(name),
                           fault_plan=campaign_plan())
        assert_run_invariants(stats)
        assert stats.injected_faults > 0

    @pytest.mark.parametrize("scheme", [Scheme.GLOBAL, Scheme.REBOUND])
    def test_campaign_with_io_injection(self, runner, scheme):
        stats = runner.run("blackscholes", 4, scheme,
                           io_every=INTERVAL // 2,
                           fault_plan=campaign_plan(seed=12))
        assert_run_invariants(stats)
        assert any(e.kind == "io" for e in stats.checkpoints)

    @pytest.mark.parametrize("cluster", [1, 2, 4])
    def test_campaign_cluster_mode(self, runner, cluster):
        stats = runner.run("ocean", 4, Scheme.REBOUND,
                           fault_plan=campaign_plan(seed=13),
                           cluster=cluster)
        assert_run_invariants(stats)

    def test_fault_free_overhead_fills_the_gap(self, runner):
        """Without faults the partition is useful + overhead only, and
        a checkpointing scheme's effective availability is strictly
        below 1 while the fault-only metric still reads 1."""
        stats = runner.run("ocean", 4, Scheme.GLOBAL)
        buckets = stats.cycle_buckets()
        assert buckets["checkpoint_overhead"] > 0.0
        assert stats.availability() == 1.0
        assert stats.effective_availability() < 1.0


# ---------------------------------------------------------------------------
# representation parity: compiled-vs-tuple, cached-vs-fresh
# ---------------------------------------------------------------------------

class TestBucketParity:
    @pytest.mark.parametrize("name", FAULTABLE_SCHEMES)
    def test_compiled_vs_tuple_campaign(self, name):
        scheme = resolve_scheme(name)
        config = MachineConfig.scaled(n_cores=4, scheme=scheme,
                                      scale=SCALE)
        spec = get_workload("ocean", 4, config, intervals=INTERVALS)
        plan = campaign_plan(seed=14)
        a = Machine(config, spec, faults=plan).run()
        b = Machine(config, tuple_twin(spec), faults=plan).run()
        assert_bucket_parity(a, b, what="compiled/tuple traces")
        assert a == b
        assert_run_invariants(a)

    def test_cached_vs_fresh_campaign(self, tmp_path):
        key = RunKey("blackscholes", 4, Scheme.REBOUND, INTERVALS, 1,
                     SCALE, fault_plan=campaign_plan(seed=15))
        fresh = execute_run(key)
        writer = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_disk_cache=True)
        writer.run(key)
        reader = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_disk_cache=True)
        cached = reader.run(key)
        assert reader.disk_hits == 1
        assert_bucket_parity(fresh, cached, what="cached/fresh results")
        assert_run_invariants(cached)


# ---------------------------------------------------------------------------
# monotone degradation
# ---------------------------------------------------------------------------

class TestMonotoneDegradation:
    #: Prefix-nested fault sets: deterministic rising fault pressure
    #: (the noise-free form of "MTTF shrinks").
    NESTED_FAULTS = [(0.4 * INTERVAL, 0), (0.7 * INTERVAL, 1),
                     (1.0 * INTERVAL, 2), (1.2 * INTERVAL, 0)]

    @pytest.mark.parametrize("scheme", [Scheme.GLOBAL, Scheme.REBOUND])
    def test_more_faults_never_improve_availability(self, runner, scheme):
        effectives, raws = [], []
        for k in range(len(self.NESTED_FAULTS) + 1):
            plan = FaultPlan(tuple(self.NESTED_FAULTS[:k]))
            stats = runner.run("ocean", 4, scheme,
                               fault_plan=plan if k else None)
            assert_run_invariants(stats)
            effectives.append(stats.effective_availability())
            raws.append(stats.availability())
        assert_monotone(effectives, f"{scheme.value} effective "
                        f"availability vs nested fault plans",
                        decreasing=True)
        assert_monotone(raws, f"{scheme.value} availability vs nested "
                        f"fault plans", decreasing=True)

    def test_mttf_shrink_degrades_campaign(self, runner):
        """Averaged over seeds, a 16x harsher fault process can only
        lower the campaign's effective availability."""
        means = []
        for mttf_intervals in (8.0, 0.5):
            runs = [runner.run("blackscholes", 4, Scheme.REBOUND,
                               fault_plan=FaultPlan.from_mttf(
                                   seed=s, mttf=mttf_intervals * INTERVAL,
                                   horizon=1.5 * INTERVAL, n_cores=4))
                    for s in (21, 22, 23)]
            for stats in runs:
                assert_run_invariants(stats)
            means.append(
                summarize_campaign(runs).mean_effective_availability)
        assert_monotone(means, "effective availability vs shrinking MTTF",
                        decreasing=True)

    @pytest.mark.parametrize("scheme", [Scheme.GLOBAL, Scheme.REBOUND])
    def test_larger_L_degrades_recovery(self, runner, scheme):
        """Same fault plan, growing detection latency L: recovery
        latency is non-decreasing and effective availability is
        non-increasing (Sec 3.2, now with the useful-work metric)."""
        plan = FaultPlan.single(1.3 * INTERVAL)
        recoveries, effectives = [], []
        for fraction in (0.02, 0.125, 0.5):
            latency = max(1, int(fraction * INTERVAL))
            stats = runner.run("blackscholes", 4, scheme, fault_plan=plan,
                               overrides={"detection_latency": latency})
            assert_run_invariants(stats)
            assert stats.rollbacks, "fault must be delivered at every L"
            recoveries.append(stats.mean_recovery_latency())
            effectives.append(stats.effective_availability())
        assert_monotone(recoveries,
                        f"{scheme.value} recovery latency vs L")
        assert_monotone(effectives,
                        f"{scheme.value} effective availability vs L",
                        decreasing=True)


# ---------------------------------------------------------------------------
# PR 2 fault edge cases, restated as invariants
# ---------------------------------------------------------------------------

class TestFaultEdgeInvariants:
    def test_undelivered_fault_never_a_zero_cycle_recovery(self):
        machine = make_machine([[(COMPUTE, 1000), (END,)]],
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(50_000.0, 0)])
        stats = machine.run()
        assert stats.undelivered_faults == 1
        assert_run_invariants(stats)   # includes the refusal check

    def test_back_to_back_faults_never_double_count(self):
        traces = [
            [(STORE, 1), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 9500), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(2500.0, 0), (2600.0, 0)])
        stats = machine.run()
        assert len(stats.rollbacks) == 2
        # The partition + per-core bounds in here are exactly the
        # "never double-count work-lost/recovery" guarantees.
        assert_run_invariants(stats)

    def test_mid_drain_fault_accounted(self):
        traces = [
            [(STORE, 1), (COMPUTE, 1990), (STORE, 2), (COMPUTE, 7000),
             (END,)],
            [(STORE, 9), (COMPUTE, 9000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND),
                               faults=[(2100.0, 0)])
        stats = machine.run()
        assert stats.rollbacks
        assert_run_invariants(stats)


# ---------------------------------------------------------------------------
# the pinned fig6_9 acceptance criterion
# ---------------------------------------------------------------------------

class TestFig69EffectiveAvailability:
    def test_default_campaign_partition_and_scheme_gap(self):
        """Default fig6_9 campaign config (sizes, variants, apps and
        seeds) at test scale: the partition holds exactly on every run,
        and Rebound's effective availability strictly exceeds Global's
        at every core count."""
        runner = Runner(scale=SCALE, intervals=INTERVALS,
                        engine=ExperimentEngine(jobs=2,
                                                use_disk_cache=False))
        runner.prefetch(plan_fig6_9(runner))
        sizes = (8, 16)
        effective = {}
        overheads = {}
        for n_cores in sizes:
            plans = _campaign_plans(runner, n_cores, n_seeds=3,
                                    base_seed=100, mttf_intervals=1.0)
            for variant in CAMPAIGN_VARIANTS:
                runs = [runner.run(app, n_cores, variant.scheme,
                                   fault_plan=plan,
                                   cluster=variant.cluster)
                        for app in CAMPAIGN_APPS for plan in plans]
                for stats in runs:
                    assert_run_invariants(stats)
                summary = summarize_campaign(runs)
                effective[(n_cores, variant.label)] = \
                    summary.mean_effective_availability
                overheads[(n_cores, variant.label)] = \
                    summary.mean_checkpoint_overhead
        for n_cores in sizes:
            assert effective[(n_cores, "rebound")] > \
                effective[(n_cores, "global")], \
                f"Rebound effective availability must beat Global at " \
                f"{n_cores} cores: {effective}"
            # The gap comes from where the paper says it does: Global
            # pays burst writebacks machine-wide every interval, Rebound
            # only its interaction sets.
            assert overheads[(n_cores, "rebound")] < \
                overheads[(n_cores, "global")], \
                f"Rebound must spend fewer checkpoint-overhead cycles " \
                f"than Global at {n_cores} cores: {overheads}"
