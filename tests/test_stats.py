"""Tests for statistics assembly and derived metrics."""

from repro.params import MachineConfig, Scheme
from repro.sim.stats import CheckpointEvent, CoreStats, RollbackEvent, SimStats


def make_stats(n_cores=4, scheme=Scheme.REBOUND):
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme)
    stats = SimStats(config=config, scheme=scheme, workload="unit")
    stats.cores = [CoreStats() for _ in range(n_cores)]
    return stats


class TestDerivedMetrics:
    def test_overhead_vs_baseline(self):
        base = make_stats()
        base.runtime = 1000.0
        run = make_stats()
        run.runtime = 1100.0
        assert abs(run.overhead_vs(base) - 0.10) < 1e-12

    def test_overhead_vs_zero_baseline(self):
        base = make_stats()
        run = make_stats()
        assert run.overhead_vs(base) == 0.0

    def test_mean_ichk_counts_interval_and_io_only(self):
        stats = make_stats(n_cores=4)
        stats.checkpoints = [
            CheckpointEvent(0, 0, "interval", 2, 2, 0, 0),
            CheckpointEvent(1, 0, "io", 4, 4, 0, 0),
            CheckpointEvent(2, 0, "global", 4, 4, 0, 0),   # excluded
            CheckpointEvent(3, 0, "barrier", 4, 4, 0, 0),  # excluded
        ]
        assert stats.mean_ichk_fraction() == (2 + 4) / (2 * 4)

    def test_fp_increase_percent(self):
        stats = make_stats(n_cores=4)
        stats.checkpoints = [CheckpointEvent(0, 0, "interval", 3, 2, 0, 0)]
        assert abs(stats.ichk_fp_increase_percent() - 50.0) < 1e-9

    def test_fp_increase_zero_when_no_checkpoints(self):
        stats = make_stats()
        assert stats.ichk_fp_increase_percent() == 0.0

    def test_breakdown_sums_core_categories(self):
        stats = make_stats(n_cores=2)
        stats.cores[0].wb_delay = 10.0
        stats.cores[1].wb_delay = 5.0
        stats.cores[0].ipc_delay = 3.0
        stats.cores[1].depset_stall = 2.0
        breakdown = stats.breakdown()
        assert breakdown["WBDelay"] == 15.0
        assert breakdown["IPCDelay"] == 3.0
        assert breakdown["SyncDelay"] == 2.0

    def test_dep_message_percent(self):
        stats = make_stats()
        stats.base_messages = 200
        stats.dep_messages = 10
        assert abs(stats.dep_message_percent() - 5.0) < 1e-9

    def test_mean_recovery_latency(self):
        stats = make_stats()
        stats.rollbacks = [
            RollbackEvent(0, 0, 1, 100.0, 0, 1, 0),
            RollbackEvent(1, 0, 1, 300.0, 0, 1, 0),
        ]
        assert stats.mean_recovery_latency() == 200.0

    def test_effective_ckpt_interval(self):
        stats = make_stats(n_cores=2)
        stats.cores[0].ckpt_gap_sum = 100.0
        stats.cores[0].ckpt_gap_count = 2
        stats.cores[1].ckpt_gap_count = 0     # never checkpointed
        assert stats.mean_effective_ckpt_interval() == 50.0

    def test_max_rollback_depth(self):
        stats = make_stats()
        assert stats.max_rollback_depth() == 0
        stats.rollbacks = [RollbackEvent(0, 0, 1, 1.0, 0, 3, 0)]
        assert stats.max_rollback_depth() == 3

    def test_summary_renders(self):
        stats = make_stats()
        stats.runtime = 12345.0
        text = stats.summary()
        assert "rebound" in text
        assert "12,345" in text


class TestCoreStats:
    def test_ckpt_overhead_cycles(self):
        core = CoreStats(wb_delay=1, wb_imbalance=2, ckpt_sync=3,
                         ipc_delay=4, depset_stall=5)
        assert core.ckpt_overhead_cycles == 15

    def test_mean_gap_empty(self):
        assert CoreStats().mean_ckpt_gap == 0.0
