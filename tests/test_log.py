"""Tests for the ReVive-style undo log (Section 3.3.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.log import ReviveLog
from repro.params import LOG_ENTRY_BYTES


class TestAppendAndMarkers:
    def test_entries_land_in_address_banks(self):
        log = ReviveLog(n_banks=2)
        log.append(1.0, 0, 10, 111, interval=1)  # bank 0
        log.append(2.0, 0, 11, 222, interval=1)  # bank 1
        assert len(log.banks[0]) == 1
        assert len(log.banks[1]) == 1

    def test_sequence_numbers_increase(self):
        log = ReviveLog()
        a = log.append(1.0, 0, 2, 0, interval=1)
        b = log.append(2.0, 1, 4, 0, interval=1)
        assert b.seq > a.seq

    def test_markers_recorded(self):
        log = ReviveLog()
        log.mark_begin(5.0, 2, 1)
        marker = log.mark_end(9.0, 2, 1)
        assert log.end_marker(2, 1) is marker
        assert log.end_marker(2, 99) is None

    def test_total_bytes(self):
        log = ReviveLog()
        for i in range(7):
            log.append(float(i), 0, i, 0, interval=1)
        assert log.total_bytes == 7 * LOG_ENTRY_BYTES


class TestRollbackSelection:
    def test_entries_after_selects_newer_intervals(self):
        log = ReviveLog()
        log.append(1.0, 0, 10, 100, interval=1)
        log.append(2.0, 0, 12, 200, interval=2)
        log.append(3.0, 1, 14, 300, interval=2)
        undo = log.entries_after({0: 1})
        assert [e.addr for e in undo] == [12]

    def test_entries_newest_first(self):
        log = ReviveLog()
        log.append(1.0, 0, 10, 1, interval=2)
        log.append(2.0, 0, 11, 2, interval=2)
        log.append(3.0, 0, 10, 3, interval=3)
        undo = log.entries_after({0: 1})
        assert [e.old_value for e in undo] == [3, 2, 1]

    def test_target_minus_one_undoes_everything(self):
        log = ReviveLog()
        log.append(1.0, 3, 10, 0, interval=1)
        log.append(2.0, 3, 11, 0, interval=2)
        assert len(log.entries_after({3: 0})) == 2

    def test_untargeted_pids_untouched(self):
        log = ReviveLog()
        log.append(1.0, 0, 10, 0, interval=5)
        log.append(2.0, 1, 11, 0, interval=5)
        undo = log.entries_after({0: 0})
        assert {e.pid for e in undo} == {0}

    def test_discard_after_removes_undone(self):
        log = ReviveLog()
        log.append(1.0, 0, 10, 0, interval=1)
        log.append(2.0, 0, 11, 0, interval=2)
        dropped = log.discard_after({0: 1})
        assert dropped == 1
        assert log.live_entries() == 1

    def test_trim_before_reclaims_old(self):
        log = ReviveLog(n_banks=1)
        for t in range(10):
            log.append(float(t), 0, t, 0, interval=1)
        trimmed = log.trim_before(5.0)
        assert trimmed == 5
        assert all(e.time >= 5.0 for e in log.banks[0])

    @given(st.lists(
        st.tuples(st.integers(0, 3),        # pid
                  st.integers(0, 20),       # addr
                  st.integers(1, 5)),       # interval
        min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_select_discard_partition(self, records):
        """entries_after + the survivors partition the log exactly."""
        log = ReviveLog()
        for i, (pid, addr, interval) in enumerate(records):
            log.append(float(i), pid, addr, i, interval)
        targets = {0: 2, 1: 3}
        selected = {e.seq for e in log.entries_after(targets)}
        log.discard_after(targets)
        remaining = {e.seq for bank in log.banks for e in bank}
        assert selected.isdisjoint(remaining)
        assert len(selected) + len(remaining) == len(records)


class TestStats:
    def test_max_interval_bytes_uses_bins(self):
        log = ReviveLog(bin_cycles=100)
        for t in (1, 2, 3):
            log.append(float(t), 0, t, 0, interval=1)
        log.append(150.0, 0, 9, 0, interval=1)
        assert log.max_interval_bytes() == 3 * LOG_ENTRY_BYTES

    def test_entries_of(self):
        log = ReviveLog()
        log.append(1.0, 0, 1, 0, interval=1)
        log.append(1.0, 1, 2, 0, interval=1)
        log.append(1.0, 1, 3, 0, interval=1)
        assert log.entries_of([1]) == 2
        assert log.entries_of([0, 1]) == 3
