"""Tests for trace records, address allocation and configuration."""

import pytest

from repro.interconnect import Interconnect, MessageClass
from repro.params import CacheConfig, MachineConfig, Scheme
from repro.trace import (
    AddressSpace,
    BARRIER,
    COMPUTE,
    LOAD,
    LOCK,
    STORE,
    UNLOCK,
    trace_instruction_count,
)


class TestAddressSpace:
    def test_regions_disjoint(self):
        space = AddressSpace()
        a = space.region(10)
        b = space.region(5)
        assert set(a).isdisjoint(set(b))
        assert len(a) == 10 and len(b) == 5

    def test_sync_lines_never_collide_with_data(self):
        space = AddressSpace()
        data = space.region(1000)
        sync = space.sync_line()
        assert sync not in data
        assert sync >= AddressSpace.SYNC_BASE

    def test_sync_lines_unique(self):
        space = AddressSpace()
        lines = {space.sync_line() for _ in range(100)}
        assert len(lines) == 100


class TestTraceCounting:
    def test_compute_counts_bulk(self):
        assert trace_instruction_count([(COMPUTE, 500)]) == 500

    def test_memory_and_sync_ops_count_one(self):
        trace = [(LOAD, 1), (STORE, 2), (LOCK, 0), (UNLOCK, 0)]
        assert trace_instruction_count(trace) == 4

    def test_barrier_records_do_not_count(self):
        # Barrier work is added by the simulator's RMW expansion.
        assert trace_instruction_count([(BARRIER, 0)]) == 0


class TestScheme:
    def test_flags(self):
        assert Scheme.REBOUND.is_local
        assert not Scheme.GLOBAL.is_local
        assert Scheme.REBOUND.delayed_writebacks
        assert not Scheme.REBOUND_NODWB.delayed_writebacks
        assert Scheme.GLOBAL_DWB.delayed_writebacks
        assert Scheme.REBOUND_BARR.barrier_optimization
        assert Scheme.REBOUND_NODWB_BARR.barrier_optimization
        assert not Scheme.REBOUND.barrier_optimization
        assert Scheme.REBOUND.tracks_dependences
        assert not Scheme.NONE.tracks_dependences


class TestMachineConfig:
    def test_paper_defaults_match_fig4_3a(self):
        config = MachineConfig.paper()
        assert config.n_cores == 64
        assert config.l1.size_bytes == 16 * 1024 and config.l1.assoc == 4
        assert config.l2.size_bytes == 256 * 1024 and config.l2.assoc == 8
        assert config.l1.line_bytes == 32
        assert config.checkpoint_interval == 4_000_000
        assert config.n_dep_sets == 4
        assert config.wsig_bits == 1024
        assert config.n_mem_channels == 2
        assert config.remote_l2_cycles == 60
        assert config.memory_cycles == 200

    def test_scaled_preserves_ratio(self):
        paper = MachineConfig.paper()
        scaled = MachineConfig.scaled(scale=40)
        paper_ratio = paper.l2.n_lines / paper.checkpoint_interval
        scaled_ratio = scaled.l2.n_lines / scaled.checkpoint_interval
        assert scaled_ratio == pytest.approx(paper_ratio, rel=0.35)

    def test_with_scheme_copies(self):
        config = MachineConfig.scaled()
        other = config.with_scheme(Scheme.GLOBAL)
        assert other.scheme is Scheme.GLOBAL
        assert config.scheme is Scheme.REBOUND
        assert other.l2 == config.l2

    def test_cache_geometry(self):
        cache = CacheConfig(1024, 4, 32)
        assert cache.n_lines == 32
        assert cache.n_sets == 8


class TestInterconnect:
    def test_message_classes_counted_separately(self):
        net = Interconnect(MachineConfig.scaled(n_cores=4))
        net.send(MessageClass.BASE, 10)
        net.send(MessageClass.DEP, 2)
        net.send(MessageClass.PROTOCOL, 5)
        assert net.base_messages == 10
        assert net.dep_messages == 2
        assert net.protocol_messages == 5
        assert net.total_messages == 17
        assert net.dep_overhead_percent() == 20.0

    def test_dep_overhead_zero_without_traffic(self):
        net = Interconnect(MachineConfig.scaled(n_cores=4))
        assert net.dep_overhead_percent() == 0.0

    def test_latency_constants(self):
        config = MachineConfig.scaled(n_cores=4)
        net = Interconnect(config)
        assert net.remote_round_trip == config.remote_l2_cycles
        assert net.memory_round_trip == config.memory_cycles
        assert net.protocol_round_trip(3) == 3 * config.msg_cycles
