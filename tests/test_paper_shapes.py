"""Small-scale regression tests for the paper's qualitative results.

The benchmark suite checks these shapes at full scale; these tests pin
them at a fast 8–16 core scale so a behavioural regression is caught in
seconds by ``pytest tests/`` rather than minutes by the benchmarks.
"""

import pytest

from repro import MachineConfig, Scheme, get_workload, run_workload
from repro.workloads import inject_output_io


@pytest.fixture(scope="module")
def runs():
    """One shared set of simulations across this module's tests."""
    cache = {}

    def run(app, scheme, n_cores=16, io=False):
        key = (app, scheme, n_cores, io)
        if key not in cache:
            config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                          scale=80)
            workload = get_workload(app, n_cores, config, intervals=3)
            if io:
                workload = inject_output_io(
                    workload, pid=0,
                    every_instructions=config.checkpoint_interval // 2)
            cache[key] = run_workload(config, workload)
        return cache[key]

    return run


class TestFigure63Shape:
    def test_rebound_beats_global_on_local_app(self, runs):
        base = runs("blackscholes", Scheme.NONE)
        glob = runs("blackscholes", Scheme.GLOBAL)
        rebound = runs("blackscholes", Scheme.REBOUND)
        assert rebound.overhead_vs(base) < glob.overhead_vs(base)

    def test_delayed_writebacks_beat_stalling(self, runs):
        base = runs("blackscholes", Scheme.NONE)
        nodwb = runs("blackscholes", Scheme.REBOUND_NODWB)
        dwb = runs("blackscholes", Scheme.REBOUND)
        assert dwb.overhead_vs(base) < nodwb.overhead_vs(base)

    def test_overheads_are_small_fractions(self, runs):
        base = runs("blackscholes", Scheme.NONE)
        for scheme in (Scheme.GLOBAL, Scheme.REBOUND):
            overhead = runs("blackscholes", scheme).overhead_vs(base)
            assert -0.01 < overhead < 0.5


class TestFigure61Shape:
    def test_local_app_has_small_ichk(self, runs):
        stats = runs("blackscholes", Scheme.REBOUND)
        assert stats.mean_ichk_fraction() <= 0.5

    def test_barrier_app_has_global_ichk(self, runs):
        stats = runs("ocean", Scheme.REBOUND)
        assert stats.mean_ichk_fraction() > 0.85

    def test_lock_app_has_global_ichk(self, runs):
        stats = runs("raytrace", Scheme.REBOUND)
        assert stats.mean_ichk_fraction() > 0.85


class TestFigure65Shape:
    def test_global_is_writeback_dominated(self, runs):
        breakdown = runs("blackscholes", Scheme.GLOBAL).breakdown()
        wb = breakdown["WBDelay"] + breakdown["WBImbalanceDelay"]
        assert wb > breakdown["IPCDelay"]

    def test_rebound_is_ipc_dominated(self, runs):
        breakdown = runs("blackscholes", Scheme.REBOUND).breakdown()
        wb = breakdown["WBDelay"] + breakdown["WBImbalanceDelay"]
        assert breakdown["IPCDelay"] > wb


class TestFigure67Shape:
    def test_io_hurts_global_more_than_rebound(self, runs):
        glob = runs("apache", Scheme.GLOBAL)
        glob_io = runs("apache", Scheme.GLOBAL, io=True)
        reb = runs("apache", Scheme.REBOUND)
        reb_io = runs("apache", Scheme.REBOUND, io=True)
        glob_ratio = (glob_io.mean_effective_ckpt_interval() /
                      glob.mean_effective_ckpt_interval())
        reb_ratio = (reb_io.mean_effective_ckpt_interval() /
                     reb.mean_effective_ckpt_interval())
        assert glob_ratio < reb_ratio
        assert glob_ratio < 0.8


class TestTable61Shape:
    def test_rebound_logs_data_and_extra_messages(self, runs):
        stats = runs("apache", Scheme.REBOUND)
        assert stats.log_bytes > 0
        assert stats.dep_messages > 0
        assert stats.dep_message_percent() < 50.0
