"""Tests for the set-associative cache models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import (
    Cache,
    EXCLUSIVE,
    L1Cache,
    MODIFIED,
    SHARED,
)
from repro.params import CacheConfig


def small_cache(size=1024, assoc=4, line=32) -> Cache:
    return Cache(CacheConfig(size, assoc, line))


class TestCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(5) is None
        cache.insert(5, SHARED, 0xAB)
        line = cache.lookup(5)
        assert line is not None
        assert line.value == 0xAB
        assert cache.n_hits == 1
        assert cache.n_misses == 1

    def test_insert_returns_lru_victim(self):
        cache = Cache(CacheConfig(4 * 32, 4, 32))  # one set, 4 ways
        for addr in range(0, 16, 4):  # same set (n_sets == 1)
            cache.insert(addr, SHARED, addr)
        # Touch the oldest so the second-oldest becomes the victim.
        cache.lookup(0)
        _, victim = cache.insert(100, SHARED, 0)
        assert victim is not None
        assert victim.addr == 4

    def test_insert_same_line_updates_in_place(self):
        cache = small_cache()
        cache.insert(7, SHARED, 1)
        line, victim = cache.insert(7, MODIFIED, 2)
        assert victim is None
        assert line.value == 2
        assert line.state == MODIFIED

    def test_invalidate_removes_line(self):
        cache = small_cache()
        cache.insert(3, EXCLUSIVE, 9)
        removed = cache.invalidate(3)
        assert removed is not None and removed.addr == 3
        assert cache.peek(3) is None
        assert cache.invalidate(3) is None

    def test_invalidate_all_counts(self):
        cache = small_cache()
        for addr in range(10):
            cache.insert(addr, SHARED, 0)
        assert cache.invalidate_all() == 10
        assert len(cache) == 0

    def test_dirty_lines_filtered(self):
        cache = small_cache()
        cache.insert(1, MODIFIED, 0)
        cache.insert(2, SHARED, 0)
        cache.insert(3, MODIFIED, 0)
        assert sorted(ln.addr for ln in cache.dirty_lines()) == [1, 3]

    def test_delayed_lines_filtered(self):
        cache = small_cache()
        a, _ = cache.insert(1, MODIFIED, 0)
        cache.insert(2, MODIFIED, 0)
        a.delayed = True
        assert [ln.addr for ln in cache.delayed_lines()] == [1]

    def test_modified_line_starts_dirty(self):
        cache = small_cache()
        line, _ = cache.insert(4, MODIFIED, 0)
        assert line.dirty
        clean, _ = cache.insert(5, SHARED, 0)
        assert not clean.dirty

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, addrs):
        cache = Cache(CacheConfig(8 * 32, 2, 32))  # 8 lines, 2-way
        for addr in addrs:
            cache.insert(addr, SHARED, 0)
            assert len(cache) <= 8
            for cset in cache._sets:
                assert len(cset) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_resident_iff_inserted_not_evicted(self, addrs):
        cache = Cache(CacheConfig(16 * 32, 4, 32))
        alive = set()
        for addr in addrs:
            _, victim = cache.insert(addr, SHARED, 0)
            alive.add(addr)
            if victim is not None:
                alive.discard(victim.addr)
            assert cache.resident(addr)
        assert {ln.addr for ln in cache.lines()} == alive


class TestL1:
    def test_fill_then_contains(self):
        l1 = L1Cache(CacheConfig(256, 2, 32))
        assert not l1.contains(9)
        l1.fill(9)
        assert l1.contains(9)

    def test_lru_eviction(self):
        l1 = L1Cache(CacheConfig(2 * 32, 2, 32))  # one set, 2 ways
        l1.fill(0)
        l1.fill(1)
        l1.contains(0)      # touch 0; 1 becomes LRU
        l1.fill(2)          # evicts 1
        assert l1.contains(0)
        assert not l1.contains(1)

    def test_invalidate(self):
        l1 = L1Cache(CacheConfig(256, 2, 32))
        l1.fill(4)
        l1.invalidate(4)
        assert not l1.contains(4)

    def test_invalidate_all(self):
        l1 = L1Cache(CacheConfig(256, 2, 32))
        for addr in range(5):
            l1.fill(addr)
        assert l1.invalidate_all() == 5
        assert len(l1) == 0
