"""Tests for the machine's event loop and trace execution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import Scheme
from repro.trace import COMPUTE, END, LOAD, OUTPUT, STORE
from tests.conftest import make_machine, make_spec, tiny_config


class TestBasicExecution:
    def test_compute_advances_time_and_instructions(self):
        machine = make_machine([[(COMPUTE, 100), (END,)]],
                               config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        assert stats.runtime == 100
        assert machine.cores[0].instr_count == 100

    def test_memory_ops_cost_latency(self):
        machine = make_machine([[(LOAD, 5), (END,)]],
                               config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        assert stats.runtime >= machine.config.memory_cycles

    def test_empty_trace_completes(self):
        machine = make_machine([[], [(COMPUTE, 5), (END,)]],
                               config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        assert stats.runtime == 5

    def test_trace_without_end_terminates(self):
        machine = make_machine([[(COMPUTE, 7)]],
                               config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        assert stats.runtime == 7

    def test_store_then_load_same_core(self):
        machine = make_machine(
            [[(STORE, 9), (LOAD, 9), (END,)]],
            config=tiny_config(2, Scheme.NONE, check_coherence=True))
        machine.run()  # golden model validates the load

    def test_max_cycles_guard(self):
        machine = make_machine([[(COMPUTE, 10_000), (END,)]],
                               config=tiny_config(2, Scheme.NONE))
        with pytest.raises(RuntimeError, match="exceeded"):
            machine.run(max_cycles=100)

    def test_unknown_op_rejected(self):
        # Rejected at trace-compile time (machine construction), before
        # any cycle is simulated.
        with pytest.raises(ValueError, match="unknown trace op"):
            make_machine([[(99, 0)]], config=tiny_config(2, Scheme.NONE))

    def test_max_cycles_guard_covers_post_run_drain(self):
        # The application finishes almost immediately, then a
        # self-rescheduling background callback chain keeps the heap
        # alive: the post-run drain loop must enforce the cycle limit
        # too instead of spinning past it silently.
        machine = make_machine([[(COMPUTE, 10), (END,)]],
                               config=tiny_config(2, Scheme.NONE))

        def chain(now):
            if now < 1_000_000:
                machine.schedule(now + 100.0, chain)

        machine.schedule(50.0, chain)
        with pytest.raises(RuntimeError, match="exceeded"):
            machine.run(max_cycles=5_000)

    def test_too_many_threads_rejected(self):
        spec = make_spec([[(END,)]] * 3)
        from repro.sim.machine import Machine
        with pytest.raises(ValueError, match="cores"):
            Machine(tiny_config(2, Scheme.NONE), spec)


class TestInterleaving:
    def test_cores_advance_by_local_time(self):
        machine = make_machine(
            [[(COMPUTE, 1000), (END,)], [(COMPUTE, 10), (END,)]],
            config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        assert stats.cores[0].end_time == 1000
        assert stats.cores[1].end_time == 10

    def test_producer_consumer_values_flow(self):
        machine = make_machine(
            [
                [(STORE, 7), (COMPUTE, 50), (END,)],
                [(COMPUTE, 500), (LOAD, 7), (END,)],
            ],
            config=tiny_config(2, Scheme.NONE, check_coherence=True))
        machine.run()
        # Consumer's cache holds the producer's value.
        assert machine.engine.l2s[1].peek(7).value == \
            machine.engine.golden[7]

    @given(st.lists(st.tuples(st.integers(0, 2),  # which op
                              st.integers(0, 15)),  # address
                    min_size=1, max_size=60),
           st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_golden_coherence_random_traces(self, ops, n_threads):
        """Every load observes the globally last store (serialization)."""
        traces = [[] for _ in range(n_threads)]
        for i, (kind, addr) in enumerate(ops):
            thread = i % n_threads
            if kind == 0:
                traces[thread].append((COMPUTE, 1 + addr))
            elif kind == 1:
                traces[thread].append((LOAD, addr))
            else:
                traces[thread].append((STORE, addr))
        for trace in traces:
            trace.append((END,))
        machine = make_machine(
            traces, config=tiny_config(n_threads, Scheme.NONE,
                                       check_coherence=True))
        machine.run()  # raises on any coherence violation


class TestOutputOp:
    def test_output_forces_checkpoint_in_rebound(self):
        machine = make_machine(
            [[(STORE, 1), (OUTPUT, 64), (END,)]],
            config=tiny_config(2, Scheme.REBOUND))
        stats = machine.run()
        assert any(e.kind == "io" for e in stats.checkpoints)

    def test_output_forces_global_checkpoint(self):
        machine = make_machine(
            [[(STORE, 1), (OUTPUT, 64), (END,)], [(COMPUTE, 5000), (END,)]],
            config=tiny_config(2, Scheme.GLOBAL))
        stats = machine.run()
        io_events = [e for e in stats.checkpoints if e.kind == "io"]
        assert len(io_events) == 1
        assert io_events[0].size == 2     # global: everyone participates

    def test_output_noop_without_checkpointing(self):
        machine = make_machine(
            [[(OUTPUT, 64), (END,)]],
            config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        assert stats.checkpoints == []
        assert stats.runtime >= machine.config.io_cycles


class TestStatsAssembly:
    def test_messages_and_log_reported(self):
        machine = make_machine(
            [
                [(STORE, 1), (COMPUTE, 3000), (STORE, 2), (END,)],
                [(COMPUTE, 100), (LOAD, 1), (COMPUTE, 3000), (END,)],
            ],
            config=tiny_config(2, Scheme.REBOUND))
        stats = machine.run()
        assert stats.base_messages > 0
        assert stats.total_instructions > 6000
        assert len(stats.cores) == 2

    def test_checkpoint_events_have_duration(self):
        machine = make_machine(
            [[(STORE, 1), (COMPUTE, 5000), (END,)]],
            config=tiny_config(2, Scheme.REBOUND))
        stats = machine.run()
        assert stats.checkpoints, "interval expiry must checkpoint"
        for event in stats.checkpoints:
            assert event.duration >= 0
            assert 1 <= event.size <= 2
