"""Tests for the scenario layer: config overrides, sweep specs, and
cache-key stability.

Three guarantees are pinned here:

* ``Overrides`` is a frozen, hashable, canonically-ordered mapping that
  validates field names at construction and applies cleanly (including
  dotted nested fields) on top of ``MachineConfig.scaled``.
* The disk-cache file name of an override-free ``RunKey`` is *golden* —
  byte-identical to the pre-scenario layout — and the overridden layout
  is golden too, so any future key-layout change invalidates the cache
  intentionally, not accidentally.
* The ``SweepSpec``-based planners enumerate exactly the RunKey sets the
  hand-written loop bodies they replaced produced.
"""

import math
import pickle

import pytest

import repro.harness.engine as engine_mod
from repro.harness.engine import ExperimentEngine, RunKey, execute_run
from repro.harness.experiments import (
    BARRIER_SCHEMES,
    BREAKDOWN_SCHEMES,
    CAMPAIGN_VARIANTS,
    OVERHEAD_SCHEMES,
    POWER_SCHEMES,
    SCALABILITY_SCHEMES,
    _campaign_plans,
    _io_every,
    _recovery_fault_at,
    plan_fig6_3,
    plan_fig6_4,
    plan_fig6_5,
    plan_fig6_6,
    plan_fig6_7,
    plan_fig6_8,
    plan_fig6_9,
    plan_fig_l_sensitivity,
)
from repro.harness.runner import Runner
from repro.harness.scenario import (
    EMPTY_OVERRIDES,
    Overrides,
    SweepSpec,
    coerce_value,
    parse_axis,
)
from repro.params import Scheme
from repro.sim.machine import Machine
from repro.workloads import SPLASH2


class TestOverrides:
    def test_canonical_order_and_equality(self):
        a = Overrides({"memory_cycles": 80, "detection_latency": 9})
        b = Overrides({"detection_latency": 9, "memory_cycles": 80})
        assert a == b
        assert hash(a) == hash(b)
        assert repr(a) == repr(b)
        assert list(a) == ["detection_latency", "memory_cycles"]

    def test_kwargs_and_mapping_merge(self):
        o = Overrides({"memory_cycles": 80}, detection_latency=9)
        assert o["memory_cycles"] == 80
        assert o["detection_latency"] == 9
        assert len(o) == 2

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config field"):
            Overrides({"not_a_field": 1})

    def test_reserved_fields_rejected(self):
        for name, owner in (("n_cores", "RunKey.n_cores"),
                            ("scheme", "RunKey.scheme"),
                            ("dep_cluster_size", "RunKey.cluster")):
            with pytest.raises(ValueError, match=owner):
                Overrides({name: 1})

    def test_nested_field_validation(self):
        Overrides({"l1.size_bytes": 2048})           # fine
        with pytest.raises(ValueError, match="unknown field"):
            Overrides({"l1.bogus": 1})
        with pytest.raises(ValueError, match="not a nested config"):
            Overrides({"memory_cycles.x": 1})

    def test_wrongly_typed_value_rejected(self):
        # Fails at plan time, not as an arithmetic TypeError deep
        # inside a pool worker.
        with pytest.raises(ValueError, match="expected int, got list"):
            Overrides({"detection_latency": [1, 2]})
        with pytest.raises(ValueError, match="expected int, got str"):
            Overrides({"detection_latency": "10000"})
        with pytest.raises(ValueError, match="expected CacheConfig"):
            Overrides({"l1": "512"})
        with pytest.raises(ValueError, match="expected bool"):
            Overrides({"check_coherence": 1})
        # float fields accept ints; int fields reject bools.
        Overrides({"barrier_interest_fraction": 1})
        with pytest.raises(ValueError, match="expected int, got bool"):
            Overrides({"detection_latency": True})

    def test_immutable(self):
        o = Overrides(detection_latency=9)
        with pytest.raises(AttributeError):
            o._items = ()
        with pytest.raises(TypeError):
            o["detection_latency"] = 10

    def test_pickle_round_trip(self):
        o = Overrides({"l1.size_bytes": 2048, "memory_cycles": 80})
        clone = pickle.loads(pickle.dumps(o))
        assert clone == o
        assert hash(clone) == hash(o)

    def test_apply_flat_and_nested(self):
        from repro.params import MachineConfig
        config = MachineConfig.scaled(n_cores=4, scale=100)
        o = Overrides({"detection_latency": 9999, "l1.size_bytes": 2048})
        out = o.apply(config)
        assert out.detection_latency == 9999
        assert out.l1.size_bytes == 2048
        assert out.l1.assoc == config.l1.assoc        # untouched sibling
        assert out.memory_cycles == config.memory_cycles
        assert config.detection_latency != 9999       # original frozen

    def test_apply_empty_is_identity(self):
        from repro.params import MachineConfig
        config = MachineConfig.scaled(n_cores=4)
        assert EMPTY_OVERRIDES.apply(config) is config


class TestAxisParsing:
    def test_parse_axis_types(self):
        assert parse_axis("detection_latency=2000,10000") == \
            ("detection_latency", (2000, 10000))
        name, values = parse_axis("barrier_interest_fraction=0.5,0.9")
        assert values == (0.5, 0.9)
        assert parse_axis("track_values=true,false") == \
            ("track_values", (True, False))

    def test_parse_axis_rejects_malformed(self):
        with pytest.raises(ValueError, match="name=value"):
            parse_axis("detection_latency")
        with pytest.raises(ValueError, match="unknown config field"):
            parse_axis("bogus=1")

    def test_coerce_nested(self):
        assert coerce_value("l1.size_bytes", "2048") == 2048
        with pytest.raises(ValueError, match="not a boolean"):
            coerce_value("check_coherence", "maybe")

    def test_non_scalar_field_rejected_at_parse_time(self):
        # Sweeping l1 itself (a nested CacheConfig) from a CLI token
        # must fail at plan time, not as a type crash in a pool worker.
        with pytest.raises(ValueError, match="scalar subfields"):
            parse_axis("l1=512")

    def test_runkey_dimension_axes(self):
        assert parse_axis("intervals=1.5,3.0") == \
            ("intervals", (1.5, 3.0))
        assert parse_axis("io_every=500,1000") == \
            ("io_every", (500, 1000))
        assert parse_axis("cluster=1,4") == ("cluster", (1, 4))
        assert parse_axis("seed=1,2") == ("seed", (1, 2))
        for name, flag in (("app", "--apps"), ("n_cores", "--cores"),
                           ("scheme", "--schemes")):
            with pytest.raises(ValueError, match=flag):
                parse_axis(f"{name}=x")


class TestRunKeyOverrides:
    def test_default_is_empty_overrides(self):
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300)
        assert key.overrides == EMPTY_OVERRIDES
        assert not key.overrides

    def test_plain_mapping_normalized(self):
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                     overrides={"detection_latency": 10_000})
        assert isinstance(key.overrides, Overrides)
        same = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                      overrides=Overrides(detection_latency=10_000))
        assert key == same
        assert hash(key) == hash(same)

    def test_invalid_override_fails_at_plan_time(self):
        with pytest.raises(ValueError, match="unknown config field"):
            RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                   overrides={"bogus": 1})

    def test_execute_run_applies_overrides(self):
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                     overrides={"detection_latency": 7777,
                                "l1.size_bytes": 1024})
        stats = execute_run(key)
        assert stats.config.detection_latency == 7777
        assert stats.config.l1.size_bytes == 1024

    def test_override_changes_cache_identity(self):
        base = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300)
        over = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                      overrides={"detection_latency": 10_000})
        eng = ExperimentEngine(jobs=1, use_disk_cache=False)
        assert eng._cache_path(base) != eng._cache_path(over)

    def test_pickle_round_trip(self):
        key = RunKey("ocean", 8, Scheme.GLOBAL, 3.0, 1, 40,
                     overrides={"memory_cycles": 80})
        assert pickle.loads(pickle.dumps(key)) == key


class TestCacheKeyGolden:
    """Golden cache file names: a future change to the RunKey layout must
    fail here, so the on-disk cache is invalidated intentionally."""

    def test_override_free_path_is_golden(self, tmp_path, monkeypatch):
        monkeypatch.setattr(engine_mod, "_FINGERPRINT",
                            "golden-fingerprint")
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300)
        assert eng._cache_path(key).name == (
            "9b1bd6eed5c044979ddb4bb90f73001d"
            "b188c3b9f98e425598dead09a2afcad5.pkl")

    def test_overridden_path_is_golden(self, tmp_path, monkeypatch):
        monkeypatch.setattr(engine_mod, "_FINGERPRINT",
                            "golden-fingerprint")
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                     overrides={"detection_latency": 10_000})
        assert eng._cache_path(key).name == (
            "3a7d7dfd01d7f37ae3e55d2398072f57"
            "48ef0bba0babc571705862e90682c6a4.pkl")


class TestEngineWithOverrides:
    def test_disk_cache_replay(self, tmp_path, monkeypatch):
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                     overrides={"detection_latency": 10_000})
        writer = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        first = writer.run(key)
        monkeypatch.setattr(engine_mod, "execute_run",
                            lambda k: pytest.fail(f"recomputed {k}"))
        reader = ExperimentEngine(jobs=1, cache_dir=tmp_path)
        assert reader.run(key) == first
        assert reader.disk_hits == 1

    def test_parallel_matches_serial(self):
        keys = [RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                       overrides={"detection_latency": latency})
                for latency in (2_000, 10_000)]
        serial = ExperimentEngine(jobs=1, use_disk_cache=False)
        parallel = ExperimentEngine(jobs=2, use_disk_cache=False)
        expect = serial.run_many(keys)
        got = parallel.run_many(keys)
        for key in keys:
            assert got[key] == expect[key], key


class TestSweepSpec:
    def test_grid_requires_core_axes(self):
        with pytest.raises(ValueError, match="'app' axis"):
            SweepSpec.grid(n_cores=4, scheme=Scheme.REBOUND)

    def test_unknown_axis_fails_at_plan_time(self):
        with pytest.raises(ValueError, match="unknown config field"):
            SweepSpec.grid(app="x", n_cores=4, scheme=Scheme.REBOUND,
                           bogus=[1, 2])

    def test_product_order_first_axis_outermost(self):
        runner = Runner(scale=300, intervals=1.5)
        spec = SweepSpec.grid(app=["a", "b"], n_cores=4,
                              scheme=[Scheme.NONE, Scheme.REBOUND])
        got = [(k.app, k.scheme) for k in spec.keys(runner)]
        assert got == [("a", Scheme.NONE), ("a", Scheme.REBOUND),
                       ("b", Scheme.NONE), ("b", Scheme.REBOUND)]

    def test_union_and_sum(self):
        runner = Runner(scale=300, intervals=1.5)
        one = SweepSpec.grid(app="a", n_cores=4, scheme=Scheme.NONE)
        two = SweepSpec.grid(app="b", n_cores=8, scheme=Scheme.REBOUND)
        spec = sum([one, two], SweepSpec())
        assert spec.n_points == 2
        keys = spec.keys(runner)
        assert [k.app for k in keys] == ["a", "b"]
        assert (0 + one).keys(runner) == one.keys(runner)

    def test_override_axis_lands_in_runkey(self):
        runner = Runner(scale=300, intervals=1.5)
        spec = SweepSpec.grid(app="a", n_cores=4, scheme=Scheme.REBOUND,
                              detection_latency=[2_000, 10_000])
        keys = spec.keys(runner)
        assert [k.overrides["detection_latency"] for k in keys] == \
            [2_000, 10_000]

    def test_seed_axis_sweeps_workload_seed(self):
        runner = Runner(scale=300, intervals=1.5, seed=1)
        spec = SweepSpec.grid(app="a", n_cores=4, scheme=Scheme.REBOUND,
                              seed=[1, 2, 3])
        keys = spec.keys(runner)
        assert [k.seed for k in keys] == [1, 2, 3]
        assert all(not k.overrides for k in keys)

    def test_keyed_points_expose_axis_values(self):
        runner = Runner(scale=300, intervals=1.5)
        spec = SweepSpec.grid(app="a", n_cores=4, scheme=Scheme.REBOUND,
                              memory_cycles=[100, 200])
        points = spec.keyed_points(runner)
        assert [p["memory_cycles"] for _, p in points] == [100, 200]
        assert spec.axis_names() == ["app", "n_cores", "scheme",
                                     "memory_cycles"]


class TestPlannerEquivalence:
    """The SweepSpec planners must produce the same RunKey sets (same
    cache paths) as the hand-written loop bodies they replaced."""

    @pytest.fixture()
    def runner(self):
        return Runner(scale=100, intervals=2.0)

    def test_fig6_3(self, runner):
        apps = SPLASH2[:3]
        expect = [runner.key(app, 8, scheme) for app in apps
                  for scheme in (*OVERHEAD_SCHEMES, Scheme.NONE)]
        assert plan_fig6_3(runner, apps, 8) == expect

    def test_fig6_4(self, runner):
        apps = ["ocean", "barnes"]
        expect = [runner.key(app, 8, scheme) for app in apps
                  for scheme in (*BARRIER_SCHEMES, Scheme.NONE)]
        assert plan_fig6_4(runner, apps, 8) == expect

    def test_fig6_5(self, runner):
        apps = ["ocean", "blackscholes", "barnes"]
        expect = []
        for app in apps:
            n_cores = 8 if app in SPLASH2 else 4
            expect.extend(runner.key(app, n_cores, scheme)
                          for scheme in BREAKDOWN_SCHEMES)
        assert plan_fig6_5(runner, apps, 8, 4) == expect

    def test_fig6_6(self, runner):
        apps = SPLASH2[:3]
        sizes = (4, 8)
        expect = []
        for n_cores in sizes:
            fault_at = _recovery_fault_at(runner, n_cores)
            for scheme in SCALABILITY_SCHEMES:
                for app in apps:
                    expect.append(runner.key(app, n_cores, scheme))
                    expect.append(runner.key(app, n_cores, Scheme.NONE))
                    expect.append(runner.key(app, n_cores, scheme,
                                             fault_at=fault_at))
        assert set(plan_fig6_6(runner, apps, sizes)) == set(expect)

    def test_fig6_7(self, runner):
        apps = ["blackscholes"]
        io_every = _io_every(runner, 8)
        expect = []
        for app in apps:
            for scheme in (Scheme.GLOBAL, Scheme.REBOUND):
                expect.append(runner.key(app, 8, scheme,
                                         io_every=io_every))
                expect.append(runner.key(app, 8, scheme))
        assert plan_fig6_7(runner, apps, 8) == expect

    def test_fig6_8(self, runner):
        apps = SPLASH2[:3]
        expect = [runner.key(app, 8, scheme)
                  for scheme in POWER_SCHEMES for app in apps]
        assert plan_fig6_8(runner, apps, 8) == expect

    def test_fig6_9(self, runner):
        apps = ["blackscholes"]
        sizes = (4, 8)
        expect = []
        for n_cores in sizes:
            plans = _campaign_plans(runner, n_cores, 2, 100, 1.0)
            for variant in CAMPAIGN_VARIANTS:
                for app in apps:
                    expect.extend(
                        runner.key(app, n_cores, variant.scheme,
                                   fault_plan=plan,
                                   cluster=variant.cluster)
                        for plan in plans)
        assert plan_fig6_9(runner, apps, sizes, n_seeds=2) == expect

    def test_fig_l_sensitivity_keys_carry_overrides(self, runner):
        keys = plan_fig_l_sensitivity(runner, ["blackscholes"], 4,
                                      n_seeds=1)
        assert keys
        latencies = {k.overrides["detection_latency"] for k in keys}
        assert len(latencies) == 3
        assert all(k.fault_plan is not None for k in keys)


class TestLSensitivityShape:
    def test_mean_recovery_latency_non_decreasing_in_l(self):
        from repro.harness.experiments import fig_l_sensitivity
        runner = Runner(scale=100, intervals=2.0)
        result = fig_l_sensitivity(runner, apps=["blackscholes"],
                                   n_cores=4, n_seeds=2)
        by_scheme: dict[str, list[float]] = {}
        for row in result.rows:
            scheme, mean_recovery = row[2], row[3]
            if mean_recovery != "-":
                by_scheme.setdefault(scheme, []).append(
                    float(mean_recovery.replace(",", "")))
        assert by_scheme, "no recoveries happened at all"
        for scheme, latencies in by_scheme.items():
            assert latencies == sorted(latencies), \
                f"{scheme}: recovery latency not monotone in L: {latencies}"


class TestMachineWithOverriddenConfig:
    def test_detection_latency_reaches_fault_injector(self):
        key = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                     overrides={"detection_latency": 4_321})
        from repro.params import MachineConfig
        config = MachineConfig.scaled(n_cores=4, scheme=Scheme.REBOUND,
                                      scale=300)
        config = key.overrides.apply(config)
        from repro.workloads import get_workload
        workload = get_workload("blackscholes", 4, config,
                                intervals=1.5, seed=1)
        machine = Machine(config, workload, faults=[(100.0, 0)])
        assert machine.faults.detection_latency == 4_321
