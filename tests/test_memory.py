"""Tests for main memory and the logging memory controller."""

from repro.mem.log import ReviveLog
from repro.mem.memory import MainMemory


def make_memory():
    log = ReviveLog()
    return MainMemory(log), log


class TestWriteback:
    def test_first_writeback_logs_old_value(self):
        mem, log = make_memory()
        mem.writeback(1.0, 0, 10, value=77, interval=1)
        assert mem.peek(10) == 77
        assert log.total_entries == 1
        assert log.banks[10 % log.n_banks][0].old_value == 0

    def test_second_writeback_same_interval_suppressed(self):
        mem, log = make_memory()
        mem.writeback(1.0, 0, 10, 1, interval=1)
        logged = mem.writeback(2.0, 0, 10, 2, interval=1)
        assert not logged
        assert log.total_entries == 1
        assert mem.peek(10) == 2
        assert mem.suppressed_logs == 1

    def test_new_interval_logs_again(self):
        mem, log = make_memory()
        mem.writeback(1.0, 0, 10, 1, interval=1)
        logged = mem.writeback(2.0, 0, 10, 2, interval=2)
        assert logged
        assert log.total_entries == 2

    def test_different_pids_log_independently(self):
        mem, log = make_memory()
        mem.writeback(1.0, 0, 10, 1, interval=1)
        logged = mem.writeback(2.0, 1, 10, 2, interval=1)
        assert logged  # pid 1's first writeback of the line
        assert log.total_entries == 2

    def test_end_interval_resets_filter(self):
        mem, log = make_memory()
        mem.writeback(1.0, 0, 10, 1, interval=1)
        mem.end_interval(0, 1)
        # New interval id comes with the rotation anyway, but even a
        # repeat of the same id must log afresh after end_interval.
        logged = mem.writeback(2.0, 0, 10, 2, interval=1)
        assert logged


class TestRestore:
    def test_restore_rewinds_to_checkpoint_image(self):
        mem, _ = make_memory()
        mem.writeback(1.0, 0, 10, 111, interval=1)   # ckpt-1 image
        mem.writeback(2.0, 0, 10, 222, interval=2)   # interval-2 data
        entries = mem.restore({0: 1})
        assert len(entries) == 1
        assert mem.peek(10) == 111

    def test_restore_multiple_lines_reverse_order(self):
        mem, _ = make_memory()
        mem.writeback(1.0, 0, 10, 1, interval=2)
        mem.writeback(2.0, 0, 11, 2, interval=2)
        mem.writeback(3.0, 0, 10, 3, interval=3)
        mem.restore({0: 1})
        assert mem.peek(10) == 0
        assert mem.peek(11) == 0

    def test_restore_preserves_other_pids(self):
        mem, _ = make_memory()
        mem.writeback(1.0, 0, 10, 5, interval=2)
        mem.writeback(2.0, 1, 20, 6, interval=2)
        mem.restore({0: 0})
        assert mem.peek(10) == 0
        assert mem.peek(20) == 6

    def test_restore_discards_log_entries(self):
        mem, log = make_memory()
        mem.writeback(1.0, 0, 10, 5, interval=1)
        mem.restore({0: 0})
        assert log.live_entries() == 0

    def test_restore_resets_first_wb_filter(self):
        mem, log = make_memory()
        mem.writeback(1.0, 0, 10, 5, interval=2)
        mem.restore({0: 1})
        logged = mem.writeback(2.0, 0, 10, 7, interval=2)
        assert logged  # re-executed interval logs afresh

    def test_delayed_writeback_interleaving_restores_exactly(self):
        """The interval-tagging scenario of DESIGN.md §7.

        Interval 1's delayed drain (value at the checkpoint) interleaves
        in wall-clock time with interval 2's eviction of the same line.
        Rolling back to checkpoint 1 must land on the checkpoint image,
        not the pre-interval-1 value.
        """
        mem, _ = make_memory()
        # Interval-1 eviction of line X (old = 0).
        mem.writeback(1.0, 0, 10, 100, interval=1)
        # Checkpoint 1 begins (delayed).  Interval 2 starts; a new write
        # to X forces the delayed copy out first — but X was already
        # logged in interval 1 so the log suppresses it.
        mem.writeback(2.0, 0, 10, 150, interval=1)   # drain (suppressed)
        # Interval 2 then evicts its own update of X.
        mem.writeback(3.0, 0, 10, 200, interval=2)
        mem.restore({0: 1})
        assert mem.peek(10) == 150  # the checkpoint-1 image

    def test_snapshot(self):
        mem, _ = make_memory()
        mem.writeback(1.0, 0, 10, 5, interval=1)
        snap = mem.snapshot([10, 11])
        assert snap == {10: 5, 11: 0}
