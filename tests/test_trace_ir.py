"""Tests for the compiled columnar trace IR.

Parity is the contract: a simulation driven by compiled traces must
produce ``SimStats`` equal to the same simulation driven by the
equivalent tuple traces — for every registered scheme, with fault
campaigns and output-I/O injection in the mix — because the IR is a
*representation* change only.  Plus unit coverage for the builder, the
one-shot ``compile_trace`` shim and the wire format the workload store
moves between processes.
"""

import pickle

import pytest

from repro.core.factory import registered_schemes, resolve_scheme
from repro.params import MachineConfig, Scheme
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine
from repro.trace import (
    BARRIER,
    COMPUTE,
    END,
    LOAD,
    LOCK,
    OUTPUT,
    STORE,
    UNLOCK,
    CompiledTrace,
    TraceBuilder,
    compile_trace,
    trace_instruction_count,
)
from repro.workloads import get_workload, inject_output_io
from repro.workloads.base import WorkloadSpec

SCALE = 300
INTERVALS = 1.5

RECORDS = [
    (COMPUTE, 25),
    (LOAD, 3),
    (STORE, 1 << 40),          # sync-region address needs 64-bit args
    (BARRIER, 0),
    (LOCK, 2),
    (UNLOCK, 2),
    (OUTPUT, 4096),
    (END,),
]


def tuple_twin(spec: WorkloadSpec) -> WorkloadSpec:
    """The same workload with every trace as a plain tuple list."""
    return WorkloadSpec(name=spec.name,
                        traces=[list(t) for t in spec.traces],
                        locks=spec.locks, barriers=spec.barriers)


class TestCompiledTrace:
    def test_round_trips_every_record_kind(self):
        trace = compile_trace(RECORDS)
        assert list(trace) == RECORDS
        assert trace.to_tuples() == RECORDS
        assert [trace[i] for i in range(len(trace))] == RECORDS
        assert trace[-1] == (END,)
        assert trace[1:3] == RECORDS[1:3]       # slices keep tuple form
        assert trace[-2:] == RECORDS[-2:]

    def test_builder_equals_shim(self):
        built = TraceBuilder()
        built.compute(25)
        built.load(3)
        built.store(1 << 40)
        built.barrier(0)
        built.lock(2)
        built.unlock(2)
        built.output(4096)
        built.append(END)
        assert built.build() == compile_trace(RECORDS)

    def test_equality_with_tuple_list(self):
        trace = compile_trace(RECORDS)
        assert trace == RECORDS
        assert trace != RECORDS[:-1]
        assert trace != [(COMPUTE, 99)] * len(RECORDS)

    def test_compiled_passes_through(self):
        trace = compile_trace(RECORDS)
        assert compile_trace(trace) is trace

    def test_instruction_count_matches_tuple_walk(self):
        trace = compile_trace(RECORDS)
        expected = trace_instruction_count(RECORDS)
        assert trace.instruction_count() == expected
        assert trace_instruction_count(trace) == expected
        builder = TraceBuilder()
        builder.extend(RECORDS)
        assert builder.n_instructions == expected

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            compile_trace([(99, 0)])
        with pytest.raises(ValueError, match="unknown trace op"):
            TraceBuilder().append(-1)
        with pytest.raises(ValueError, match="unknown trace op"):
            CompiledTrace([99], [0])

    def test_rejects_column_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            CompiledTrace([COMPUTE, LOAD], [5])

    def test_wire_round_trip(self):
        trace = compile_trace(RECORDS)
        clone = CompiledTrace.from_bytes(trace.to_bytes())
        assert clone == trace
        assert clone.n_instructions == trace.n_instructions

    def test_wire_rejects_garbage(self):
        with pytest.raises(ValueError):
            CompiledTrace.from_bytes(b"xx")
        data = compile_trace(RECORDS).to_bytes()
        with pytest.raises(ValueError):
            CompiledTrace.from_bytes(data[:-3])      # truncated column
        with pytest.raises(ValueError):
            CompiledTrace.from_bytes(b"\xff" + data[1:])  # bad version

    def test_pickle_round_trip(self):
        trace = compile_trace(RECORDS)
        assert pickle.loads(pickle.dumps(trace)) == trace


class TestGeneratedTraces:
    def test_generators_emit_compiled_traces(self):
        config = MachineConfig.scaled(n_cores=4, scale=SCALE)
        spec = get_workload("ocean", 4, config, intervals=INTERVALS)
        assert all(isinstance(t, CompiledTrace) for t in spec.traces)

    def test_io_injection_emits_compiled_traces(self):
        config = MachineConfig.scaled(n_cores=4, scale=SCALE)
        spec = get_workload("blackscholes", 4, config, intervals=INTERVALS)
        injected = inject_output_io(spec, pid=0, every_instructions=2_000)
        assert isinstance(injected.traces[0], CompiledTrace)
        # Untouched threads keep their original trace objects.
        assert injected.traces[1] is spec.traces[1]


class TestCompiledVsTupleParity:
    """Compiled-IR runs == tuple-trace runs, bit for bit."""

    @pytest.mark.parametrize("name", registered_schemes())
    def test_every_registered_scheme(self, name):
        scheme = resolve_scheme(name)
        config = MachineConfig.scaled(n_cores=4, scheme=scheme,
                                      scale=SCALE)
        compiled = get_workload("ocean", 4, config, intervals=INTERVALS)
        tuples = tuple_twin(compiled)
        assert Machine(config, compiled).run() == \
            Machine(config, tuples).run()

    def test_fault_campaign_run(self):
        config = MachineConfig.scaled(n_cores=4, scheme=Scheme.REBOUND,
                                      scale=150)
        interval = config.checkpoint_interval
        plan = FaultPlan(((1.3 * interval, 0), (1.32 * interval, 2),
                          (2.4 * interval, 0)))
        compiled = get_workload("ocean", 4, config, intervals=1.8)
        a = Machine(config, compiled, faults=plan).run()
        b = Machine(config, tuple_twin(compiled), faults=plan).run()
        assert a == b
        assert a.rollbacks          # the faults really recovered

    @pytest.mark.parametrize("scheme", [Scheme.GLOBAL, Scheme.REBOUND])
    def test_io_injected_run(self, scheme):
        config = MachineConfig.scaled(n_cores=4, scheme=scheme,
                                      scale=150)
        spec = get_workload("blackscholes", 4, config, intervals=1.8)
        spec = inject_output_io(spec, pid=0, every_instructions=4_000)
        a = Machine(config, spec).run()
        b = Machine(config, tuple_twin(spec)).run()
        assert a == b
        assert any(c.kind == "io" for c in a.checkpoints)

    def test_lock_heavy_run(self):
        config = MachineConfig.scaled(n_cores=4, scheme=Scheme.REBOUND,
                                      scale=SCALE)
        compiled = get_workload("raytrace", 4, config, intervals=INTERVALS)
        assert Machine(config, compiled).run() == \
            Machine(config, tuple_twin(compiled)).run()


class TestWorkloadWireFormat:
    def test_spec_round_trip(self):
        config = MachineConfig.scaled(n_cores=4, scale=SCALE)
        spec = get_workload("raytrace", 4, config, intervals=INTERVALS)
        clone = WorkloadSpec.from_bytes(spec.to_bytes())
        assert clone == spec

    def test_bytes_deterministic(self):
        config = MachineConfig.scaled(n_cores=4, scale=SCALE)
        a = get_workload("ocean", 4, config, intervals=INTERVALS, seed=7)
        b = get_workload("ocean", 4, config, intervals=INTERVALS, seed=7)
        assert a.to_bytes() == b.to_bytes()

    def test_round_trip_simulates_identically(self):
        config = MachineConfig.scaled(n_cores=4, scheme=Scheme.REBOUND,
                                      scale=SCALE)
        spec = get_workload("barnes", 4, config, intervals=INTERVALS)
        clone = WorkloadSpec.from_bytes(spec.to_bytes())
        assert Machine(config, clone).run() == Machine(config, spec).run()

    def test_rejects_garbage(self):
        with pytest.raises(Exception):
            WorkloadSpec.from_bytes(b"not a workload")
        with pytest.raises(ValueError):
            WorkloadSpec.from_bytes(pickle.dumps((999, "x", [], [], [])))
