"""Tests for multiple-checkpoint operation (Section 4.2).

A processor keeps up to n_dep_sets sets of Dep registers so it can have
several checkpoints in flight; it stalls when it runs out, and a fault
rolls back to the newest checkpoint that has been complete for at least
the detection latency L.
"""

from repro.params import Scheme
from repro.trace import COMPUTE, END, LOAD, STORE
from tests.conftest import make_machine, tiny_config


def chatty_trace(rounds, work=900):
    """A trace that checkpoints every ~900 instructions."""
    trace = []
    for i in range(rounds):
        trace.append((STORE, i % 8))
        trace.append((COMPUTE, work))
    trace.append((END,))
    return trace


class TestDepSetPressure:
    def test_many_checkpoints_recycle_sets(self):
        config = tiny_config(2, Scheme.REBOUND, checkpoint_interval=800,
                             detection_latency=200, n_dep_sets=4)
        machine = make_machine([chatty_trace(12)], config=config)
        stats = machine.run()
        assert len(stats.checkpoints) >= 8
        file = machine.scheme.files[0]
        assert len(file.sets) <= 4

    def test_tight_latency_stalls_or_defers(self):
        """With L comparable to the interval and only 2 sets, the core
        must sometimes wait for a set to become recyclable."""
        config = tiny_config(2, Scheme.REBOUND_NODWB,
                             checkpoint_interval=500,
                             detection_latency=5_000, n_dep_sets=2)
        machine = make_machine([chatty_trace(12, work=450)], config=config)
        stats = machine.run()
        scheme = machine.scheme
        assert scheme.depset_defers > 0
        assert stats.cores[0].depset_stall > 0

    def test_run_completes_under_pressure(self):
        config = tiny_config(2, Scheme.REBOUND, checkpoint_interval=400,
                             detection_latency=3_000, n_dep_sets=2)
        machine = make_machine([chatty_trace(10, work=350)], config=config)
        stats = machine.run()
        assert all(c.end_time > 0 for c in stats.cores)


class TestRollbackTargetSelection:
    def test_fault_skips_unsafe_recent_checkpoint(self):
        """A checkpoint younger than L at detection is not safe; the
        rollback must unwind past it (Figure 4.1c)."""
        config = tiny_config(2, Scheme.REBOUND_NODWB,
                             checkpoint_interval=1_000,
                             detection_latency=1_500, n_dep_sets=4)
        trace = [(STORE, 1), (COMPUTE, 1_200),   # ckpt 1 ~ 1,400
                 (STORE, 2), (COMPUTE, 1_200),   # ckpt 2 ~ 2,800
                 (STORE, 3), (COMPUTE, 4_000),
                 (END,)]
        # Fault at 2,900, detected at 4,400: ckpt 2 (~2,900) is younger
        # than L=1,500 at detection... boundary; ckpt 1 is the safe one.
        machine = make_machine([trace], config=config,
                               faults=[(2_900.0, 0)])
        stats = machine.run()
        event = stats.rollbacks[0]
        assert event.max_depth >= 2

    def test_depth_includes_draining_interval(self):
        """With delayed writebacks a rollback can unwind one extra
        interval whose drain was still in flight (Figure 4.1d)."""
        config = tiny_config(2, Scheme.REBOUND, checkpoint_interval=1_000,
                             detection_latency=800, n_dep_sets=4,
                             dwb_drain_period=200)   # very slow drain
        trace = [(STORE, 1), (COMPUTE, 1_200),
                 (STORE, 2), (COMPUTE, 1_200),
                 (STORE, 3), (COMPUTE, 4_000), (END,)]
        machine = make_machine([trace], config=config,
                               faults=[(2_600.0, 0)])
        stats = machine.run()
        assert stats.rollbacks[0].max_depth >= 2

    def test_consumers_of_all_unwound_intervals_roll(self):
        """Rolling back multiple intervals ORs their MyConsumers
        (Section 4.2, second event)."""
        config = tiny_config(3, Scheme.REBOUND_NODWB,
                             checkpoint_interval=1_000,
                             detection_latency=2_500, n_dep_sets=4)
        traces = [
            # P0: produces for P1 in its SECOND interval.
            [(STORE, 1), (COMPUTE, 1_500), (STORE, 5), (COMPUTE, 1_500),
             (COMPUTE, 6_000), (END,)],
            # P1 consumes during P0's second interval.
            [(COMPUTE, 1_900), (LOAD, 5), (COMPUTE, 8_500), (END,)],
        ]
        # Fault on P0 at 2,600 detected at 5,100: checkpoint 2 (closing
        # the producing interval) is younger than L at detection, so the
        # rollback unwinds interval 2 — and must drag its consumer P1.
        machine = make_machine(traces, config=config,
                               faults=[(2_600.0, 0)])
        stats = machine.run()
        assert stats.rollbacks[0].size == 2
