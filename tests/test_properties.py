"""Cross-cutting property tests: invariants over random workloads.

These exercise the full stack — generator, coherence, schemes, faults —
under hypothesis-chosen inputs, asserting the paper's key invariants:

* golden coherence (every load sees the globally last store),
* directory consistency (one exclusive owner; sharers hold copies),
* recovery termination and bounded depth (Appendix A),
* checkpoint accounting consistency (ICHK sizes, snapshot completeness).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.directory import EXCL, SHARED
from repro.params import Scheme
from repro.trace import BARRIER, COMPUTE, END, LOAD, LOCK, STORE, UNLOCK
from tests.conftest import barrier_spec, lock_spec, make_machine, tiny_config

SCHEMES = st.sampled_from([Scheme.GLOBAL, Scheme.GLOBAL_DWB,
                           Scheme.REBOUND_NODWB, Scheme.REBOUND,
                           Scheme.REBOUND_BARR])


@st.composite
def random_workload(draw, max_threads=4, max_ops=40):
    n_threads = draw(st.integers(2, max_threads))
    use_lock = draw(st.booleans())
    use_barrier = draw(st.booleans())
    traces = [[] for _ in range(n_threads)]
    ops = draw(st.lists(
        st.tuples(st.integers(0, n_threads - 1),     # thread
                  st.integers(0, 3),                 # op kind
                  st.integers(0, 11),                # address
                  st.integers(1, 800)),              # compute length
        min_size=4, max_size=max_ops))
    lock_depth = [0] * n_threads
    for thread, kind, addr, length in ops:
        if kind == 0:
            traces[thread].append((COMPUTE, length))
        elif kind == 1:
            traces[thread].append((LOAD, addr))
        elif kind == 2:
            traces[thread].append((STORE, addr))
        elif use_lock:
            if lock_depth[thread] == 0:
                traces[thread].append((LOCK, 0))
                traces[thread].append((STORE, addr))
                traces[thread].append((UNLOCK, 0))
    if use_barrier:
        for trace in traces:
            trace.append((BARRIER, 0))
    for trace in traces:
        trace.append((END,))
    return n_threads, traces, use_lock, use_barrier


class TestSystemProperties:
    @given(random_workload(), SCHEMES, st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_golden_coherence_under_all_schemes(self, workload, scheme,
                                                seed):
        n_threads, traces, use_lock, use_barrier = workload
        config = tiny_config(n_threads, scheme, seed=seed,
                             checkpoint_interval=900,
                             check_coherence=True)
        machine = make_machine(
            traces, config=config,
            locks=[lock_spec()] if use_lock else (),
            barriers=[barrier_spec(n_threads)] if use_barrier else ())
        stats = machine.run()   # golden checker raises on violations
        assert all(core.done for core in machine.cores)
        # Directory invariants at quiescence.
        for entry in machine.engine.directory.entries():
            if entry.mode == EXCL:
                assert entry.owner is not None
                line = machine.engine.l2s[entry.owner].peek(entry.addr)
                assert line is not None
            elif entry.mode == SHARED:
                for pid in entry.sharer_list():
                    assert machine.engine.l2s[pid].peek(entry.addr) \
                        is not None
        # Every completed checkpoint's snapshot eventually closed.
        for core in machine.cores:
            for snap in core.snapshots:
                assert snap.complete_time is not None

    @given(random_workload(max_ops=30),
           st.sampled_from([Scheme.GLOBAL, Scheme.REBOUND,
                            Scheme.REBOUND_NODWB]),
           st.floats(200.0, 4_000.0))
    @settings(max_examples=30, deadline=None)
    def test_recovery_always_terminates(self, workload, scheme, fault_at):
        """Faults anywhere, under any scheme: the run completes, the
        rollback is bounded, and the rolled-back state is consistent."""
        n_threads, traces, use_lock, use_barrier = workload
        config = tiny_config(n_threads, scheme,
                             checkpoint_interval=700,
                             detection_latency=300,
                             check_coherence=True)
        machine = make_machine(
            traces, config=config,
            locks=[lock_spec()] if use_lock else (),
            barriers=[barrier_spec(n_threads)] if use_barrier else (),
            faults=[(fault_at, 0)])
        stats = machine.run(max_cycles=5e6)
        assert all(core.done for core in machine.cores)
        for event in stats.rollbacks:
            assert 1 <= event.size <= n_threads
            assert event.max_depth <= 4          # no domino effect
            assert event.latency >= 0

    @given(st.integers(2, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_log_volume_conserved(self, n_threads, seed):
        """Total log bytes equals logged writebacks times entry size."""
        from repro.params import LOG_ENTRY_BYTES
        traces = []
        import random
        rng = random.Random(seed)
        for tid in range(n_threads):
            trace = []
            for _ in range(20):
                trace.append((STORE, rng.randrange(12)))
                trace.append((COMPUTE, rng.randrange(1, 400)))
            trace.append((END,))
            traces.append(trace)
        machine = make_machine(traces,
                               config=tiny_config(n_threads, Scheme.REBOUND,
                                                  seed=seed))
        stats = machine.run()
        assert stats.log_bytes == \
            machine.memory.logged_writebacks * LOG_ENTRY_BYTES
