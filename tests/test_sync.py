"""Tests for locks and barriers built on coherent memory accesses."""

import pytest

from repro.params import Scheme
from repro.trace import BARRIER, COMPUTE, END, LOAD, LOCK, STORE, UNLOCK
from tests.conftest import barrier_spec, lock_spec, make_machine, tiny_config


class TestLocks:
    def test_uncontended_acquire_release(self):
        lock = lock_spec()
        traces = [
            [(LOCK, 0), (COMPUTE, 10), (UNLOCK, 0), (END,)],
            [(COMPUTE, 5), (END,)],
        ]
        machine = make_machine(traces, locks=[lock],
                               config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        assert stats.runtime > 0
        assert machine.sync.lock_acquisitions == 1

    def test_contended_lock_serializes(self):
        lock = lock_spec()
        traces = [
            [(LOCK, 0), (COMPUTE, 500), (UNLOCK, 0), (END,)],
            [(LOCK, 0), (COMPUTE, 500), (UNLOCK, 0), (END,)],
        ]
        machine = make_machine(traces, locks=[lock],
                               config=tiny_config(2, Scheme.NONE))
        stats = machine.run()
        # Both critical sections must serialize: > 1000 compute cycles.
        assert stats.runtime > 1000
        assert machine.sync.lock_acquisitions == 2
        # One of the two waited.
        waits = [c.sync_wait for c in stats.cores]
        assert max(waits) > 0

    def test_lock_passing_records_dependence(self):
        lock = lock_spec()
        traces = [
            [(LOCK, 0), (COMPUTE, 300), (UNLOCK, 0), (END,)],
            [(COMPUTE, 10), (LOCK, 0), (UNLOCK, 0), (END,)],
        ]
        machine = make_machine(traces, locks=[lock],
                               config=tiny_config(2, Scheme.REBOUND))
        machine.run()
        # The second holder read the lock word the first wrote.
        scheme = machine.scheme
        producers_of_1 = scheme.files[1].active.producers
        assert producers_of_1 & 0b01

    def test_unlock_by_non_holder_asserts(self):
        lock = lock_spec()
        traces = [[(UNLOCK, 0), (END,)]]
        machine = make_machine(traces, locks=[lock],
                               config=tiny_config(2, Scheme.NONE))
        with pytest.raises(AssertionError):
            machine.run()

    def test_fifo_ordering(self):
        lock = lock_spec()
        traces = [
            [(LOCK, 0), (COMPUTE, 1000), (UNLOCK, 0), (END,)],
            [(COMPUTE, 10), (LOCK, 0), (STORE, 500), (UNLOCK, 0), (END,)],
            [(COMPUTE, 20), (LOCK, 0), (STORE, 501), (UNLOCK, 0), (END,)],
        ]
        machine = make_machine(traces, locks=[lock],
                               config=tiny_config(3, Scheme.NONE))
        machine.run()
        # Thread 1 queued before thread 2 and must acquire first:
        # its store therefore commits earlier in the serialization.
        assert machine.sync.lock_acquisitions == 3


class TestBarriers:
    def test_barrier_waits_for_all(self):
        barrier = barrier_spec(3)
        traces = [
            [(COMPUTE, 10), (BARRIER, 0), (END,)],
            [(COMPUTE, 2000), (BARRIER, 0), (END,)],
            [(COMPUTE, 50), (BARRIER, 0), (END,)],
        ]
        machine = make_machine(traces, barriers=[barrier],
                               config=tiny_config(3, Scheme.NONE))
        stats = machine.run()
        # Everyone leaves after the slowest arrival.
        ends = [c.end_time for c in stats.cores]
        assert min(ends) > 2000
        # Early arrivers accumulated spin time.
        assert stats.cores[0].sync_wait > stats.cores[1].sync_wait

    def test_barrier_reusable_across_generations(self):
        barrier = barrier_spec(2)
        traces = [
            [(BARRIER, 0), (COMPUTE, 10), (BARRIER, 0), (END,)],
            [(BARRIER, 0), (COMPUTE, 90), (BARRIER, 0), (END,)],
        ]
        machine = make_machine(traces, barriers=[barrier],
                               config=tiny_config(2, Scheme.NONE))
        machine.run()
        assert machine.sync.barriers[0].gen == 2
        assert machine.sync.barrier_episodes == 2

    def test_barrier_chains_dependences_to_all(self):
        """After a barrier everyone depends on the flag writer
        (Figure 4.2b): a checkpoint right after is effectively global."""
        barrier = barrier_spec(3)
        traces = [
            [(COMPUTE, 10 + 30 * i), (BARRIER, 0), (COMPUTE, 5), (END,)]
            for i in range(3)
        ]
        machine = make_machine(traces, barriers=[barrier],
                               config=tiny_config(3, Scheme.REBOUND))
        machine.run()
        scheme = machine.scheme
        # The last arriver wrote the flag; the others consumed it.
        flag_deps = sum(
            1 for pid in range(3)
            if scheme.files[pid].active.producers)
        assert flag_deps >= 2

    def test_barrier_crossings_counted(self):
        barrier = barrier_spec(2)
        traces = [
            [(BARRIER, 0), (BARRIER, 0), (END,)],
            [(BARRIER, 0), (BARRIER, 0), (END,)],
        ]
        machine = make_machine(traces, barriers=[barrier],
                               config=tiny_config(2, Scheme.NONE))
        machine.run()
        for core in machine.cores:
            assert core.barrier_crossings[0] == 2


class TestDeadlockDiagnostics:
    def test_missing_participant_reports_deadlock(self):
        from repro.sim.machine import SimulationDeadlock
        barrier = barrier_spec(2)
        traces = [
            [(BARRIER, 0), (END,)],
            [(END,)],                       # never arrives
        ]
        machine = make_machine(traces, barriers=[barrier],
                               config=tiny_config(2, Scheme.NONE))
        with pytest.raises(SimulationDeadlock):
            machine.run()
