"""Differential suite for the memory-system fast path.

``Machine._advance_main`` with ``REPRO_FASTPATH`` on (the default)
services provable private hits — loads of any L1/L2-resident line,
stores to lines already MODIFIED and not delayed — inline against the
caches' residency maps, without entering ``CoherenceEngine``.  Nothing
about that is allowed to be observable: **every** field of the
resulting :class:`SimStats` — runtime, the exact cycle-bucket
partition, per-core stats, checkpoint/rollback event lists, message,
log, energy and memory-system counters — must be bit-identical to a
slow-path run of the same (config, workload, faults), for every
registered scheme, with fault campaigns, output-I/O injection, cluster
mode, golden-model coherence checking and the vectorized replica
kernel in the mix.

The memsys counters themselves (``l1_hits`` ... ``mem_accesses``) are
part of the contract: eligibility is counted identically in both
modes, so they participate in the equality rather than being exempted
from it.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import MachineConfig, Scheme
from repro.sim.machine import Machine, _fastpath_default
from repro.sim.stats import SimStats
from repro.sim.vector import have_numpy, run_replica_batch
from repro.workloads import get_workload, inject_output_io
from tests.invariants import assert_bucket_parity, assert_run_invariants

needs_numpy = pytest.mark.skipif(not have_numpy(),
                                 reason="numpy not installed")

SCALE = 150
INTERVALS = 1.8
APP = "blackscholes"


def _config(n_cores, scheme, cluster=1, **overrides):
    return MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                scale=SCALE, dep_cluster_size=cluster,
                                **overrides)


def _spec(n_cores, config, io_every=None, app=APP, seed=1):
    spec = get_workload(app, n_cores, config, intervals=INTERVALS,
                        seed=seed)
    if io_every is not None:
        spec = inject_output_io(spec=spec, pid=0,
                                every_instructions=io_every)
    return spec


def _run(config, spec, faults, fastpath):
    return Machine(config, spec, faults=list(faults) or None,
                   fastpath=fastpath).run()


def assert_stats_identical(slow, fast, what="fast path off vs on"):
    """Field-by-field equality over the *whole* SimStats — events,
    energy ledger and memsys counters included — plus the derived
    bucket partition both suites key their figures on."""
    for field in dataclasses.fields(SimStats):
        a, b = getattr(slow, field.name), getattr(fast, field.name)
        assert a == b, \
            f"{what}: SimStats.{field.name} diverged: {a!r} != {b!r}"
    assert slow.cycle_buckets() == fast.cycle_buckets()
    assert_bucket_parity(slow, fast, what=what)


def _campaign(config):
    """Three replicas: an early fault, a two-fault sequence, fault-free."""
    interval = config.checkpoint_interval
    return [
        [(0.9 * interval, 0)],
        [(1.1 * interval, 2), (1.45 * interval, 1)],
        [],
    ]


#: (scheme, n_cores, io_every-in-intervals, cluster, with-faults) —
#: every registered scheme appears; NONE has no recovery support, so
#: its runs must be fault-free.
MATRIX = [
    (Scheme.REBOUND, 8, None, 1, True),
    (Scheme.REBOUND, 4, 0.5, 1, True),           # output-I/O injection
    (Scheme.REBOUND, 8, None, 4, True),          # cluster mode (Ch. 8)
    (Scheme.GLOBAL, 8, None, 1, True),
    (Scheme.GLOBAL_DWB, 4, None, 1, True),
    (Scheme.REBOUND_NODWB, 4, 0.5, 1, True),
    (Scheme.REBOUND_BARR, 4, None, 1, True),
    (Scheme.REBOUND_NODWB_BARR, 4, None, 1, True),
    (Scheme.NONE, 4, None, 1, False),
]


@pytest.mark.parametrize("scheme,n_cores,io_frac,cluster,with_faults",
                         MATRIX,
                         ids=lambda v: getattr(v, "value", str(v)))
def test_fastpath_matches_slow_path(scheme, n_cores, io_frac, cluster,
                                    with_faults):
    config = _config(n_cores, scheme, cluster)
    io_every = int(io_frac * config.checkpoint_interval) \
        if io_frac is not None else None
    spec = _spec(n_cores, config, io_every)
    fault_lists = _campaign(config) if with_faults else [[]]
    for faults in fault_lists:
        slow = _run(config, spec, faults, fastpath=False)
        fast = _run(config, spec, faults, fastpath=True)
        assert_run_invariants(fast)
        assert_stats_identical(slow, fast)
        # The fast path genuinely fires on these workloads: eligibility
        # is mode-invariant, so the slow run reports the same counts.
        assert fast.fastpath_loads > 0
        assert fast.mem_accesses > 0
        assert 0.0 < fast.fastpath_hit_rate <= 1.0


def test_fastpath_survives_golden_coherence_check():
    """With ``check_coherence`` on, every fast-path hit is validated
    against the golden memory image — a value served from a stale
    residency filter would trip the assertion inline."""
    config = _config(8, Scheme.REBOUND, check_coherence=True)
    spec = _spec(8, config)
    for faults in _campaign(config):
        slow = _run(config, spec, faults, fastpath=False)
        fast = _run(config, spec, faults, fastpath=True)
        assert_stats_identical(slow, fast, what="golden-checked")


@needs_numpy
def test_vector_batches_match_in_both_modes(monkeypatch):
    """The replica kernel (leader + forks) under REPRO_FASTPATH=0 and
    =1 produces identical stats — the batched counters are flushed on
    every exit from the advance loop, so a fork's deepcopy always
    clones a fully-folded engine."""
    config = _config(4, Scheme.REBOUND)
    spec = _spec(4, config)
    fault_lists = _campaign(config)
    monkeypatch.setenv("REPRO_FASTPATH", "0")
    off = run_replica_batch(config, spec, fault_lists)
    monkeypatch.setenv("REPRO_FASTPATH", "1")
    on = run_replica_batch(config, spec, fault_lists)
    for slow, fast, faults in zip(off.stats, on.stats, fault_lists):
        assert_run_invariants(fast)
        assert_stats_identical(slow, fast, what="vector off vs on")
        # ... and both agree with the scalar fast-path run.
        assert_stats_identical(_run(config, spec, faults, True), fast,
                               what="scalar vs vector")


# -- hypothesis: random geometries/traces preserve the equivalence ----------

@given(seed=st.integers(0, 2**16),
       n_cores=st.sampled_from([2, 4]),
       scheme=st.sampled_from([Scheme.REBOUND, Scheme.GLOBAL_DWB,
                               Scheme.REBOUND_NODWB]),
       app=st.sampled_from(["blackscholes", "fluidanimate"]),
       fault_frac=st.one_of(st.none(), st.floats(0.5, 1.6)))
@settings(max_examples=10, deadline=None)
def test_random_workloads_preserve_parity(seed, n_cores, scheme, app,
                                          fault_frac):
    config = _config(n_cores, scheme)
    spec = _spec(n_cores, config, app=app, seed=seed)
    faults = [] if fault_frac is None \
        else [(fault_frac * config.checkpoint_interval, seed % n_cores)]
    slow = _run(config, spec, faults, fastpath=False)
    fast = _run(config, spec, faults, fastpath=True)
    assert_stats_identical(slow, fast, what=f"seed={seed}")


# -- the REPRO_FASTPATH knob ------------------------------------------------

class TestEnvKnob:
    def test_unset_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        assert _fastpath_default() is True

    @pytest.mark.parametrize("text,expected", [
        ("1", True), ("on", True), ("true", True), ("YES", True),
        ("0", False), ("OFF", False), ("False", False), ("no", False),
    ])
    def test_spellings(self, monkeypatch, text, expected):
        monkeypatch.setenv("REPRO_FASTPATH", text)
        assert _fastpath_default() is expected
        config = _config(2, Scheme.NONE)
        machine = Machine(config, _spec(2, config))
        assert machine.fastpath is expected

    def test_garbage_rejected_naming_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "fasle")
        with pytest.raises(ValueError, match="REPRO_FASTPATH.*'fasle'"):
            _fastpath_default()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        config = _config(2, Scheme.NONE)
        assert Machine(config, _spec(2, config), fastpath=True).fastpath
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        assert not Machine(config, _spec(2, config),
                           fastpath=False).fastpath


# -- memsys counter plumbing ------------------------------------------------

def test_memsys_counters_are_internally_consistent():
    config = _config(4, Scheme.REBOUND)
    stats = _run(config, _spec(4, config), [], fastpath=True)
    # The L1 is write-through presence-only: probed by loads, bypassed
    # by stores — so its totals count the loads, a strict subset of the
    # accesses (which tally one L1 energy event per load *and* store).
    loads = stats.l1_hits + stats.l1_misses
    assert 0 < loads < stats.mem_accesses
    assert stats.fastpath_loads <= loads
    assert stats.l2_hits + stats.l2_misses <= stats.mem_accesses
    assert stats.fastpath_loads + stats.fastpath_stores \
        <= stats.mem_accesses
    assert stats.fastpath_epoch_bumps > 0      # interval advances alone
    assert stats.energy_events.get("l1", 0) == stats.mem_accesses


def test_engine_memsys_totals_sum_runs():
    from repro.harness.engine import ExperimentEngine, RunKey
    engine = ExperimentEngine(jobs=1, use_disk_cache=False)
    keys = [RunKey(app=APP, n_cores=4, scheme=scheme,
                   intervals=INTERVALS, seed=1, scale=SCALE)
            for scheme in (Scheme.REBOUND, Scheme.GLOBAL)]
    results = engine.run_many(keys)
    totals = engine.memsys_counters()
    for name in ("l1_hits", "l2_hits", "fastpath_loads", "mem_accesses"):
        assert totals[name] == sum(getattr(results[key], name)
                                   for key in keys)
    assert totals["mem_accesses"] > 0
