"""Tests for cluster-granular dependence tracking (Chapter 8 extension)."""

import pytest

from repro.core.cluster import ClusterMap
from repro.params import Scheme
from repro.trace import COMPUTE, END, LOAD, STORE
from tests.conftest import make_machine, tiny_config


class TestClusterMap:
    def test_mapping(self):
        cmap = ClusterMap(8, 4)
        assert cmap.n_clusters == 2
        assert cmap.cluster_of(0) == 0
        assert cmap.cluster_of(5) == 1
        assert cmap.members_of(1) == [4, 5, 6, 7]

    def test_ragged_last_cluster(self):
        cmap = ClusterMap(6, 4)
        assert cmap.n_clusters == 2
        assert cmap.members_of(1) == [4, 5]

    def test_expand_pid(self):
        cmap = ClusterMap(8, 4)
        assert cmap.expand_pid(1) == 0b1111
        assert cmap.expand_pid(6) == 0b11110000

    def test_expand_mask(self):
        cmap = ClusterMap(8, 4)
        assert cmap.expand_mask(0b10) == 0b1111
        assert cmap.expand_mask(0b10010000) == 0b11110000
        assert cmap.expand_mask(0) == 0

    def test_trivial(self):
        assert ClusterMap(8, 1).trivial
        assert not ClusterMap(8, 2).trivial

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ClusterMap(8, 0)


class TestClusterScheme:
    def _machine(self, traces, cluster_size, faults=None):
        config = tiny_config(4, Scheme.REBOUND,
                             dep_cluster_size=cluster_size)
        return make_machine(traces, config=config, faults=faults)

    def test_checkpoint_drags_whole_cluster(self):
        # P0 produces for P2 (different clusters of size 2): the
        # checkpoint must include both full clusters.
        traces = [
            [(STORE, 5), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 9200), (END,)],
            [(COMPUTE, 300), (LOAD, 5), (COMPUTE, 5000), (END,)],
            [(COMPUTE, 9200), (END,)],
        ]
        machine = self._machine(traces, cluster_size=2)
        stats = machine.run()
        sizes = {e.size for e in stats.checkpoints
                 if e.kind == "interval"}
        assert 4 in sizes

    def test_per_processor_mode_stays_small(self):
        traces = [
            [(STORE, 5), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 9200), (END,)],
            [(COMPUTE, 300), (LOAD, 5), (COMPUTE, 5000), (END,)],
            [(COMPUTE, 9200), (END,)],
        ]
        machine = self._machine(traces, cluster_size=1)
        stats = machine.run()
        assert all(e.size <= 2 for e in stats.checkpoints
                   if e.kind == "interval")

    def test_rollback_covers_cluster(self):
        traces = [
            [(STORE, 5), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 9200), (END,)],
            [(COMPUTE, 300), (LOAD, 5), (COMPUTE, 5000), (END,)],
            [(COMPUTE, 9200), (END,)],
        ]
        machine = self._machine(traces, cluster_size=2,
                                faults=[(1000.0, 0)])
        stats = machine.run()
        assert stats.rollbacks[0].size == 4
        assert all(core.done for core in machine.cores)

    def test_cluster_runs_on_synthetic_workload(self):
        from repro import run_app
        stats = run_app("blackscholes", n_cores=8, scheme=Scheme.REBOUND,
                        intervals=2, dep_cluster_size=4)
        small = run_app("blackscholes", n_cores=8, scheme=Scheme.REBOUND,
                        intervals=2)
        # Coarser tracking can only enlarge interaction sets.
        assert stats.mean_ichk_fraction() >= small.mean_ichk_fraction()
