"""Tests for the pluggable scheme registry (repro.core.factory)."""

import pytest

from repro.core import (
    NoCheckpointScheme,
    register_scheme,
    registered_schemes,
    resolve_scheme,
    unregister_scheme,
)
from repro.harness.engine import ExperimentEngine, RunKey, execute_run
from repro.harness.experiments import parse_variant
from repro.params import Scheme, SchemeTag
from repro.sim import SimStats


class ToyScheme(NoCheckpointScheme):
    """A registered out-of-tree scheme (checkpoint-free, but its own)."""


@pytest.fixture()
def toy_scheme():
    tag = register_scheme("toy", ToyScheme)
    yield tag
    unregister_scheme("toy")


class TestRegistry:
    def test_builtins_registered_from_enum(self):
        assert set(registered_schemes()) >= {s.value for s in Scheme}

    def test_resolve_builtin_returns_enum_member(self):
        assert resolve_scheme("rebound") is Scheme.REBOUND
        assert resolve_scheme("none") is Scheme.NONE

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme 'bogus'"):
            resolve_scheme("bogus")

    def test_register_returns_tag(self, toy_scheme):
        assert isinstance(toy_scheme, SchemeTag)
        assert toy_scheme.value == "toy"
        assert not toy_scheme.is_local
        assert not toy_scheme.tracks_dependences
        assert resolve_scheme("toy") is toy_scheme

    def test_duplicate_name_rejected(self, toy_scheme):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme("toy", ToyScheme)
        # ... unless explicitly replaced.
        tag = register_scheme("toy", ToyScheme, replace=True,
                              is_local=True)
        assert tag.is_local

    def test_builtin_name_never_replaced(self):
        # The built-in diagnosis wins over the generic duplicate one:
        # it must not suggest replace=True, which could never work.
        with pytest.raises(ValueError, match="built-in"):
            register_scheme("rebound", ToyScheme)
        with pytest.raises(ValueError, match="built-in"):
            register_scheme("rebound", ToyScheme, replace=True)

    def test_unregister_guards(self, toy_scheme):
        with pytest.raises(ValueError, match="built-in"):
            unregister_scheme("rebound")
        with pytest.raises(KeyError):
            unregister_scheme("never-registered")


class TestToySchemeThroughEngine:
    def test_runs_through_a_runkey_scenario(self, toy_scheme):
        # The tag rides inside a RunKey (with a config override for good
        # measure) and the engine builds the registered class — no
        # engine or factory code knows about "toy".
        key = RunKey("blackscholes", 4, toy_scheme, 1.5, 1, 300,
                     overrides={"detection_latency": 5_000})
        stats = execute_run(key)
        assert isinstance(stats, SimStats)
        assert stats.config.scheme is toy_scheme
        assert stats.config.detection_latency == 5_000
        assert stats.runtime > 0
        assert not stats.checkpoints        # toy scheme never checkpoints

    def test_memoizes_like_any_scheme(self, toy_scheme):
        eng = ExperimentEngine(jobs=1, use_disk_cache=False)
        key = RunKey("blackscholes", 4, toy_scheme, 1.5, 1, 300)
        assert eng.run(key) is eng.run(key)
        assert len(eng.profile) == 1

    def test_unregistered_scheme_fails_loudly(self):
        tag = SchemeTag("ghost")
        key = RunKey("blackscholes", 4, tag, 1.5, 1, 300)
        with pytest.raises(ValueError, match="unknown scheme"):
            execute_run(key)


class TestCliTokens:
    def test_parse_variant_resolves_registered_scheme(self, toy_scheme):
        variant = parse_variant("toy@2")
        assert variant.scheme is toy_scheme
        assert variant.cluster == 2

    def test_parse_variant_still_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            parse_variant("bogus")
