"""Tests for the synthetic workload generators (Figure 4.3b substitutes)."""

import pytest

from repro.params import MachineConfig, Scheme
from repro.trace import (
    BARRIER,
    COMPUTE,
    LOAD,
    LOCK,
    OUTPUT,
    STORE,
    UNLOCK,
    trace_instruction_count,
)
from repro.workloads import (
    ALL_APPS,
    BARRIER_INTENSIVE,
    LOW_ICHK,
    PARSEC_APACHE,
    SPLASH2,
    get_profile,
    get_workload,
    inject_output_io,
    list_workloads,
)


def small_config(**over):
    return MachineConfig.scaled(n_cores=8, scheme=Scheme.NONE, scale=200,
                                **over)


class TestRegistry:
    def test_all_18_applications_present(self):
        assert len(list_workloads()) == 18
        assert len(SPLASH2) == 13
        assert len(PARSEC_APACHE) == 5

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_profile("doom")

    def test_suite_tags(self):
        assert get_profile("ocean").suite == "splash2"
        assert get_profile("ferret").suite == "parsec"
        assert get_profile("apache").suite == "server"

    def test_ocean_barrier_rate_matches_paper(self):
        # Section 6.1: Ocean has a barrier every ~50k instructions.
        assert get_profile("ocean").barrier_every == 50_000

    def test_barrier_intensive_subset(self):
        assert "ocean" in BARRIER_INTENSIVE
        assert "raytrace" not in BARRIER_INTENSIVE  # lock-bound, no barriers

    def test_low_ichk_subset(self):
        assert set(LOW_ICHK) <= set(ALL_APPS)


class TestGeneration:
    def test_deterministic_given_seed(self):
        config = small_config()
        a = get_workload("barnes", 4, config, intervals=1, seed=7)
        b = get_workload("barnes", 4, config, intervals=1, seed=7)
        assert a.traces == b.traces

    def test_seed_changes_traces(self):
        config = small_config()
        a = get_workload("barnes", 4, config, intervals=1, seed=7)
        b = get_workload("barnes", 4, config, intervals=1, seed=8)
        assert a.traces != b.traces

    def test_instruction_budget_respected(self):
        config = small_config()
        spec = get_workload("fmm", 4, config, intervals=2)
        target = 2 * config.checkpoint_interval
        for trace in spec.traces:
            count = trace_instruction_count(trace)
            # jitter + final block overshoot are bounded
            assert target * 0.9 <= count <= target * 1.8

    def test_barrier_counts_equal_across_threads(self):
        config = small_config()
        spec = get_workload("ocean", 6, config, intervals=2)
        counts = [sum(1 for r in t if r[0] == BARRIER)
                  for t in spec.traces]
        assert len(set(counts)) == 1
        assert counts[0] >= 1
        assert spec.barriers and spec.barriers[0].participants == \
            list(range(6))

    def test_lock_sections_well_formed(self):
        config = small_config()
        spec = get_workload("raytrace", 4, config, intervals=1)
        for trace in spec.traces:
            depth = 0
            for record in trace:
                if record[0] == LOCK:
                    depth += 1
                    assert depth == 1  # no nesting in generated code
                elif record[0] == UNLOCK:
                    depth -= 1
                    assert depth == 0
            assert depth == 0

    def test_lockless_profiles_have_no_locks(self):
        config = small_config()
        spec = get_workload("blackscholes", 4, config, intervals=1)
        assert spec.locks == []
        for trace in spec.traces:
            assert all(r[0] not in (LOCK, UNLOCK) for r in trace)

    def test_shared_reads_target_cluster_peers(self):
        config = small_config()
        from repro.workloads.synthetic import SyntheticWorkload
        workload = SyntheticWorkload(get_profile("blackscholes"), 8,
                                     config.checkpoint_interval, 1.0, 3)
        spec = workload.build()
        region_of = {}
        for tid in range(8):
            for line in workload.shared_regions[tid]:
                region_of[line] = tid
        for tid, trace in enumerate(spec.traces):
            cluster = set(workload.cluster_of(tid))
            for record in trace:
                if record[0] == LOAD and record[1] in region_of:
                    assert region_of[record[1]] in cluster

    def test_runs_on_machine(self):
        config = small_config()
        spec = get_workload("water_sp", 4, config, intervals=1)
        from repro.sim.machine import Machine
        stats = Machine(config, spec).run()
        assert stats.runtime > 0
        assert stats.total_instructions > 0


class TestIoInjection:
    def test_output_records_inserted_on_schedule(self):
        config = small_config()
        spec = get_workload("blackscholes", 4, config, intervals=2)
        injected = inject_output_io(spec, pid=0, every_instructions=5_000)
        outputs = sum(1 for r in injected.traces[0] if r[0] == OUTPUT)
        expected = trace_instruction_count(spec.traces[0]) // 5_000
        assert outputs >= max(1, expected - 1)
        # Other threads untouched.
        assert injected.traces[1] == spec.traces[1]

    def test_injection_preserves_instruction_order(self):
        config = small_config()
        spec = get_workload("apache", 4, config, intervals=1)
        injected = inject_output_io(spec, pid=0, every_instructions=2_000)
        original = [r for r in injected.traces[0] if r[0] != OUTPUT]
        # COMPUTE records may be split, but total work is identical.
        assert trace_instruction_count(original) == \
            trace_instruction_count(spec.traces[0])

    def test_bad_pid_rejected(self):
        config = small_config()
        spec = get_workload("apache", 4, config, intervals=1)
        with pytest.raises(ValueError):
            inject_output_io(spec, pid=99)


class TestFootprintScaling:
    def test_footprints_shrink_with_interval(self):
        from repro.workloads.synthetic import SyntheticWorkload
        profile = get_profile("ocean")
        big = SyntheticWorkload(profile, 4, 1_000_000, 1.0, 1)
        small = SyntheticWorkload(profile, 4, 20_000, 1.0, 1)
        assert small.private_lines < big.private_lines

    def test_relative_footprints_preserve_table_order(self):
        # Ocean must stay the largest log producer, Water-Sp the smallest
        # (Table 6.1 ordering).
        ocean = get_profile("ocean")
        water = get_profile("water_sp")
        assert ocean.private_lines * ocean.write_frac > \
            5 * water.private_lines * water.write_frac
