"""Tests for the power/energy model (Chapter 5, Figures 6.6b and 6.8)."""

from repro.params import MachineConfig, Scheme
from repro.power import PowerModel, ed2, energy_of_stats
from repro.power.model import STATIC_REBOUND_TILE_W, STATIC_TILE_W
from repro.sim.stats import SimStats


def stats_with(scheme, runtime=1_000_000.0, events=None, instr=10_000_000,
               msgs=1_000, n_cores=64):
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme)
    stats = SimStats(config=config, scheme=scheme, workload="x")
    stats.runtime = runtime
    stats.total_instructions = instr
    stats.energy_events = events or {"l2": 100_000, "dram": 10_000}
    stats.base_messages = msgs
    return stats


class TestEnergyEvaluation:
    def test_dynamic_energy_scales_with_events(self):
        small = energy_of_stats(stats_with(Scheme.GLOBAL,
                                           events={"dram": 1_000}))
        large = energy_of_stats(stats_with(Scheme.GLOBAL,
                                           events={"dram": 100_000}))
        assert large.dynamic_j > small.dynamic_j

    def test_static_energy_scales_with_runtime(self):
        short = energy_of_stats(stats_with(Scheme.GLOBAL, runtime=1e5))
        long = energy_of_stats(stats_with(Scheme.GLOBAL, runtime=1e6))
        assert long.static_j > short.static_j

    def test_rebound_structures_cost_static_power(self):
        glob = energy_of_stats(stats_with(Scheme.GLOBAL))
        reb = energy_of_stats(stats_with(Scheme.REBOUND))
        assert glob.rebound_static_j == 0.0
        assert reb.rebound_static_j > 0.0
        # Calibrated to the paper's ~1.3% structure power adder.
        adder = STATIC_REBOUND_TILE_W / STATIC_TILE_W
        assert 0.005 < adder < 0.03

    def test_power_is_energy_over_time(self):
        report = energy_of_stats(stats_with(Scheme.REBOUND))
        expected = report.total_j / (report.runtime_cycles * 1e-9)
        assert abs(report.power_w - expected) < 1e-9

    def test_zero_runtime_power_is_zero(self):
        report = energy_of_stats(stats_with(Scheme.GLOBAL, runtime=0.0))
        assert report.power_w == 0.0

    def test_ed2_penalizes_delay_quadratically(self):
        fast = energy_of_stats(stats_with(Scheme.GLOBAL, runtime=1e5))
        slow = energy_of_stats(stats_with(Scheme.GLOBAL, runtime=2e5))
        # Energy grows ~2x (static) but delay doubles: ED^2 grows ~8x.
        assert ed2(slow) > 4 * ed2(fast)

    def test_by_event_breakdown_complete(self):
        report = energy_of_stats(stats_with(Scheme.REBOUND))
        assert "instr" in report.by_event
        assert "msg" in report.by_event
        assert abs(sum(report.by_event.values()) - report.dynamic_j) < 1e-12

    def test_model_direct_evaluation(self):
        config = MachineConfig.scaled(n_cores=8, scheme=Scheme.REBOUND)
        model = PowerModel(config)
        report = model.evaluate({"wsig": 1000, "depreg": 500}, 1e6,
                                instructions=1_000_000, messages=100)
        assert report.total_j > 0
