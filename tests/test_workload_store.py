"""Tests for the content-addressed workload store and the workload
registry.

The store guarantee: a store hit deserializes to *exactly* the workload
a fresh build would produce — equal spec, byte-for-byte identical IR —
and a stored workload simulates identically, so the store can never
change a result.  The registry mirrors the scheme registry: built-ins
are plain names, out-of-tree generators ride a picklable
``WorkloadTag``.
"""

import pickle

import pytest

from repro.harness.engine import (
    ExperimentEngine,
    RunKey,
    execute_run,
    resolve_config,
)
from repro.harness.workload_store import WorkloadStore, generator_fingerprint
from repro.params import MachineConfig, Scheme
from repro.trace import TraceBuilder
from repro.workloads import (
    get_workload,
    list_workloads,
    register_workload,
    registered_workloads,
    resolve_workload,
    unregister_workload,
    workload_fingerprint,
    workload_name,
    WorkloadTag,
)
from repro.workloads.base import WorkloadSpec

SCALE = 300
INTERVALS = 1.5


def small_config(**over):
    return MachineConfig.scaled(n_cores=4, scheme=Scheme.NONE,
                                scale=SCALE, **over)


class TestStoreRoundTrip:
    def test_store_hit_equals_fresh_build_byte_for_byte(self, tmp_path):
        store = WorkloadStore(tmp_path)
        config = small_config()
        cold = store.get_or_build("ocean", 4, config, INTERVALS, 7)
        assert store.misses == 1 and store.hits == 0
        warm = store.get_or_build("ocean", 4, config, INTERVALS, 7)
        assert store.hits == 1
        fresh = get_workload("ocean", 4, config, intervals=INTERVALS,
                             seed=7)
        assert warm == fresh
        assert warm.to_bytes() == fresh.to_bytes() == cold.to_bytes()

    def test_distinct_parameters_distinct_entries(self, tmp_path):
        store = WorkloadStore(tmp_path)
        config = small_config()
        rescaled = config.replace(
            checkpoint_interval=2 * config.checkpoint_interval)
        digests = {
            store.digest_for("ocean", 4, config, INTERVALS, 1),
            store.digest_for("ocean", 8, config, INTERVALS, 1),
            store.digest_for("ocean", 4, rescaled, INTERVALS, 1),
            store.digest_for("ocean", 4, config, 2 * INTERVALS, 1),
            store.digest_for("ocean", 4, config, INTERVALS, 2),
            store.digest_for("fft", 4, config, INTERVALS, 1),
        }
        assert len(digests) == 6

    def test_builtin_entries_shared_across_other_config_axes(self):
        # Built-in generators consume only checkpoint_interval, so a
        # scheme change or a non-interval override must address the
        # same stored workload (that sharing is the point of the store).
        store = WorkloadStore("unused")
        a = small_config()
        b = small_config(detection_latency=9_999).with_scheme(
            Scheme.REBOUND)
        assert store.digest_for("ocean", 4, a, INTERVALS, 1) == \
            store.digest_for("ocean", 4, b, INTERVALS, 1)

    def test_corrupt_entry_rebuilt(self, tmp_path):
        store = WorkloadStore(tmp_path)
        config = small_config()
        store.get_or_build("fft", 4, config, INTERVALS, 1)
        digest = store.digest_for("fft", 4, config, INTERVALS, 1)
        store.path_for(digest).write_bytes(b"garbage")
        spec = store.get_or_build("fft", 4, config, INTERVALS, 1)
        assert spec == get_workload("fft", 4, config,
                                    intervals=INTERVALS, seed=1)

    def test_ensure_builds_once(self, tmp_path):
        store = WorkloadStore(tmp_path)
        config = small_config()
        digest = store.ensure("water_sp", 4, config, INTERVALS, 1)
        path = store.path_for(digest)
        mtime = path.stat().st_mtime_ns
        assert store.ensure("water_sp", 4, config, INTERVALS, 1) == digest
        assert path.stat().st_mtime_ns == mtime

    def test_generator_fingerprint_is_stable(self):
        assert generator_fingerprint() == generator_fingerprint()

    def test_unwritable_store_disables_itself(self):
        store = WorkloadStore("/proc/no-such-dir/store")
        config = small_config()
        spec = store.get_or_build("fft", 4, config, INTERVALS, 1)
        assert spec.n_threads == 4          # build still succeeds
        assert store.disabled
        # Subsequent calls skip the disk entirely (no more miss I/O).
        store.get_or_build("fft", 4, config, INTERVALS, 1)
        assert store.misses == 1
        assert store.ensure("fft", 4, config, INTERVALS, 1) is None


class TestEngineIntegration:
    KEYS = [RunKey("water_sp", 4, scheme, INTERVALS, 1, SCALE)
            for scheme in (Scheme.NONE, Scheme.GLOBAL, Scheme.REBOUND)]

    def test_schemes_share_one_stored_workload(self, tmp_path):
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                               use_disk_cache=True)
        eng.run_many(self.KEYS)
        assert len(list(eng.workload_store.root.glob("*.wl"))) == 1
        assert eng.workload_store.hits == len(self.KEYS)

    def test_prebuild_failure_defers_to_the_run(self, tmp_path):
        # A builder that raises must not abort run_many from the
        # prebuild pass: the failure surfaces in the failing run itself,
        # and runs listed before it still complete.
        def broken(n_threads, config, intervals, seed):
            raise RuntimeError("builder exploded")

        tag = register_workload("custom_wl", broken,
                                fingerprint="broken-v1")
        try:
            # Two tagged keys share one store digest (same resolved
            # config; fault_at is not part of it), so the prebuild pass
            # really attempts — and must survive — the broken builder.
            bad = [RunKey(tag, 4, Scheme.NONE, INTERVALS, 1, SCALE),
                   RunKey(tag, 4, Scheme.NONE, INTERVALS, 1, SCALE,
                          fault_at=5_000.0)]
            eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                   use_disk_cache=True)
            with pytest.raises(RuntimeError, match="builder exploded"):
                eng.run_many(self.KEYS + bad)
            for key in self.KEYS:       # healthy siblings completed
                assert key in eng.memo
        finally:
            unregister_workload("custom_wl")

    def test_stored_results_match_storeless(self, tmp_path):
        stored = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_disk_cache=True).run_many(self.KEYS)
        plain = ExperimentEngine(jobs=1,
                                 use_disk_cache=False).run_many(self.KEYS)
        for key in self.KEYS:
            assert stored[key] == plain[key], key

    def test_parallel_workers_read_the_store(self, tmp_path):
        eng = ExperimentEngine(jobs=2, cache_dir=tmp_path,
                               use_disk_cache=True)
        got = eng.run_many(self.KEYS)
        assert len(list(eng.workload_store.root.glob("*.wl"))) == 1
        plain = ExperimentEngine(jobs=1,
                                 use_disk_cache=False).run_many(self.KEYS)
        for key in self.KEYS:
            assert got[key] == plain[key], key

    def test_no_cache_engine_has_no_store(self, tmp_path):
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                               use_disk_cache=False)
        assert eng.workload_store is None
        eng.run(self.KEYS[0])
        assert not (tmp_path / "workloads").exists()

    def test_execute_run_with_store_matches_without(self, tmp_path):
        key = RunKey("blackscholes", 4, Scheme.REBOUND, INTERVALS, 1,
                     SCALE, io_every=2_000)
        store = WorkloadStore(tmp_path)
        assert execute_run(key, store) == execute_run(key)
        assert store.misses == 1


def _custom_builder(n_threads, config, intervals, seed):
    traces = []
    for tid in range(n_threads):
        trace = TraceBuilder()
        trace.compute(100 + seed)
        trace.store(tid)
        trace.load(tid)
        traces.append(trace.build())
    return WorkloadSpec(name="custom", traces=traces)


class TestRegistry:
    def test_builtins_resolve_to_plain_names(self):
        assert resolve_workload("ocean") == "ocean"
        assert workload_name("ocean") == "ocean"
        assert "ocean" in registered_workloads()

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_workload("doom")

    def test_builtin_cannot_be_replaced(self):
        with pytest.raises(ValueError, match="built-in"):
            register_workload("ocean", _custom_builder)
        with pytest.raises(ValueError, match="built-in"):
            unregister_workload("ocean")

    def test_register_resolve_build_unregister(self):
        tag = register_workload("custom_wl", _custom_builder)
        try:
            assert tag == WorkloadTag("custom_wl")
            assert resolve_workload("custom_wl") is tag
            assert workload_name(tag) == "custom_wl"
            assert "custom_wl" in list_workloads()
            spec = get_workload(tag, 2, small_config(), 1.0, 3)
            assert spec.n_threads == 2
            assert spec.traces[0] == [(0, 103), (2, 0), (1, 0)]
        finally:
            unregister_workload("custom_wl")
        assert "custom_wl" not in list_workloads()
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload(tag, 2, small_config(), 1.0, 3)

    def test_duplicate_needs_replace(self):
        register_workload("custom_wl", _custom_builder)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_workload("custom_wl", _custom_builder)
            register_workload("custom_wl", _custom_builder, replace=True)
        finally:
            unregister_workload("custom_wl")

    def test_tag_pickles(self):
        tag = WorkloadTag("custom_wl")
        assert pickle.loads(pickle.dumps(tag)) == tag

    def test_tagged_runkey_executes(self):
        tag = register_workload("custom_wl", _custom_builder)
        try:
            eng = ExperimentEngine(jobs=1, use_disk_cache=False)
            stats = eng.run(RunKey(tag, 2, Scheme.NONE, 1.0, 1, SCALE))
            assert stats.total_instructions > 0
        finally:
            unregister_workload("custom_wl")

    def test_fingerprint_bump_invalidates_result_cache(self, tmp_path):
        # The code fingerprint cannot see out-of-tree generator sources,
        # so the registration fingerprint must be part of the *result*
        # cache identity: bumping it re-addresses cached SimStats.
        tag = register_workload("custom_wl", _custom_builder,
                                fingerprint="v1")
        key = RunKey(tag, 2, Scheme.NONE, 1.0, 1, SCALE)
        try:
            eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                   use_disk_cache=True)
            v1_path = eng._cache_path(key)
            register_workload("custom_wl", _custom_builder,
                              fingerprint="v2", replace=True)
            assert eng._cache_path(key) != v1_path
        finally:
            unregister_workload("custom_wl")
        # Built-in paths carry no workload-fingerprint component (the
        # pre-registry cache layout is pinned by golden tests).

    def test_unfingerprinted_workload_bypasses_result_cache(self,
                                                            tmp_path):
        # Without a fingerprint there is no invalidation signal for an
        # out-of-tree generator at all, so its results must be
        # recomputed every session, never served from disk.
        tag = register_workload("custom_wl", _custom_builder)
        key = RunKey(tag, 2, Scheme.NONE, 1.0, 1, SCALE)
        try:
            writer = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                      use_disk_cache=True)
            writer.run(key)
            assert list(tmp_path.glob("*.pkl")) == []   # nothing stored
            reader = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                      use_disk_cache=True)
            reader.run(key)
            assert len(reader.profile) == 1             # recomputed
            assert reader.disk_hits == 0
        finally:
            unregister_workload("custom_wl")

    def test_unfingerprinted_workload_bypasses_store(self, tmp_path):
        tag = register_workload("custom_wl", _custom_builder)
        try:
            assert workload_fingerprint(tag) is None
            store = WorkloadStore(tmp_path)
            spec = store.get_or_build(tag, 2, small_config(), 1.0, 1)
            assert spec.n_threads == 2
            assert list(tmp_path.iterdir()) == []
        finally:
            unregister_workload("custom_wl")

    def test_fingerprinted_workload_uses_store(self, tmp_path):
        tag = register_workload("custom_wl", _custom_builder,
                                fingerprint="custom-v1")
        try:
            store = WorkloadStore(tmp_path)
            cold = store.get_or_build(tag, 2, small_config(), 1.0, 1)
            warm = store.get_or_build(tag, 2, small_config(), 1.0, 1)
            assert store.hits == 1
            assert warm == cold
        finally:
            unregister_workload("custom_wl")

    def test_builtin_fingerprints_present(self):
        for name in list_workloads():
            assert workload_fingerprint(name) is not None

    def test_resolved_config_drives_store_key(self):
        # An overridden checkpoint_interval re-addresses the workload:
        # the store key must come from the *resolved* config.
        key = RunKey("ocean", 4, Scheme.NONE, INTERVALS, 1, SCALE)
        bigger = RunKey("ocean", 4, Scheme.NONE, INTERVALS, 1, SCALE,
                        overrides={"checkpoint_interval": 99_999})
        assert resolve_config(bigger).checkpoint_interval == 99_999
        store = WorkloadStore("unused")
        assert store.digest_for(key.app, 4, resolve_config(key),
                                INTERVALS, 1) != \
            store.digest_for(bigger.app, 4, resolve_config(bigger),
                             INTERVALS, 1)

    def test_registered_generator_keyed_by_full_config(self, tmp_path):
        # A registered builder receives the whole config, so the store
        # must assume any config field can shape its output: two sweep
        # points differing only in detection_latency get distinct
        # entries (a shared entry would silently serve the wrong
        # workload to one of them).
        def config_sensitive(n_threads, config, intervals, seed):
            trace = TraceBuilder()
            trace.compute(config.detection_latency)
            return WorkloadSpec(name="sens",
                                traces=[trace.build()] * n_threads)

        tag = register_workload("custom_wl", config_sensitive,
                                fingerprint="sens-v1")
        try:
            store = WorkloadStore(tmp_path)
            a = store.get_or_build(tag, 1, small_config(), 1.0, 1)
            b = store.get_or_build(
                tag, 1, small_config(detection_latency=7_777), 1.0, 1)
            assert store.hits == 0 and store.misses == 2
            assert a.traces[0] != b.traces[0]
            assert b.traces[0] == [(0, 7_777)]
        finally:
            unregister_workload("custom_wl")
