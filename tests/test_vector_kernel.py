"""Differential suite for the vectorized multi-replica campaign kernel.

``repro.sim.vector.run_replica_batch`` advances N fault replicas of one
workload through a shared fault-free leader machine, forking each
replica out at its first fault-detection time.  Nothing about that is
allowed to be observable: every replica's ``SimStats`` — runtime, the
exact cycle-bucket partition, per-core stats, checkpoint/rollback event
lists, fault accounting, message and log counters — must be
bit-identical to a scalar ``Machine.run`` of the same (config,
workload, faults), for every registered scheme, with fault campaigns,
output-I/O injection and cluster mode in the mix.  The engine-level
grouping (``ExperimentEngine`` batching same-workload RunKeys) is held
to the same standard, and every fallback edge (no numpy, legacy closure
callbacks, ``REPRO_VECTOR=0``) must land on the scalar path silently
producing the same results.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.engine import ExperimentEngine, RunKey, execute_batch
from repro.harness.experiments import _campaign_plans
from repro.harness.runner import Runner
from repro.params import MachineConfig, Scheme
from repro.sim.faults import FaultPlan
from repro.sim.machine import Machine, UnforkableMachineError
from repro.sim.stats import CampaignSummary, percentile
from repro.sim.vector import have_numpy, run_replica_batch
from repro.workloads import get_workload, inject_output_io
from tests.invariants import assert_bucket_parity, assert_run_invariants

needs_numpy = pytest.mark.skipif(not have_numpy(),
                                 reason="numpy not installed")

SCALE = 150
INTERVALS = 1.8
APP = "blackscholes"


def _config(n_cores, scheme, cluster=1):
    return MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                scale=SCALE, dep_cluster_size=cluster)


def _spec(n_cores, config, io_every=None):
    spec = get_workload(APP, n_cores, config, intervals=INTERVALS, seed=1)
    if io_every is not None:
        spec = inject_output_io(spec=spec, pid=0,
                                every_instructions=io_every)
    return spec


def _scalar(config, spec, faults):
    return Machine(config, spec, faults=list(faults) or None).run()


def assert_stats_equal(a, b):
    """Exact equality on everything a SimStats reports."""
    assert a.runtime == b.runtime
    assert a.total_instructions == b.total_instructions
    assert a.cores == b.cores
    assert a.cycle_buckets() == b.cycle_buckets()
    assert a.checkpoints == b.checkpoints
    assert a.rollbacks == b.rollbacks
    assert a.injected_faults == b.injected_faults
    assert a.undelivered_faults == b.undelivered_faults
    assert a.availability() == b.availability()
    assert a.effective_availability() == b.effective_availability()
    assert a.base_messages == b.base_messages
    assert a.dep_messages == b.dep_messages
    assert a.log_bytes == b.log_bytes
    assert_bucket_parity(a, b, what="scalar vs vector")


def _campaign(config):
    """Three replicas: an early fault, a two-fault sequence, fault-free."""
    interval = config.checkpoint_interval
    return [
        [(0.9 * interval, 0)],
        [(1.1 * interval, 2), (1.45 * interval, 1)],
        [],
    ]


#: (scheme, n_cores, io_every-in-intervals, cluster, with-faults) — every
#: registered scheme appears; NONE has no recovery support, so its
#: replicas must be fault-free (a faulty NONE run raises in the scalar
#: kernel too).
MATRIX = [
    (Scheme.REBOUND, 8, None, 1, True),
    (Scheme.REBOUND, 4, 0.5, 1, True),           # output-I/O injection
    (Scheme.REBOUND, 8, None, 4, True),          # cluster mode (Ch. 8)
    (Scheme.GLOBAL, 8, None, 1, True),
    (Scheme.GLOBAL_DWB, 4, None, 1, True),
    (Scheme.REBOUND_NODWB, 4, 0.5, 1, True),
    (Scheme.REBOUND_BARR, 4, None, 1, True),
    (Scheme.REBOUND_NODWB_BARR, 4, None, 1, True),
    (Scheme.NONE, 4, None, 1, False),
]


@needs_numpy
@pytest.mark.parametrize("scheme,n_cores,io_frac,cluster,with_faults",
                         MATRIX,
                         ids=lambda v: getattr(v, "value", str(v)))
def test_batch_matches_scalar(scheme, n_cores, io_frac, cluster,
                              with_faults):
    config = _config(n_cores, scheme, cluster)
    io_every = int(io_frac * config.checkpoint_interval) \
        if io_frac is not None else None
    spec = _spec(n_cores, config, io_every)
    fault_lists = _campaign(config) if with_faults else [[], []]
    result = run_replica_batch(config, spec, fault_lists)
    assert result.report.width == len(fault_lists)
    assert result.report.spilled + result.report.leader_served \
        == len(fault_lists)
    assert result.report.shared_prefix_cycles >= 0.0
    assert result.report.record_histogram  # the once-per-batch column walk
    for stats, faults in zip(result.stats, fault_lists):
        assert_run_invariants(stats)
        assert_stats_equal(_scalar(config, spec, faults), stats)


@needs_numpy
def test_leader_served_replicas_do_not_alias():
    """Two fault-free replicas in one batch get equal but *distinct*
    SimStats — the engine memoizes per key, so shared mutable stats
    would let one figure's post-processing corrupt another's."""
    config = _config(4, Scheme.REBOUND)
    spec = _spec(4, config)
    result = run_replica_batch(config, spec, [[], []])
    a, b = result.stats
    assert a is not b
    assert a.cores is not b.cores
    assert_stats_equal(a, b)
    assert result.report.leader_served == 2
    assert result.report.spilled == 0


@needs_numpy
def test_forced_spill_is_unobservable():
    """A replica forced out of the leader early (mid-interval, long
    before any fault is due) must still report identical stats."""
    config = _config(4, Scheme.REBOUND)
    spec = _spec(4, config)
    faults = [(1.2 * config.checkpoint_interval, 1)]
    forced = [0.37 * config.checkpoint_interval, None]
    result = run_replica_batch(config, spec, [faults, []],
                               forced_spills=forced)
    assert result.report.forced_spills == 1
    assert_stats_equal(_scalar(config, spec, faults), result.stats[0])
    assert_stats_equal(_scalar(config, spec, []), result.stats[1])


@needs_numpy
def test_early_divergence_runs_direct():
    """A replica whose fault lands before the fork threshold skips the
    leader entirely (standalone scalar run) — cheaper than a fork whose
    shared prefix is worth less than the deep copy — while a *forced*
    spill at the same point must still fork (that is what it tests)."""
    from repro.sim.vector import SPILL_THRESHOLD_FRACTION
    config = _config(4, Scheme.REBOUND)
    spec = _spec(4, config)
    threshold = SPILL_THRESHOLD_FRACTION * max(
        trace.instruction_count() for trace in spec.traces)
    early = max(1.0, 0.5 * threshold - config.detection_latency)
    assert early + config.detection_latency < threshold  # genuinely early
    faults = [(early, 1)]
    late = [(1.2 * config.checkpoint_interval, 0)]

    result = run_replica_batch(config, spec, [faults, late, []])
    assert result.report.direct_runs == 1
    assert result.report.spilled == 2          # direct is a spill too
    assert result.report.leader_served == 1
    assert_stats_equal(_scalar(config, spec, faults), result.stats[0])
    assert_stats_equal(_scalar(config, spec, late), result.stats[1])
    assert_stats_equal(_scalar(config, spec, []), result.stats[2])

    forced = run_replica_batch(config, spec, [[], []],
                               forced_spills=[early, None])
    assert forced.report.direct_runs == 0      # forced spills always fork
    assert forced.report.forced_spills == 1
    assert_stats_equal(_scalar(config, spec, []), forced.stats[0])


# -- hypothesis: arbitrary spill points preserve parity ---------------------

_HYP_CONFIG = _config(4, Scheme.REBOUND)
_HYP_SPEC = None
_HYP_SCALAR = {}


def _hyp_fixture():
    """Build the reference workload and scalar runs once — hypothesis
    only varies *where* replicas leave the leader, which must never
    change the results."""
    global _HYP_SPEC
    if _HYP_SPEC is None:
        _HYP_SPEC = _spec(4, _HYP_CONFIG)
        for i, faults in enumerate(_campaign(_HYP_CONFIG)):
            _HYP_SCALAR[i] = _scalar(_HYP_CONFIG, _HYP_SPEC, faults)
    return _HYP_SPEC


@needs_numpy
@given(st.lists(st.one_of(st.none(), st.floats(0.0, INTERVALS)),
                min_size=3, max_size=3))
@settings(max_examples=12, deadline=None)
def test_random_forced_spills_preserve_parity(spill_fractions):
    spec = _hyp_fixture()
    interval = _HYP_CONFIG.checkpoint_interval
    forced = [None if f is None else f * interval
              for f in spill_fractions]
    result = run_replica_batch(_HYP_CONFIG, spec,
                               _campaign(_HYP_CONFIG),
                               forced_spills=forced)
    for i, stats in enumerate(result.stats):
        assert_run_invariants(stats)
        assert_stats_equal(_HYP_SCALAR[i], stats)


# -- fallback edges ---------------------------------------------------------

def test_legacy_closure_makes_machine_unforkable():
    config = _config(4, Scheme.REBOUND)
    machine = Machine(config, _spec(4, config))
    machine.start()
    machine.schedule(machine.now + 10.0, lambda when: None)
    with pytest.raises(UnforkableMachineError):
        machine.fork()


def _engine_keys(n_plans=3):
    keys = [RunKey(app=APP, n_cores=4, scheme=Scheme.REBOUND,
                   intervals=INTERVALS, seed=1, scale=SCALE,
                   fault_plan=FaultPlan(faults=tuple(faults)))
            for faults in _campaign(_config(4, Scheme.REBOUND))[:n_plans]
            if faults]
    keys.append(RunKey(app=APP, n_cores=4, scheme=Scheme.REBOUND,
                       intervals=INTERVALS, seed=1, scale=SCALE))
    return keys


def test_execute_batch_falls_back_on_unforkable(monkeypatch):
    import repro.sim.vector as vector

    def raiser(*args, **kwargs):
        raise UnforkableMachineError("pending closure callback")

    monkeypatch.setattr(vector, "run_replica_batch", raiser)
    keys = _engine_keys()
    stats_list, fell_back = execute_batch(keys)
    assert fell_back
    for key, stats in zip(keys, stats_list):
        assert_stats_equal(
            _scalar(resolve := _config(4, Scheme.REBOUND),
                    _spec(4, resolve), key.fault_list() or []), stats)


def test_engine_without_numpy_warns_and_matches(monkeypatch, capsys):
    import repro.sim.vector as vector
    monkeypatch.delenv("REPRO_VECTOR", raising=False)  # auto mode
    monkeypatch.setattr(vector, "_np", None)
    assert not have_numpy()
    engine = ExperimentEngine(jobs=1, use_disk_cache=False)
    assert not engine.vector
    keys = _engine_keys()
    results = engine.run_many(keys)
    assert "numpy unavailable" in capsys.readouterr().out
    for key in keys:
        assert_run_invariants(results[key])
    # An explicit opt-out must stay silent.
    quiet = ExperimentEngine(jobs=1, use_disk_cache=False, vector=False)
    quiet.run_many(keys)
    assert "numpy unavailable" not in capsys.readouterr().out


# -- engine-level batching --------------------------------------------------

@needs_numpy
def test_engine_batches_match_scalar_engine(monkeypatch):
    keys = _engine_keys()
    vec = ExperimentEngine(jobs=1, use_disk_cache=False, vector=True)
    scal = ExperimentEngine(jobs=1, use_disk_cache=False, vector=False)
    res_v, res_s = vec.run_many(keys), scal.run_many(keys)
    width = len(keys)
    for key in keys:
        assert_stats_equal(res_s[key], res_v[key])
        assert vec.batch_width[key] == width
        assert key not in scal.batch_width
    # batched rows carry their width in the --profile table
    assert all(row[7] == width for row in vec.profile_rows())
    assert all(row[7] == 1 for row in scal.profile_rows())
    # memoization still returns the same objects on re-request
    again = vec.run_many(keys)
    assert all(again[key] is res_v[key] for key in keys)
    # REPRO_VECTOR=0 disables batching; unset means auto
    monkeypatch.setenv("REPRO_VECTOR", "0")
    assert not ExperimentEngine(jobs=1, use_disk_cache=False).vector
    monkeypatch.delenv("REPRO_VECTOR")
    assert ExperimentEngine(jobs=1, use_disk_cache=False).vector \
        == have_numpy()


# -- satellite micro-asserts ------------------------------------------------

def test_percentile_cache_matches_fresh_sort():
    """CampaignSummary sorts its latency distribution once; every
    percentile query must equal the sort-per-call reference, including
    after the distribution grows (cache invalidation)."""
    latencies = [310.0, 95.5, 512.25, 95.5, 1204.0, 87.0, 640.125]
    summary = CampaignSummary(recovery_latencies=list(latencies))
    for q in (0, 10, 25, 50, 75, 90, 95, 99, 100):
        assert summary.recovery_latency_percentile(q) \
            == percentile(latencies, q)
    summary.recovery_latencies.extend([42.0, 2048.5])
    grown = latencies + [42.0, 2048.5]
    for q in (0, 50, 99):
        assert summary.recovery_latency_percentile(q) \
            == percentile(grown, q)


def test_campaign_plans_are_shared_across_calls():
    """The seeded plans of one campaign cell are built once: repeated
    calls (fig6_9, fig_l, the invariant benchmarks) get the *same*
    frozen FaultPlan instances."""
    runner = Runner(scale=SCALE, intervals=INTERVALS)
    first = _campaign_plans(runner, 8, 3, 100, 1.0)
    second = _campaign_plans(runner, 8, 3, 100, 1.0)
    assert first == second
    assert all(a is b for a, b in zip(first, second))
    other = _campaign_plans(runner, 8, 3, 101, 1.0)
    assert other != first
