"""Tests for the ``python -m repro.harness`` command-line entry point."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_quick_single_experiment(self, capsys):
        code = main(["fig6_1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6.1" in out
        assert "Rebound" in out
        assert "took" in out

    def test_unknown_experiment_fails(self):
        with pytest.raises(KeyError):
            main(["fig9_9", "--quick"])

    def test_custom_scale_flags(self, capsys):
        code = main(["fig6_1", "--quick", "--scale", "300",
                     "--intervals", "1.5"])
        assert code == 0
        assert "Figure 6.1" in capsys.readouterr().out
