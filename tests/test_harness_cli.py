"""Tests for the ``python -m repro.harness`` command-line entry point."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_quick_single_experiment(self, capsys):
        code = main(["fig6_1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6.1" in out
        assert "Rebound" in out
        assert "took" in out

    def test_unknown_experiment_fails(self):
        with pytest.raises(KeyError):
            main(["fig9_9", "--quick"])

    def test_custom_scale_flags(self, capsys):
        code = main(["fig6_1", "--quick", "--scale", "300",
                     "--intervals", "1.5"])
        assert code == 0
        assert "Figure 6.1" in capsys.readouterr().out


class TestEngineFlags:
    def test_plan_banner_and_no_cache(self, capsys):
        code = main(["fig6_1", "--quick", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[plan]" in out
        assert "cache=off" in out

    def test_profile_table(self, capsys, tmp_path):
        code = main(["fig6_1", "--quick", "--profile",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-run wall clock" in out
        assert "wall s" in out

    def test_jobs_flag_parallel_run(self, capsys, tmp_path):
        code = main(["fig6_1", "--quick", "-j", "2",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "Figure 6.1" in capsys.readouterr().out

    def test_disk_cache_replays_second_session(self, capsys, tmp_path):
        main(["fig6_1", "--quick", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        code = main(["fig6_1", "--quick", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 computed, 2 from disk cache" in out

    def test_cross_figure_dedup_in_plan(self, capsys, tmp_path):
        # fig6_3 and fig6_5 share every scheme run; the union must
        # shrink versus the naive plan total.
        code = main(["fig6_3", "fig6_5", "--quick", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        plan_line = next(l for l in out.splitlines() if "planned runs"
                         in l)
        planned = int(plan_line.split("experiment(s):")[1].split()[0])
        unique = int(plan_line.split("unique")[0].split(",")[-1])
        assert unique < planned
