"""Tests for the ``python -m repro.harness`` command-line entry point."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_quick_single_experiment(self, capsys):
        code = main(["fig6_1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 6.1" in out
        assert "Rebound" in out
        assert "took" in out

    def test_unknown_experiment_fails(self):
        with pytest.raises(KeyError):
            main(["fig9_9", "--quick"])

    def test_custom_scale_flags(self, capsys):
        code = main(["fig6_1", "--quick", "--scale", "300",
                     "--intervals", "1.5"])
        assert code == 0
        assert "Figure 6.1" in capsys.readouterr().out


class TestEngineFlags:
    def test_plan_banner_and_no_cache(self, capsys):
        code = main(["fig6_1", "--quick", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[plan]" in out
        assert "cache=off" in out

    def test_profile_table(self, capsys, tmp_path):
        code = main(["fig6_1", "--quick", "--profile",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-run wall clock" in out
        assert "wall s" in out
        # Sweep-disambiguating columns (cluster, overrides) are present.
        assert "cluster" in out
        assert "overrides" in out

    def test_jobs_flag_parallel_run(self, capsys, tmp_path):
        code = main(["fig6_1", "--quick", "-j", "2",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "Figure 6.1" in capsys.readouterr().out

    def test_disk_cache_replays_second_session(self, capsys, tmp_path):
        main(["fig6_1", "--quick", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        code = main(["fig6_1", "--quick", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 computed, 2 from disk cache" in out

class TestSweepCli:
    def test_quick_sweep_with_axis(self, capsys, tmp_path):
        code = main(["sweep", "--quick",
                     "--axis", "detection_latency=2000,10000",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep over detection_latency" in out
        assert "2 computed" in out

    def test_sweep_replays_from_disk_cache(self, capsys, tmp_path):
        args = ["sweep", "--quick", "--axis", "detection_latency=2000",
                "--cache-dir", str(tmp_path)]
        main(args)
        capsys.readouterr()
        code = main(args)
        assert code == 0
        assert "0 computed, 1 from disk cache" in capsys.readouterr().out

    def test_sweep_requires_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--quick"])

    def test_sweep_rejects_unknown_axis(self, capsys):
        with pytest.raises(ValueError, match="unknown config field"):
            main(["sweep", "--quick", "--axis", "bogus=1", "--no-cache"])

    def test_sweep_rejects_duplicate_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--quick", "--no-cache",
                  "--axis", "detection_latency=2000",
                  "--axis", "detection_latency=10000"])
        assert "given twice" in capsys.readouterr().err

    def test_sweep_multi_axis_variants(self, capsys, tmp_path):
        code = main(["sweep", "--quick",
                     "--axis", "detection_latency=2000,10000",
                     "--axis", "l1.size_bytes=512,1024",
                     "--schemes", "global", "rebound@2",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "l1.size_bytes" in out
        assert "rebound@2" in out
        assert "8 runs" in out

    def test_workloads_flag_resolves_registry_names(self, capsys,
                                                    tmp_path):
        code = main(["sweep", "--quick",
                     "--axis", "detection_latency=2000",
                     "--workloads", "water_sp",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "water_sp" in capsys.readouterr().out

    def test_workloads_flag_rejects_unknown_name(self, capsys):
        with pytest.raises(ValueError, match="unknown workload"):
            main(["sweep", "--quick", "--no-cache",
                  "--axis", "detection_latency=2000",
                  "--workloads", "doom"])

    def test_l_sensitivity_experiment(self, capsys, tmp_path):
        code = main(["fig_l_sensitivity", "--quick",
                     "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "L sensitivity" in out
        assert "L/interval" in out


class TestServeCli:
    def _submit(self, spool, capsys):
        code = main(["serve", "submit", "--quick", "--seeds", "1",
                     "--apps", "blackscholes", "--schemes", "rebound",
                     "--label", "cli", "--spool", str(spool)])
        assert code == 0
        return capsys.readouterr().out.strip().splitlines()[-1]

    def test_submit_serve_status_summary_lifecycle(self, capsys,
                                                   tmp_path):
        spool = tmp_path / "spool"
        job = self._submit(spool, capsys)
        code = main(["serve", "status", job, "--spool", str(spool)])
        assert code == 0
        assert "queued" in capsys.readouterr().out
        code = main(["serve", "start", "--drain", "--spool", str(spool),
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "1 job(s) executed" in capsys.readouterr().out
        code = main(["serve", "drain", "--spool", str(spool),
                     "--timeout", "5"])
        assert code == 0
        capsys.readouterr()
        code = main(["serve", "summary", job, "--spool", str(spool)])
        assert code == 0
        assert "Journal summary" in capsys.readouterr().out

    def test_cancel_and_unknown_job(self, capsys, tmp_path):
        spool = tmp_path / "spool"
        job = self._submit(spool, capsys)
        assert main(["serve", "cancel", job,
                     "--spool", str(spool)]) == 0
        capsys.readouterr()
        assert main(["serve", "status", job, "--spool", str(spool)]) == 0
        assert "cancelled" in capsys.readouterr().out
        assert main(["serve", "status", "nope",
                     "--spool", str(spool)]) == 1
        assert main(["serve", "cancel", "nope",
                     "--spool", str(spool)]) == 1
        assert main(["serve", "summary", job,
                     "--spool", str(spool)]) == 1  # nothing landed

    def test_campaign_routes_through_service(self, capsys, tmp_path):
        code = main(["campaign", "--serve", "--seeds", "1",
                     "--apps", "blackscholes", "--cores", "4",
                     "--schemes", "rebound", "--scale", "300",
                     "--intervals", "1.5",
                     "--spool", str(tmp_path / "spool"),
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        out = capsys.readouterr().out
        assert "[serve] job" in out
        assert "Figure 6.9" in out

    def test_sweep_routes_through_service(self, capsys, tmp_path):
        code = main(["sweep", "--quick", "--serve",
                     "--axis", "detection_latency=2000",
                     "--spool", str(tmp_path / "spool"),
                     "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        out = capsys.readouterr().out
        assert "[serve] job" in out
        assert "Sweep over detection_latency" in out


class TestPlanDedup:
    def test_cross_figure_dedup_in_plan(self, capsys, tmp_path):
        # fig6_3 and fig6_5 share every scheme run; the union must
        # shrink versus the naive plan total.
        code = main(["fig6_3", "fig6_5", "--quick", "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        plan_line = next(l for l in out.splitlines() if "planned runs"
                         in l)
        planned = int(plan_line.split("experiment(s):")[1].split()[0])
        unique = int(plan_line.split("unique")[0].split(",")[-1])
        assert unique < planned
