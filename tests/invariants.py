"""Reusable campaign/accounting invariants.

Machine-checkable assertions over a finished run's :class:`SimStats`
(and pairs of runs), shared by the differential campaign suite
(``tests/test_campaign_invariants.py``) and usable by any future
scenario test: instead of pinning spot values, a test asserts that the
*accounting identities* hold — cycle buckets partition the run exactly,
effective availability never exceeds the fault-only metric, every
injected fault is accounted for, and two representations of the same
run agree bucket for bucket.

Every helper raises ``AssertionError`` with a self-describing message;
none of them import pytest, so they work from benchmarks and ad-hoc
scripts too.
"""

from __future__ import annotations

import math

from repro.sim.stats import SimStats

#: The four cycle buckets of the useful-work partition, in table order.
CYCLE_BUCKETS = ("useful", "checkpoint_overhead", "rollback_waste",
                 "recovery")


def _label(stats: SimStats) -> str:
    scheme = getattr(stats.scheme, "value", stats.scheme)
    return f"{stats.workload}/{scheme} x{stats.n_cores}"


# ---------------------------------------------------------------------------
# single-run invariants
# ---------------------------------------------------------------------------

def assert_cycle_partition(stats: SimStats) -> None:
    """useful + checkpoint_overhead + rollback_waste + recovery equals
    runtime x n_cores *exactly*, and no bucket is negative."""
    buckets = stats.cycle_buckets()
    assert tuple(buckets) == CYCLE_BUCKETS, \
        f"{_label(stats)}: bucket keys changed: {tuple(buckets)}"
    for name, value in buckets.items():
        assert value >= 0.0, \
            f"{_label(stats)}: cycle bucket {name} is negative " \
            f"({value!r}); some cycles were charged twice"
    total = math.fsum(buckets.values())
    assert total == stats.total_cycles, \
        f"{_label(stats)}: buckets sum to {total!r}, " \
        f"not total_cycles={stats.total_cycles!r}"
    # The overhead bucket is the gross stall categories net of the
    # overhang; it can never exceed what the categories recorded.
    gross = math.fsum(c.wb_delay + c.wb_imbalance + c.ckpt_sync +
                      c.ipc_delay + c.depset_stall + c.ckpt_backoff
                      for c in stats.cores)
    assert stats.checkpoint_overhead_cycles() <= gross + 1e-9, \
        f"{_label(stats)}: net overhead exceeds gross stall categories"


def assert_availability_bounds(stats: SimStats) -> None:
    """0 <= effective_availability <= availability <= 1 (ulp slack only
    between the two metrics' float paths)."""
    effective = stats.effective_availability()
    raw = stats.availability()
    assert 0.0 <= effective <= 1.0, \
        f"{_label(stats)}: effective availability {effective!r} " \
        f"outside [0, 1]"
    assert 0.0 <= raw <= 1.0, \
        f"{_label(stats)}: availability {raw!r} outside [0, 1]"
    assert effective <= raw or math.isclose(effective, raw,
                                            rel_tol=1e-12), \
        f"{_label(stats)}: effective availability {effective!r} " \
        f"exceeds fault-only availability {raw!r}"


def assert_fault_accounting(stats: SimStats) -> None:
    """Every injected fault is delivered (one rollback) or recorded as
    undelivered; no rollback is free or impossibly large; undelivered
    faults can never masquerade as 0-cycle recoveries."""
    assert 0 <= stats.undelivered_faults <= stats.injected_faults, \
        f"{_label(stats)}: undelivered={stats.undelivered_faults} vs " \
        f"injected={stats.injected_faults}"
    delivered = stats.injected_faults - stats.undelivered_faults
    assert len(stats.rollbacks) == delivered, \
        f"{_label(stats)}: {len(stats.rollbacks)} rollbacks for " \
        f"{delivered} delivered fault(s)"
    for event in stats.rollbacks:
        assert event.latency > 0.0, \
            f"{_label(stats)}: 0-cycle recovery at t=" \
            f"{event.detect_time} (undelivered fault counted as a " \
            f"recovery?)"
        assert 1 <= event.size <= stats.n_cores, \
            f"{_label(stats)}: |IREC|={event.size} outside [1, n_cores]"
        assert event.wasted_cycles >= 0.0
        assert event.max_depth >= 1
    if stats.undelivered_faults and not stats.rollbacks:
        # The fake-0-cycle-recovery regression (PR 2): the stats must
        # refuse to summarize recovery latency rather than report 0.
        try:
            stats.mean_recovery_latency()
        except RuntimeError:
            pass
        else:
            raise AssertionError(
                f"{_label(stats)}: mean_recovery_latency() did not "
                f"refuse a run whose only faults were undelivered")
    # Back-to-back faults must not double-count wall-clock time: per
    # core, recovery and net discarded work each fit inside the run.
    for pid, core in enumerate(stats.cores):
        assert core.recovery <= stats.runtime + 1e-9, \
            f"{_label(stats)}: core {pid} recovery {core.recovery!r} " \
            f"exceeds runtime {stats.runtime!r} (overlapping windows " \
            f"counted twice)"
        assert core.rollback_waste <= stats.runtime + 1e-9, \
            f"{_label(stats)}: core {pid} waste {core.rollback_waste!r} " \
            f"exceeds runtime {stats.runtime!r}"
    assert stats.work_lost_cycles() <= stats.total_cycles + 1e-9, \
        f"{_label(stats)}: work lost exceeds total machine cycles"


def assert_fault_free(stats: SimStats) -> None:
    """A run with no faults loses nothing: waste and recovery buckets
    are exactly zero and fault-only availability is exactly 1."""
    assert stats.injected_faults == 0 and not stats.rollbacks
    buckets = stats.cycle_buckets()
    assert buckets["rollback_waste"] == 0.0
    assert buckets["recovery"] == 0.0
    assert stats.availability() == 1.0, \
        f"{_label(stats)}: fault-free availability != 1"


def assert_run_invariants(stats: SimStats) -> None:
    """All single-run invariants (the differential suite's workhorse)."""
    assert_cycle_partition(stats)
    assert_availability_bounds(stats)
    assert_fault_accounting(stats)
    if stats.injected_faults == 0:
        assert_fault_free(stats)
    # Nothing is ever double-audited away: the engine-side audit must
    # agree with the assertions above.
    stats.verify_cycle_accounting()


# ---------------------------------------------------------------------------
# cross-run invariants
# ---------------------------------------------------------------------------

def assert_bucket_parity(a: SimStats, b: SimStats,
                         what: str = "runs") -> None:
    """Two representations of the same run (compiled vs tuple traces,
    cached vs fresh) agree on every cycle bucket and both metrics."""
    ab, bb = a.cycle_buckets(), b.cycle_buckets()
    for name in CYCLE_BUCKETS:
        assert ab[name] == bb[name], \
            f"{_label(a)}: {what} disagree on bucket {name}: " \
            f"{ab[name]!r} != {bb[name]!r}"
    assert a.effective_availability() == b.effective_availability(), \
        f"{_label(a)}: {what} disagree on effective availability"
    assert a.availability() == b.availability(), \
        f"{_label(a)}: {what} disagree on availability"


def assert_monotone(values, label: str, decreasing: bool = False) -> None:
    """``values`` (in sweep order) never move the wrong way.

    ``decreasing=False`` asserts non-decreasing (recovery latency vs L);
    ``decreasing=True`` asserts non-increasing (availability vs fault
    pressure)."""
    values = list(values)
    for earlier, later in zip(values, values[1:]):
        ok = later <= earlier if decreasing else later >= earlier
        assert ok, \
            f"{label}: not monotone " \
            f"{'non-increasing' if decreasing else 'non-decreasing'}: " \
            f"{values}"
