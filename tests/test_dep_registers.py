"""Tests for the Dep register file (MyProducers/MyConsumers/WSIG sets)."""

import pytest

from repro.core.dep_registers import DepRegisterFile, mask_to_pids


def make_file(n_sets=4) -> DepRegisterFile:
    return DepRegisterFile(pid=0, n_sets=n_sets, wsig_bits=128,
                           wsig_hashes=3)


class TestMaskHelpers:
    def test_mask_to_pids(self):
        assert mask_to_pids(0) == []
        assert mask_to_pids(0b1) == [0]
        assert mask_to_pids(0b1010010) == [1, 4, 6]


class TestRecording:
    def test_record_producer_sets_bit(self):
        file = make_file()
        file.record_producer(3)
        assert file.active.producers == 0b1000

    def test_on_write_populates_wsig(self):
        file = make_file()
        file.on_write(42)
        claims, genuine, dep = file.query_writer(42)
        assert claims and genuine
        assert dep is file.active

    def test_query_checks_newest_first(self):
        file = make_file()
        file.on_write(10)              # interval 1
        file.open_interval(100.0)
        file.on_write(10)              # interval 2 writes the same line
        claims, genuine, dep = file.query_writer(10)
        assert claims
        assert dep.interval_id == 2    # newest match wins (conservative)

    def test_query_falls_back_to_older_set(self):
        file = make_file()
        file.on_write(10)
        file.open_interval(100.0)
        claims, genuine, dep = file.query_writer(10)
        assert claims
        assert dep.interval_id == 1

    def test_record_consumer_in_matching_set(self):
        file = make_file()
        file.on_write(10)
        file.open_interval(100.0)
        _, _, dep = file.query_writer(10)
        file.record_consumer(dep, consumer=5, genuine=True)
        assert dep.consumers == 1 << 5
        assert dep.consumers_genuine == 1 << 5
        assert file.active.consumers == 0

    def test_fp_edge_not_genuine(self):
        file = make_file()
        file.on_write(10)
        dep = file.active
        file.record_consumer(dep, consumer=2, genuine=False)
        assert dep.consumers == 0b100
        assert dep.consumers_genuine == 0


class TestLifecycle:
    def test_open_interval_rotates(self):
        file = make_file()
        first = file.active
        file.open_interval(10.0)
        assert file.active is not first
        assert first.ckpt_started
        assert len(file.sets) == 2

    def test_recycle_requires_completion_plus_latency(self):
        file = make_file()
        file.open_interval(10.0)
        file.sets[0].ckpt_complete_time = 100.0
        file.recycle(now=150.0, detection_latency=100.0)
        assert len(file.sets) == 2     # only 50 cycles elapsed
        file.recycle(now=250.0, detection_latency=100.0)
        assert len(file.sets) == 1

    def test_incomplete_checkpoint_never_recycled(self):
        file = make_file()
        file.open_interval(10.0)
        file.recycle(now=1e12, detection_latency=1.0)
        assert len(file.sets) == 2     # writebacks still in flight

    def test_can_open_respects_capacity(self):
        file = make_file(n_sets=2)
        assert file.can_open_interval(0.0, 100.0)
        file.open_interval(1.0)
        assert not file.can_open_interval(2.0, 100.0)

    def test_stall_until(self):
        file = make_file(n_sets=2)
        file.open_interval(1.0)
        assert file.stall_until(100.0) is None   # oldest still open
        file.sets[0].ckpt_complete_time = 50.0
        assert file.stall_until(100.0) == 150.0

    def test_open_interval_asserts_capacity(self):
        file = make_file(n_sets=2)
        file.open_interval(1.0)
        with pytest.raises(AssertionError):
            file.open_interval(2.0)

    def test_force_open_merges_oldest(self):
        file = make_file(n_sets=2)
        file.active.producers = 0b10
        file.active.consumers = 0b100
        file.on_write(7)
        file.open_interval(1.0)
        file.active.producers = 0b1000
        file.on_write(9)
        merged = file.force_open(2.0)
        assert len(file.sets) == 2
        survivor = file.sets[0]
        # The merge unions masks and signatures (conservative).
        assert survivor.producers & 0b10
        assert survivor.producers & 0b1000
        assert survivor.consumers & 0b100
        claims, _, _ = file.query_writer(7)
        assert claims
        assert merged is file.active


class TestRollbackSupport:
    def test_consumers_after_unions_newer_intervals(self):
        file = make_file()
        file.active.consumers = 0b10          # interval 1
        file.active.consumers_genuine = 0b10
        file.open_interval(1.0)
        file.active.consumers = 0b100         # interval 2
        file.open_interval(2.0)
        file.active.consumers = 0b1000        # interval 3
        mask, genuine = file.consumers_after(1)
        assert mask == 0b1100
        assert genuine == 0
        mask_all, _ = file.consumers_after(0)
        assert mask_all == 0b1110

    def test_drop_rolled_back_clears_and_renumbers(self):
        file = make_file()
        file.open_interval(1.0)               # intervals 1, 2
        file.open_interval(2.0)               # intervals 1, 2, 3
        file.sets[0].ckpt_complete_time = 1.0
        file.drop_rolled_back(1, now=50.0)
        ids = [d.interval_id for d in file.sets]
        assert ids == [1, 2]                  # fresh interval renumbered 2
        assert file.active.producers == 0
        assert len(file.active.wsig) == 0
