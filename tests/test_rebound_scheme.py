"""Tests for the Rebound checkpointing policy (Sections 3.3.4, 4.1)."""

from repro.core.checkpoint_protocol import build_ichk
from repro.params import Scheme
from repro.trace import COMPUTE, END, LOAD, STORE
from tests.conftest import make_machine, tiny_config


def partial_run(machine, cycles):
    """Run the machine but stop caring after ``cycles`` (full run)."""
    return machine.run()


class TestIchkConstruction:
    def test_isolated_core_checkpoints_alone(self):
        traces = [
            [(STORE, 1), (COMPUTE, 5000), (END,)],
            [(STORE, 99), (COMPUTE, 5000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND))
        stats = machine.run()
        interval_events = [e for e in stats.checkpoints
                           if e.kind == "interval"]
        assert interval_events
        assert all(e.size == 1 for e in interval_events)

    def test_producer_joins_consumers_checkpoint(self):
        """Figure 2.1(b): if the consumer checkpoints, the producer must
        checkpoint with it."""
        traces = [
            [(STORE, 5), (COMPUTE, 9000), (END,)],
            [(COMPUTE, 200), (LOAD, 5), (COMPUTE, 4000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND))
        stats = machine.run()
        sizes = {e.size for e in stats.checkpoints
                 if e.kind == "interval"}
        assert 2 in sizes

    def test_ichk_closure_is_transitive(self):
        traces = [
            [(STORE, 5), (COMPUTE, 12000), (END,)],
            [(COMPUTE, 200), (LOAD, 5), (STORE, 6), (COMPUTE, 12000),
             (END,)],
            [(COMPUTE, 600), (LOAD, 6), (COMPUTE, 3000), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(3, Scheme.REBOUND))
        stats = machine.run()
        assert any(e.size == 3 for e in stats.checkpoints)

    def test_decline_after_recent_checkpoint(self):
        """A producer that already checkpointed declines: its fresh
        MyConsumers no longer names the requester (Section 3.3.4)."""
        traces = [
            # P0 produces then quickly expires its own interval.
            [(STORE, 5), (COMPUTE, 2500), (STORE, 5), (COMPUTE, 12000),
             (END,)],
            # P1 consumes early, checkpoints much later.
            [(COMPUTE, 100), (LOAD, 5), (COMPUTE, 8000), (END,)],
        ]
        machine = make_machine(
            traces, config=tiny_config(2, Scheme.REBOUND,
                                       checkpoint_interval=2_000))
        stats = machine.run()
        assert stats.declines >= 1

    def test_build_ichk_direct(self):
        traces = [
            [(STORE, 5), (COMPUTE, 500), (END,)],
            [(COMPUTE, 100), (LOAD, 5), (COMPUTE, 500), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.REBOUND,
                                                  checkpoint_interval=10**9))
        machine.run()
        result = build_ichk(machine.scheme, initiator=1, now=1e9)
        assert result.ok
        assert result.members == {0, 1}
        assert result.genuine_members == {0, 1}
        assert result.depth >= 1

    def test_wsig_false_positive_inflates_ichk(self):
        """With a degenerate 2-bit WSIG, aliasing creates spurious
        members; the genuine closure stays smaller (Table 6.1 row 1)."""
        traces = [
            [(STORE, 3), (COMPUTE, 2000), (END,)],          # writes 3
            # reads line 40 (never written): stale LW-ID can only match
            # through Bloom aliasing.
            [(STORE, 40), (COMPUTE, 2500), (END,)],
            [(COMPUTE, 50), (LOAD, 3), (COMPUTE, 6000), (END,)],
        ]
        machine = make_machine(
            traces, config=tiny_config(3, Scheme.REBOUND, wsig_bits=2,
                                       wsig_hashes=1))
        stats = machine.run()
        assert stats.wsig_tests > 0
        # Not guaranteed aliasing in every interleaving, but the counter
        # plumbing must be alive: fp <= tests.
        assert 0 <= stats.wsig_false_positives <= stats.wsig_tests


class TestBusyAndNack:
    def test_concurrent_initiators_busy_retry(self):
        """Two clusters sharing one producer: the second initiator gets
        Busy while the first's checkpoint is in flight and retries."""
        config = tiny_config(3, Scheme.REBOUND_NODWB,
                             checkpoint_interval=2_000,
                             sync_cycles=4_000)  # long checkpoint window
        traces = [
            [(STORE, 5), (COMPUTE, 2500), (END,)],
            [(LOAD, 5), (COMPUTE, 2450), (COMPUTE, 3000), (END,)],
            [(LOAD, 5), (COMPUTE, 2400), (COMPUTE, 3000), (END,)],
        ]
        machine = make_machine(traces, config=config)
        stats = machine.run()
        # Both consumers want the shared producer around the same time;
        # with a 4k-cycle sync the windows overlap.
        assert stats.busy_retries >= 1

    def test_run_completes_after_busy(self):
        config = tiny_config(3, Scheme.REBOUND_NODWB,
                             checkpoint_interval=2_000,
                             sync_cycles=4_000)
        traces = [
            [(STORE, 5), (COMPUTE, 6000), (END,)],
            [(LOAD, 5), (COMPUTE, 6000), (END,)],
            [(LOAD, 5), (COMPUTE, 6000), (END,)],
        ]
        machine = make_machine(traces, config=config)
        stats = machine.run()
        assert all(c.end_time > 0 for c in stats.cores)


class TestDelayedWritebacks:
    def test_dwb_resumes_before_writebacks_finish(self):
        config_nodwb = tiny_config(2, Scheme.REBOUND_NODWB)
        config_dwb = tiny_config(2, Scheme.REBOUND)
        traces = [
            [(STORE, i) for i in range(16)] + [(COMPUTE, 3000), (END,)],
        ]
        stall = make_machine([list(traces[0])], config=config_nodwb).run()
        overlap = make_machine([list(traces[0])], config=config_dwb).run()
        assert overlap.cores[0].wb_delay == 0
        assert stall.cores[0].wb_delay > 0

    def test_dwb_checkpoint_completes_in_background(self):
        machine = make_machine(
            [[(STORE, 1), (STORE, 2), (COMPUTE, 9000), (END,)]],
            config=tiny_config(2, Scheme.REBOUND))
        stats = machine.run()
        assert stats.checkpoints
        core = machine.cores[0]
        assert core.pending_delayed == 0          # drain completed
        assert core.snapshots[-1].complete_time is not None

    def test_dirty_lines_survive_clean_after_checkpoint(self):
        machine = make_machine(
            [[(STORE, 1), (COMPUTE, 5000), (END,)]],
            config=tiny_config(2, Scheme.REBOUND))
        machine.run()
        line = machine.engine.l2s[0].peek(1)
        assert line is not None
        assert not line.dirty and not line.delayed
        assert machine.memory.peek(1) != 0


class TestIntervalBookkeeping:
    def test_ckpt_id_matches_interval_id(self):
        machine = make_machine(
            [[(STORE, 1), (COMPUTE, 9000), (END,)]],
            config=tiny_config(2, Scheme.REBOUND))
        machine.run()
        core = machine.cores[0]
        file = machine.scheme.files[0]
        # Invariant the rollback protocol relies on: checkpoint i closed
        # interval i, so active interval == last ckpt id + 1.
        assert file.active.interval_id == core.next_ckpt_id

    def test_instr_since_ckpt_resets(self):
        machine = make_machine(
            [[(STORE, 1), (COMPUTE, 2500), (COMPUTE, 100), (END,)]],
            config=tiny_config(2, Scheme.REBOUND))
        machine.run()
        core = machine.cores[0]
        assert core.instr_since_ckpt < 2601
