"""Tests for per-core state (snapshots, rewind) and fault injection."""

import pytest

from repro.sim.cores import Core
from repro.sim.faults import FaultInjector


class TestCoreSnapshots:
    def test_snapshot_captures_context(self):
        core = Core(0, [("x",)] * 10)
        core.ip = 4
        core.instr_count = 123
        core.held_locks.add(7)
        core.barrier_crossings[0] = 2
        snap = core.take_snapshot(500.0)
        assert snap.ckpt_id == 1
        assert snap.trace_ip == 4
        assert snap.instr_count == 123
        assert snap.held_locks == frozenset({7})
        assert snap.barrier_crossings == {0: 2}
        assert snap.complete_time is None

    def test_snapshot_ids_monotonic(self):
        core = Core(0, [])
        a = core.take_snapshot(1.0)
        b = core.take_snapshot(2.0)
        assert b.ckpt_id == a.ckpt_id + 1

    def test_ckpt_gap_accounting(self):
        core = Core(0, [])
        core.take_snapshot(100.0)
        core.take_snapshot(300.0)
        assert core.stats.ckpt_gap_count == 2
        assert core.stats.ckpt_gap_sum == 300.0
        assert core.stats.mean_ckpt_gap == 150.0

    def test_latest_safe_snapshot_requires_age(self):
        core = Core(0, [])
        snap = core.take_snapshot(100.0)
        snap.complete_time = 150.0
        # Detection at 200 with L=100: the new snapshot is too young.
        safe = core.latest_safe_snapshot(200.0, 100.0)
        assert safe.ckpt_id == 0        # program start
        safe = core.latest_safe_snapshot(300.0, 100.0)
        assert safe.ckpt_id == snap.ckpt_id

    def test_incomplete_snapshot_never_safe(self):
        core = Core(0, [])
        core.take_snapshot(100.0)       # complete_time stays None
        safe = core.latest_safe_snapshot(1e12, 1.0)
        assert safe.ckpt_id == 0

    def test_rollback_rewinds_and_reports_waste(self):
        core = Core(0, [("x",)] * 10)
        snap = core.take_snapshot(100.0)
        snap.complete_time = 120.0
        core.ip = 9
        core.time = 5_000.0
        core.instr_count = 999
        core.blocked = "lock"
        wasted = core.rollback_to(snap, resume_time=6_000.0)
        assert wasted == 4_900.0
        assert core.ip == snap.trace_ip
        assert core.instr_count == snap.instr_count
        assert core.blocked is None
        assert core.time == 6_000.0
        assert core.next_ckpt_id == snap.ckpt_id + 1

    def test_rollback_prunes_newer_snapshots(self):
        core = Core(0, [])
        first = core.take_snapshot(100.0)
        first.complete_time = 110.0
        core.take_snapshot(200.0)
        core.take_snapshot(300.0)
        core.rollback_to(first, 400.0)
        assert [s.ckpt_id for s in core.snapshots] == [0, 1]

    def test_store_values_unique_across_rollback(self):
        """Re-executed stores must not reuse old value tags (the golden
        checker depends on it)."""
        core = Core(3, [])
        before = {core.next_store_value() for _ in range(5)}
        snap = core.take_snapshot(10.0)
        snap.complete_time = 10.0
        core.rollback_to(snap, 20.0)
        after = {core.next_store_value() for _ in range(5)}
        assert before.isdisjoint(after)


class TestFaultInjector:
    def test_detection_delayed_by_latency(self):
        injector = FaultInjector([(100.0, 2)], detection_latency=50.0)
        assert injector.due(149.0) == []
        events = injector.due(150.0)
        assert len(events) == 1
        assert events[0].pid == 2
        assert events[0].detect_time == 150.0

    def test_faults_delivered_once(self):
        injector = FaultInjector([(10.0, 0)], detection_latency=5.0)
        assert len(injector.due(100.0)) == 1
        assert injector.due(200.0) == []
        assert injector.outstanding == 0

    def test_faults_sorted_by_time(self):
        injector = FaultInjector([(300.0, 1), (100.0, 0)],
                                 detection_latency=0.0)
        events = injector.due(1e9)
        assert [e.pid for e in events] == [0, 1]

    def test_multiple_due_at_once(self):
        injector = FaultInjector([(1.0, 0), (2.0, 1)],
                                 detection_latency=10.0)
        assert len(injector.due(20.0)) == 2

    def test_push_api_resolves_in_order(self):
        injector = FaultInjector([(1.0, 0), (2.0, 1)],
                                 detection_latency=10.0)
        first, second = injector.pending
        injector.mark_delivered(first)
        injector.mark_undelivered(second)
        assert injector.outstanding == 0
        assert injector.delivered == [first]
        assert injector.undelivered == [second]
        assert second.undelivered and not second.detected

    def test_push_api_rejects_out_of_order(self):
        injector = FaultInjector([(1.0, 0), (2.0, 1)],
                                 detection_latency=10.0)
        with pytest.raises(ValueError, match="out of detection order"):
            injector.mark_delivered(injector.pending[1])

    def test_large_fault_list_drains_linearly(self):
        # Campaign-scale lists: due() advances a cursor, never pops the
        # head of a list (the old O(n^2) drain).
        n = 5_000
        injector = FaultInjector([(float(i), i % 7) for i in range(n)],
                                 detection_latency=1.0)
        seen = 0
        for now in range(0, n + 2, 500):
            seen += len(injector.due(float(now)))
        assert seen == n
        assert injector.outstanding == 0
