"""Tests for the Global / Global_DWB baselines (Chapter 5)."""

from repro.params import Scheme
from repro.trace import COMPUTE, END, STORE
from tests.conftest import make_machine, tiny_config


class TestGlobalCheckpoints:
    def test_everyone_checkpoints_together(self):
        traces = [
            [(STORE, 1), (COMPUTE, 5000), (END,)],
            [(STORE, 50), (COMPUTE, 100), (END,)],
        ]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL))
        stats = machine.run()
        assert stats.checkpoints
        assert all(e.size == 2 for e in stats.checkpoints)
        assert all(e.kind == "global" for e in stats.checkpoints)

    def test_interval_drives_checkpoint_count(self):
        chunks = [(COMPUTE, 1000)] * 9
        traces = [[(STORE, 1)] + chunks + [(END,)],
                  [*chunks, (END,)]]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL))
        stats = machine.run()
        # ~9000 instructions at a 2000-instruction interval.
        assert 3 <= len(stats.checkpoints) <= 6

    def test_wb_stall_attributed(self):
        traces = [
            [(STORE, i) for i in range(8)] + [(COMPUTE, 3000), (END,)],
            [(COMPUTE, 3100), (END,)],
        ]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL))
        stats = machine.run()
        assert stats.cores[0].wb_delay > 0
        # The idle core waits for core 0's writebacks: imbalance.
        assert stats.cores[1].wb_imbalance >= 0

    def test_all_cores_reset_interval_counters(self):
        traces = [[(STORE, 1), (COMPUTE, 2500), (COMPUTE, 10), (END,)],
                  [(COMPUTE, 600), (END,)]]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL))
        machine.run()
        for core in machine.cores:
            assert core.instr_since_ckpt < 2600

    def test_global_dwb_does_not_stall(self):
        traces = [
            [(STORE, i) for i in range(8)] + [(COMPUTE, 5000), (END,)],
            [(COMPUTE, 5200), (END,)],
        ]
        machine = make_machine(traces,
                               config=tiny_config(2, Scheme.GLOBAL_DWB))
        stats = machine.run()
        assert all(c.wb_delay == 0 for c in stats.cores)
        # Drains complete by the end of the run.
        for core in machine.cores:
            assert core.pending_delayed == 0

    def test_epochs_advance_per_checkpoint(self):
        traces = [[(STORE, 1), (COMPUTE, 5000), (END,)],
                  [(COMPUTE, 5100), (END,)]]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL))
        stats = machine.run()
        scheme = machine.scheme
        assert scheme.epochs[0] == len(stats.checkpoints) + 1


class TestGlobalRecovery:
    def test_rollback_targets_common_checkpoint(self):
        traces = [
            [(STORE, 1), (COMPUTE, 6000), (END,)],
            [(STORE, 50), (COMPUTE, 6000), (END,)],
        ]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL),
                               faults=[(3500.0, 1)])
        stats = machine.run()
        event = stats.rollbacks[0]
        assert event.size == 2
        # Both cores landed on the same snapshot id (global consistency).
        ids = {core.snapshots[-1].ckpt_id for core in machine.cores
               if core.snapshots}
        assert len(ids) <= 2  # re-execution may have added checkpoints

    def test_global_wastes_all_cores_work(self):
        traces = [
            [(STORE, 1), (COMPUTE, 6000), (END,)],
            [(STORE, 50), (COMPUTE, 6000), (END,)],
        ]
        machine = make_machine(traces, config=tiny_config(2, Scheme.GLOBAL),
                               faults=[(3500.0, 1)])
        stats = machine.run()
        # Both cores contributed wasted work (the Global drawback).
        assert stats.rollbacks[0].wasted_cycles > 0
        assert all(c.recovery > 0 for c in stats.cores)
