"""Tests for the MESI coherence engine and its LW-ID/Dep hooks."""

import pytest

from repro.coherence.directory import EXCL, SHARED, UNCACHED
from repro.coherence.protocol import CoherenceEngine, DependenceTracker
from repro.interconnect import Interconnect
from repro.mem import EXCLUSIVE, MODIFIED, MainMemory, MemoryChannels, ReviveLog
from repro.mem import SHARED as L_SHARED
from tests.conftest import tiny_config


class RecordingTracker(DependenceTracker):
    """Claims everything; records all calls (unit-test double)."""

    enabled = True

    def __init__(self):
        self.writes = []
        self.producer_records = []
        self.consumer_records = []
        self.left_cache = []
        self.claim = True

    def on_write(self, pid, addr):
        self.writes.append((pid, addr))

    def record_producer(self, consumer, producer):
        self.producer_records.append((consumer, producer))

    def query_writer(self, pid, addr):
        return (self.claim, self.claim)

    def record_consumer(self, producer, consumer, addr, genuine):
        self.consumer_records.append((producer, consumer, addr, genuine))

    def on_line_left_cache(self, pid, addr, now):
        self.left_cache.append((pid, addr))


def make_engine(n_cores=4, tracker=None, **over):
    config = tiny_config(n_cores=n_cores, **over)
    log = ReviveLog()
    memory = MainMemory(log)
    channels = MemoryChannels(config)
    network = Interconnect(config)
    tracker = tracker if tracker is not None else RecordingTracker()
    engine = CoherenceEngine(config, channels, memory, network, tracker)
    return engine, tracker


class TestLoads:
    def test_cold_load_grants_exclusive_and_stamps_lwid(self):
        engine, _ = make_engine()
        latency = engine.load(0, 100, 0.0)
        entry = engine.directory.peek(100)
        assert entry.mode == EXCL
        assert entry.owner == 0
        # RDX semantics: a load that finds the line uncached stamps LW-ID
        # because the core may later write silently (Figure 3.2a).
        assert entry.lw_id == 0
        assert latency >= engine.config.memory_cycles

    def test_l1_then_l2_hits(self):
        engine, _ = make_engine()
        engine.load(0, 100, 0.0)
        assert engine.load(0, 100, 10.0) == engine.config.l1.hit_cycles
        engine.l1s[0].invalidate(100)
        assert engine.load(0, 100, 20.0) == engine.config.l2.hit_cycles

    def test_read_from_owner_downgrades_to_shared(self):
        engine, _ = make_engine()
        engine.store(0, 100, 7, 0.0)
        latency = engine.load(1, 100, 10.0)
        entry = engine.directory.peek(100)
        assert entry.mode == SHARED
        assert entry.sharers == 0b11
        assert engine.l2s[0].peek(100).state == L_SHARED
        assert not engine.l2s[0].peek(100).dirty  # sharing writeback
        assert engine.memory.peek(100) == 7
        assert latency >= engine.config.remote_l2_cycles

    def test_read_records_dependence(self):
        engine, tracker = make_engine()
        engine.store(0, 100, 7, 0.0)
        engine.load(1, 100, 10.0)
        assert (1, 0) in tracker.producer_records
        assert (0, 1, 100, True) in tracker.consumer_records

    def test_no_wr_clears_stale_lwid(self):
        engine, tracker = make_engine()
        engine.store(0, 100, 7, 0.0)
        engine.load(1, 100, 10.0)        # line now SHARED, lw=0
        tracker.claim = False            # WSIG cleared by a checkpoint
        engine.load(2, 100, 20.0)
        entry = engine.directory.peek(100)
        assert entry.lw_id is None       # lazily cleared (Section 3.3.2)
        # The consumer's MyProducers was still set (superset semantics).
        assert (2, 0) in tracker.producer_records

    def test_self_dependence_not_recorded(self):
        engine, tracker = make_engine()
        engine.store(0, 100, 7, 0.0)
        engine.checkpoint_writeback(0, 1.0)     # line now clean in L2
        engine.l2s[0].invalidate(100)
        engine.l1s[0].invalidate(100)
        engine.directory.evict_copy(100, 0)     # LW-ID survives eviction
        assert engine.directory.peek(100).lw_id == 0
        engine.load(0, 100, 10.0)               # reader == last writer
        assert tracker.producer_records == []


class TestStores:
    def test_store_miss_takes_modified(self):
        engine, tracker = make_engine()
        engine.store(0, 100, 5, 0.0)
        line = engine.l2s[0].peek(100)
        assert line.state == MODIFIED
        assert line.dirty
        assert line.value == 5
        assert (0, 100) in tracker.writes

    def test_silent_e_to_m_upgrade(self):
        engine, _ = make_engine()
        engine.load(0, 100, 0.0)                  # E grant
        base = engine.network.base_messages
        latency = engine.store(0, 100, 9, 10.0)
        assert latency == engine.config.l2.hit_cycles
        assert engine.network.base_messages == base  # no traffic
        assert engine.l2s[0].peek(100).state == MODIFIED

    def test_upgrade_invalidates_sharers(self):
        engine, _ = make_engine()
        engine.store(0, 100, 1, 0.0)
        engine.load(1, 100, 10.0)
        engine.load(2, 100, 20.0)
        engine.store(1, 100, 2, 30.0)
        entry = engine.directory.peek(100)
        assert entry.mode == EXCL
        assert entry.owner == 1
        assert entry.lw_id == 1
        assert engine.l2s[0].peek(100) is None
        assert engine.l2s[2].peek(100) is None

    def test_waw_transfer_from_owner(self):
        engine, tracker = make_engine()
        engine.store(0, 100, 1, 0.0)
        engine.store(1, 100, 2, 10.0)
        entry = engine.directory.peek(100)
        assert entry.owner == 1
        assert engine.l2s[0].peek(100) is None
        # WAW dependence recorded (WR row of Figure 3.2a).
        assert (1, 0) in tracker.producer_records
        # Dirty M->M transfer: memory not updated.
        assert engine.memory.peek(100) == 0

    def test_store_value_visible_to_reader(self):
        engine, _ = make_engine()
        engine.store(0, 100, 42, 0.0)
        engine.load(1, 100, 10.0)
        assert engine.l2s[1].peek(100).value == 42


class TestEvictionAndWriteback:
    def test_dirty_eviction_logs_old_value(self):
        engine, _ = make_engine()
        # Fill one L2 set (4 ways at 32 lines / 8 sets) and overflow it.
        n_sets = engine.config.l2.n_sets
        addrs = [i * n_sets for i in range(5)]
        for addr in addrs:
            engine.store(0, addr, addr + 1, 0.0)
        assert engine.memory.log.total_entries >= 1
        assert engine.memory.peek(addrs[0]) == addrs[0] + 1

    def test_checkpoint_writeback_cleans_lines(self):
        engine, _ = make_engine()
        engine.store(0, 100, 5, 0.0)
        engine.store(0, 101, 6, 1.0)
        done, n_lines = engine.checkpoint_writeback(0, 10.0)
        assert n_lines == 2
        assert done > 10.0
        for addr in (100, 101):
            line = engine.l2s[0].peek(addr)
            assert line.state == EXCLUSIVE
            assert not line.dirty
            assert engine.memory.peek(addr) in (5, 6)
        assert engine.dirty_line_addrs(0) == []

    def test_mark_and_complete_delayed(self):
        engine, _ = make_engine()
        engine.store(0, 100, 5, 0.0)
        assert engine.mark_delayed(0) == 1
        assert engine.l2s[0].peek(100).delayed
        count = engine.complete_delayed(0, 20.0, interval=1)
        assert count == 1
        assert not engine.l2s[0].peek(100).delayed
        assert engine.memory.peek(100) == 5

    def test_store_to_delayed_line_forces_writeback(self):
        engine, tracker = make_engine()
        engine.store(0, 100, 5, 0.0)
        engine.mark_delayed(0)
        engine.store(0, 100, 6, 10.0)
        line = engine.l2s[0].peek(100)
        assert not line.delayed
        assert line.dirty
        assert engine.memory.peek(100) == 5    # checkpoint copy flushed
        assert (0, 100) in tracker.left_cache

    def test_remote_read_of_delayed_line_flushes_first(self):
        engine, tracker = make_engine()
        engine.store(0, 100, 5, 0.0)
        engine.mark_delayed(0)
        engine.load(1, 100, 10.0)
        assert engine.memory.peek(100) == 5
        assert (0, 100) in tracker.left_cache

    def test_invalidate_core_purges_everything(self):
        engine, _ = make_engine()
        engine.store(0, 100, 5, 0.0)
        engine.load(0, 200, 1.0)
        n = engine.invalidate_core(0)
        assert n == 2
        assert len(engine.l2s[0]) == 0
        assert engine.directory.peek(100).mode == UNCACHED
        assert engine.directory.peek(100).lw_id is None


class TestMessageAccounting:
    def test_dedicated_lw_query_counts_dep_messages(self):
        engine, _ = make_engine()
        engine.store(0, 100, 1, 0.0)
        engine.load(1, 100, 10.0)      # fwd to owner: piggybacked
        piggy = engine.network.dep_messages
        engine.load(2, 100, 20.0)      # from memory: dedicated query
        assert engine.network.dep_messages > piggy

    def test_golden_model_checks_loads(self):
        engine, _ = make_engine(check_coherence=True)
        engine.store(0, 100, 5, 0.0)
        engine.load(1, 100, 10.0)      # must not raise
        engine.golden[100] = 999       # corrupt the golden image
        with pytest.raises(AssertionError):
            engine.load(2, 100, 20.0)
