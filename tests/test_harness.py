"""Tests for the experiment harness (runner caching + drivers)."""

import pytest

from repro.harness import (
    ALL_EXPERIMENTS,
    Runner,
    fig6_1_ichk_parsec,
    fig6_3_overhead,
    fig6_7_io,
    format_bars,
    format_table,
    run_experiment,
    table6_1_characterization,
)
from repro.params import Scheme


@pytest.fixture(scope="module")
def quick_runner():
    # Tiny shared runner: 8 cores, short runs, heavily scaled down.
    return Runner(scale=200, intervals=1.5)


APPS = ["blackscholes", "water_sp"]


class TestRunner:
    def test_results_are_cached(self, quick_runner):
        first = quick_runner.run("blackscholes", 4, Scheme.REBOUND)
        second = quick_runner.run("blackscholes", 4, Scheme.REBOUND)
        assert first is second

    def test_different_schemes_not_conflated(self, quick_runner):
        rebound = quick_runner.run("blackscholes", 4, Scheme.REBOUND)
        glob = quick_runner.run("blackscholes", 4, Scheme.GLOBAL)
        assert rebound is not glob

    def test_overhead_positive_for_checkpointing(self, quick_runner):
        overhead = quick_runner.overhead("blackscholes", 4, Scheme.GLOBAL)
        assert overhead > -0.05  # tiny runs can be noisy, not negative


class TestDrivers:
    def test_fig6_1(self, quick_runner):
        result = fig6_1_ichk_parsec(quick_runner, n_cores=4, apps=APPS)
        assert len(result.rows) == len(APPS) + 1
        assert "Rebound" in result.headers[-1]
        assert result.render()

    def test_fig6_3(self, quick_runner):
        result = fig6_3_overhead(quick_runner, apps=APPS, n_cores=4)
        assert result.rows[-1][0] == "average"
        assert len(result.headers) == 5

    def test_fig6_7(self, quick_runner):
        result = fig6_7_io(quick_runner, apps=["blackscholes"], n_cores=4)
        values = result.rows[0][1:]
        assert all(v.endswith("%") for v in values)

    def test_table6_1(self, quick_runner):
        result = table6_1_characterization(quick_runner, apps=APPS,
                                           splash_cores=4, parsec_cores=4)
        assert len(result.rows) == len(APPS) + 1

    def test_run_experiment_by_name(self, quick_runner):
        result = run_experiment("fig6_1", quick_runner, n_cores=4,
                                apps=APPS)
        assert result.experiment.startswith("Figure 6.1")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig9_9")

    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig6_1", "fig6_2", "fig6_3", "fig6_4", "fig6_5",
            "fig6_6", "fig6_7", "fig6_8", "fig6_9",
            "fig_l_sensitivity", "table6_1"}


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbb"], [["x", 1.5], ["yy", 10.25]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text and "10.25" in text

    def test_format_bars(self):
        text = format_bars([("g", 10.0), ("r", 2.0)], title="bars")
        assert text.count("#") > 0
        g_hashes = text.splitlines()[1].count("#")
        r_hashes = text.splitlines()[2].count("#")
        assert g_hashes > r_hashes

    def test_format_bars_empty(self):
        assert format_bars([]) == ""
