"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.params import CacheConfig, MachineConfig, Scheme
from repro.sim.machine import Machine
from repro.trace import AddressSpace
from repro.workloads.base import BarrierSpec, LockSpec, WorkloadSpec


def tiny_config(n_cores: int = 4, scheme: Scheme = Scheme.REBOUND,
                **overrides) -> MachineConfig:
    """A very small machine for fast, deterministic unit tests."""
    base = MachineConfig(
        n_cores=n_cores,
        scheme=scheme,
        l1=CacheConfig(256, 2, hit_cycles=2),      # 8 lines
        l2=CacheConfig(1024, 4, hit_cycles=8),     # 32 lines
        checkpoint_interval=2_000,
        detection_latency=400,
        backoff_max=100,
        wsig_bits=128,
        check_coherence=True,
    )
    return base.replace(**overrides) if overrides else base


def make_spec(traces, locks=(), barriers=(), name="test") -> WorkloadSpec:
    """WorkloadSpec from raw trace lists."""
    return WorkloadSpec(name=name, traces=[list(t) for t in traces],
                        locks=list(locks), barriers=list(barriers))


def make_machine(traces, config=None, locks=(), barriers=(), faults=None,
                 **overrides) -> Machine:
    config = config or tiny_config(n_cores=max(2, len(traces)), **overrides)
    spec = make_spec(traces, locks=locks, barriers=barriers)
    return Machine(config, spec, faults=faults)


def barrier_spec(n_threads: int, barrier_id: int = 0,
                 space: AddressSpace | None = None) -> BarrierSpec:
    space = space or AddressSpace()
    return BarrierSpec(barrier_id=barrier_id,
                       participants=list(range(n_threads)),
                       count_line=space.sync_line(),
                       flag_line=space.sync_line())


def lock_spec(lock_id: int = 0,
              space: AddressSpace | None = None) -> LockSpec:
    space = space or AddressSpace()
    return LockSpec(lock_id=lock_id, line=space.sync_line())


@pytest.fixture
def config():
    return tiny_config()
