"""Tests for the experiment engine: dedup, parallelism, disk cache.

The determinism guard: serial, parallel (``jobs=4``) and disk-cache-
replayed executions must produce *identical* ``SimStats`` for a matrix
of (app, scheme, n_cores) — plus pickle round-trips for the payload
types the cache and the process pool move between processes.
"""

import pickle

import pytest

import repro.harness.engine as engine_mod
from repro.harness.engine import ExperimentEngine, RunKey, execute_run
from repro.harness.runner import Runner
from repro.params import Scheme
from repro.sim import SimStats

#: Small cross-scheme matrix (tiny scale keeps each run in the tens of
#: milliseconds).
MATRIX = [
    RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300),
    RunKey("blackscholes", 4, Scheme.NONE, 1.5, 1, 300),
    RunKey("water_sp", 4, Scheme.GLOBAL, 1.5, 1, 300),
    RunKey("water_sp", 2, Scheme.REBOUND, 1.5, 1, 300),
]


@pytest.fixture()
def serial_results(tmp_path):
    eng = ExperimentEngine(jobs=1, use_disk_cache=False)
    return eng.run_many(MATRIX)


class TestParity:
    def test_parallel_matches_serial(self, serial_results):
        parallel = ExperimentEngine(jobs=4, use_disk_cache=False)
        got = parallel.run_many(MATRIX)
        for key in MATRIX:
            assert got[key] == serial_results[key], key

    def test_disk_replay_matches_serial(self, serial_results, tmp_path,
                                        monkeypatch):
        writer = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_disk_cache=True)
        writer.run_many(MATRIX)
        assert len(writer.profile) == len(MATRIX)
        # A fresh engine over the same cache dir must replay from disk:
        # make any recompute blow up.
        monkeypatch.setattr(engine_mod, "execute_run",
                            lambda key: pytest.fail(f"recomputed {key}"))
        reader = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                  use_disk_cache=True)
        got = reader.run_many(MATRIX)
        assert reader.disk_hits == len(MATRIX)
        assert not reader.profile
        for key in MATRIX:
            assert got[key] == serial_results[key], key


class TestEngineMechanics:
    def test_duplicate_keys_computed_once(self):
        eng = ExperimentEngine(jobs=1, use_disk_cache=False)
        key = MATRIX[0]
        got = eng.run_many([key, key, key])
        assert len(got) == 1
        assert len(eng.profile) == 1

    def test_memo_returns_identical_object(self):
        eng = ExperimentEngine(jobs=1, use_disk_cache=False)
        key = MATRIX[0]
        assert eng.run(key) is eng.run(key)

    def test_no_cache_writes_nothing(self, tmp_path):
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                               use_disk_cache=False)
        eng.run(MATRIX[0])
        assert list(tmp_path.iterdir()) == []

    def test_fingerprint_invalidates_cache(self, tmp_path, monkeypatch):
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                               use_disk_cache=True)
        eng.run(MATRIX[0])
        monkeypatch.setattr(engine_mod, "_FINGERPRINT", "different-code")
        fresh = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                 use_disk_cache=True)
        fresh.run(MATRIX[0])
        assert fresh.disk_hits == 0          # old entry not addressed
        assert len(fresh.profile) == 1       # recomputed

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                               use_disk_cache=True)
        key = MATRIX[0]
        eng.run(key)
        path = eng._cache_path(key)
        path.write_bytes(b"not a pickle")
        fresh = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                 use_disk_cache=True)
        stats = fresh.run(key)
        assert isinstance(stats, SimStats)
        assert len(fresh.profile) == 1


class TestParallelFailures:
    def test_every_failing_key_reported(self):
        # Two keys with unknown apps fail inside the workers; the raised
        # error must name them *both* (a single-failure report makes a
        # broken sweep a whack-a-mole of reruns), while the healthy
        # sibling still lands in the memo.
        good = MATRIX[0]
        bad = [RunKey("no_such_app_a", 4, Scheme.NONE, 1.5, 1, 300),
               RunKey("no_such_app_b", 4, Scheme.NONE, 1.5, 1, 300)]
        eng = ExperimentEngine(jobs=2, use_disk_cache=False)
        with pytest.raises(RuntimeError) as excinfo:
            eng.run_many([good] + bad)
        message = str(excinfo.value)
        assert "no_such_app_a" in message
        assert "no_such_app_b" in message
        assert "2 of 3 run(s)" in message
        assert good in eng.memo

    def test_failed_batch_reports_every_replica_key(self):
        # Regression: a failed replica *batch* used to surface only its
        # first RunKey ("failed for 1 of N") — a dead chunk holding N
        # replicas masked N-1 sibling keys.  Two keys that differ only
        # in their fault plan batch together; both must be reported.
        from repro.sim.faults import FaultPlan

        good = MATRIX[0]
        bad = [RunKey("no_such_app", 4, Scheme.REBOUND, 1.5, 1, 300,
                      fault_plan=FaultPlan.single(5000.0)),
               RunKey("no_such_app", 4, Scheme.REBOUND, 1.5, 1, 300,
                      fault_plan=FaultPlan.single(9000.0))]
        eng = ExperimentEngine(jobs=2, use_disk_cache=False)
        with pytest.raises(RuntimeError) as excinfo:
            eng.run_many([good] + bad)
        message = str(excinfo.value)
        assert "2 of 3 run(s)" in message
        # Each replica is individually describable by its own plan.
        assert "5000.0" in message
        assert "9000.0" in message
        assert good in eng.memo

    def test_interrupt_lands_partial_results(self, tmp_path, capsys,
                                             monkeypatch):
        # Regression: Ctrl-C in the dispatch wait loop used to escape
        # past the epilogue and block in ProcessPoolExecutor.__exit__.
        # Now the engine cancels queued chunks, lands every completed
        # result in the memo (workers already wrote the cache entries),
        # prints a one-line partial-progress note, and re-raises.
        real_wait = engine_mod.wait
        calls = {"n": 0}

        def interrupting_wait(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt
            return real_wait(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "wait", interrupting_wait)
        eng = ExperimentEngine(jobs=2, cache_dir=tmp_path,
                               use_disk_cache=True, chunk_size=1)
        with pytest.raises(KeyboardInterrupt):
            eng.run_many(MATRIX)
        assert len(eng.memo) >= 1          # completed chunks landed
        assert "interrupted:" in capsys.readouterr().out
        # The landed results replay from disk: nothing was lost.
        fresh = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                                 use_disk_cache=True)
        fresh.run_many(list(eng.memo))
        assert fresh.disk_hits == len(eng.memo)
        assert not fresh.profile


class TestProfileRows:
    def test_rows_carry_cluster_and_overrides(self):
        eng = ExperimentEngine(jobs=1, use_disk_cache=False)
        eng.run(RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                       cluster=2, overrides={"detection_latency": 2000}))
        eng.run(MATRIX[0])
        rows = eng.profile_rows()
        assert all(len(row) == 9 for row in rows)
        by_cluster = {row[5]: row for row in rows}
        assert by_cluster[2][6] == "detection_latency=2000"
        assert by_cluster[1][6] == "-"
        # neither run was part of a replica batch: width 1
        assert all(row[7] == 1 for row in rows)


class TestRunnerFacade:
    def test_runner_routes_through_engine(self, tmp_path):
        eng = ExperimentEngine(jobs=1, cache_dir=tmp_path,
                               use_disk_cache=True)
        runner = Runner(scale=300, intervals=1.5, engine=eng)
        stats = runner.run("blackscholes", 4, Scheme.REBOUND)
        key = runner.key("blackscholes", 4, Scheme.REBOUND)
        assert eng.memo[key] is stats
        assert runner.cache is eng.memo

    def test_prefetch_then_run_hits_memo(self):
        eng = ExperimentEngine(jobs=1, use_disk_cache=False)
        runner = Runner(scale=300, intervals=1.5, engine=eng)
        keys = [runner.key("blackscholes", 4, Scheme.REBOUND),
                runner.key("blackscholes", 4, Scheme.NONE)]
        runner.prefetch(keys)
        assert len(eng.profile) == 2
        runner.overhead("blackscholes", 4, Scheme.REBOUND)
        assert len(eng.profile) == 2  # nothing recomputed


class TestPickleRoundTrips:
    def test_runkey_round_trip(self):
        key = RunKey("ocean", 64, Scheme.REBOUND_BARR, 3.0, 1, 40,
                     io_every=1000, fault_at=2.5e5)
        assert pickle.loads(pickle.dumps(key)) == key

    def test_scheme_round_trip(self):
        for scheme in Scheme:
            assert pickle.loads(pickle.dumps(scheme)) is scheme

    def test_simstats_round_trip(self):
        stats = execute_run(MATRIX[0])
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        assert clone.config == stats.config
        assert clone.cores == stats.cores
        assert clone.checkpoints == stats.checkpoints
        # Derived quantities survive too.
        assert clone.mean_ichk_fraction() == stats.mean_ichk_fraction()
        assert clone.breakdown() == stats.breakdown()
