"""Tests for the full-map directory with LW-ID (Section 3.3.1)."""

from repro.coherence.directory import Directory, EXCL, SHARED, UNCACHED


class TestEntries:
    def test_entry_created_on_demand(self):
        directory = Directory(4)
        entry = directory.entry(100)
        assert entry.mode == UNCACHED
        assert entry.owner is None
        assert entry.lw_id is None

    def test_peek_does_not_create(self):
        directory = Directory(4)
        assert directory.peek(100) is None
        directory.entry(100)
        assert directory.peek(100) is not None

    def test_sharer_list(self):
        directory = Directory(8)
        entry = directory.entry(1)
        entry.sharers = 0b10100001
        assert entry.sharer_list() == [0, 5, 7]

    def test_home_interleaving(self):
        directory = Directory(4)
        assert directory.home_of(0) == 0
        assert directory.home_of(5) == 1


class TestEviction:
    def test_evict_exclusive_owner_uncaches(self):
        directory = Directory(4)
        entry = directory.entry(1)
        entry.mode = EXCL
        entry.owner = 2
        entry.lw_id = 2
        directory.evict_copy(1, 2)
        assert entry.mode == UNCACHED
        assert entry.owner is None
        # Key paper detail: eviction must NOT clear LW-ID (Section 3.3.1).
        assert entry.lw_id == 2

    def test_evict_sharer_keeps_others(self):
        directory = Directory(4)
        entry = directory.entry(1)
        entry.mode = SHARED
        entry.sharers = 0b0110
        directory.evict_copy(1, 1)
        assert entry.sharers == 0b0100
        assert entry.mode == SHARED
        directory.evict_copy(1, 2)
        assert entry.mode == UNCACHED

    def test_evict_unknown_line_is_noop(self):
        directory = Directory(4)
        directory.evict_copy(42, 0)  # no entry; must not raise


class TestPurge:
    def test_purge_clears_ownership_and_lwid(self):
        directory = Directory(4)
        owned = directory.entry(1)
        owned.mode = EXCL
        owned.owner = 3
        owned.lw_id = 3
        shared = directory.entry(2)
        shared.mode = SHARED
        shared.sharers = 0b1010
        shared.lw_id = 3
        directory.purge_core(3)
        assert owned.mode == UNCACHED
        assert owned.owner is None
        assert owned.lw_id is None
        assert shared.sharers == 0b0010
        assert shared.lw_id is None

    def test_purge_can_preserve_lwid(self):
        directory = Directory(4)
        entry = directory.entry(1)
        entry.lw_id = 2
        directory.purge_core(2, clear_lw=False)
        assert entry.lw_id == 2

    def test_purge_other_core_untouched(self):
        directory = Directory(4)
        entry = directory.entry(1)
        entry.mode = EXCL
        entry.owner = 1
        entry.lw_id = 1
        directory.purge_core(2)
        assert entry.owner == 1
        assert entry.lw_id == 1
