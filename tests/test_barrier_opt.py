"""Tests for the BarCK barrier checkpoint optimization (Section 4.2.1)."""

from repro.params import Scheme
from repro.trace import BARRIER, COMPUTE, END, STORE
from tests.conftest import barrier_spec, make_machine, tiny_config


def barrier_workload(n_threads, work, stores=2, rounds=1):
    traces = []
    for tid in range(n_threads):
        trace = []
        for _ in range(rounds):
            for s in range(stores):
                trace.append((STORE, 100 * tid + s))
            trace.append((COMPUTE, work * (tid + 1)))
            trace.append((BARRIER, 0))
        trace.append((COMPUTE, 10))
        trace.append((END,))
        traces.append(trace)
    return traces


class TestBarckTrigger:
    def test_interested_arrival_triggers_barrier_checkpoint(self):
        config = tiny_config(3, Scheme.REBOUND_BARR,
                             checkpoint_interval=8_000,
                             barrier_interest_fraction=0.1)
        traces = barrier_workload(3, work=2_000)
        machine = make_machine(traces, barriers=[barrier_spec(3)],
                               config=config)
        stats = machine.run()
        kinds = [e.kind for e in stats.checkpoints]
        assert "barrier" in kinds
        barrier_events = [e for e in stats.checkpoints
                          if e.kind == "barrier"]
        assert all(e.size == 3 for e in barrier_events)

    def test_uninterested_barrier_stays_plain(self):
        """If nobody has run a meaningful fraction of its interval, the
        barrier is not turned into a checkpoint."""
        config = tiny_config(3, Scheme.REBOUND_BARR,
                             checkpoint_interval=10**9,
                             barrier_interest_fraction=0.9)
        traces = barrier_workload(3, work=100)
        machine = make_machine(traces, barriers=[barrier_spec(3)],
                               config=config)
        stats = machine.run()
        assert not any(e.kind == "barrier" for e in stats.checkpoints)

    def test_barrier_checkpoint_resets_intervals(self):
        config = tiny_config(3, Scheme.REBOUND_BARR,
                             checkpoint_interval=4_000,
                             barrier_interest_fraction=0.1)
        traces = barrier_workload(3, work=1_200)
        machine = make_machine(traces, barriers=[barrier_spec(3)],
                               config=config)
        machine.run()
        for core in machine.cores:
            assert core.instr_since_ckpt < 1_500

    def test_works_without_delayed_writebacks_scheme(self):
        config = tiny_config(3, Scheme.REBOUND_NODWB_BARR,
                             checkpoint_interval=8_000,
                             barrier_interest_fraction=0.1)
        traces = barrier_workload(3, work=2_000)
        machine = make_machine(traces, barriers=[barrier_spec(3)],
                               config=config)
        stats = machine.run()
        assert any(e.kind == "barrier" for e in stats.checkpoints)


class TestBarckSemantics:
    def test_post_barrier_ichk_is_small(self):
        """Processors leave the barrier with ICHK = {self, flag writer}
        instead of everyone (the whole point of the optimization)."""
        config = tiny_config(4, Scheme.REBOUND_BARR,
                             checkpoint_interval=2_500,
                             barrier_interest_fraction=0.1)
        n = 4
        traces = []
        for tid in range(n):
            traces.append([
                (STORE, 100 * tid),
                (COMPUTE, 1_500 + 100 * tid),
                (BARRIER, 0),
                (STORE, 200 + tid),          # post-barrier work
                (COMPUTE, 3_000),            # expire the next interval
                (COMPUTE, 100),
                (END,),
            ])
        machine = make_machine(traces, barriers=[barrier_spec(n)],
                               config=config)
        stats = machine.run()
        post = [e for e in stats.checkpoints
                if e.kind == "interval" and e.time > 1_500]
        assert post, "post-barrier interval checkpoints expected"
        # Without the optimization these would have size n (Fig 4.2b).
        assert all(e.size <= 2 for e in post)

    def test_memory_contains_checkpointed_data(self):
        config = tiny_config(2, Scheme.REBOUND_BARR,
                             checkpoint_interval=3_000,
                             barrier_interest_fraction=0.1)
        traces = barrier_workload(2, work=800)
        machine = make_machine(traces, barriers=[barrier_spec(2)],
                               config=config)
        machine.run()
        # The barrier checkpoint drained every dirty line to memory.
        assert machine.memory.peek(0) != 0      # thread 0's line 0
        assert machine.memory.peek(100) != 0    # thread 1's line 100

    def test_snapshots_complete_after_barrier(self):
        config = tiny_config(2, Scheme.REBOUND_BARR,
                             checkpoint_interval=3_000,
                             barrier_interest_fraction=0.1)
        traces = barrier_workload(2, work=800)
        machine = make_machine(traces, barriers=[barrier_spec(2)],
                               config=config)
        machine.run()
        for core in machine.cores:
            for snap in core.snapshots:
                assert snap.complete_time is not None

    def test_fault_after_barrier_checkpoint_recovers(self):
        config = tiny_config(2, Scheme.REBOUND_BARR,
                             checkpoint_interval=3_000,
                             detection_latency=100,
                             barrier_interest_fraction=0.1)
        traces = barrier_workload(2, work=800, rounds=2)
        machine = make_machine(traces, barriers=[barrier_spec(2)],
                               config=config, faults=[(2_500.0, 0)])
        stats = machine.run()
        assert stats.rollbacks
        assert all(core.done for core in machine.cores)
